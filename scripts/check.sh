#!/usr/bin/env bash
# Local pre-PR gate: release build, full test suite, docs and lints
# with warnings denied. Run from the repository root. Any extra
# arguments (e.g. --offline) are forwarded to every cargo invocation.
set -euo pipefail

EXTRA=("$@")

run() {
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release "${EXTRA[@]+"${EXTRA[@]}"}"
run cargo test --workspace -q "${EXTRA[@]+"${EXTRA[@]}"}"
# The criterion benches must at least compile — they are the evidence
# trail for the performance work (see docs/PERFORMANCE.md).
run cargo bench --workspace --no-run -q "${EXTRA[@]+"${EXTRA[@]}"}"
# The kernel numerical-identity tests (gemm_parallel vs blocked/naive)
# are fast and worth re-running with optimisations on: release codegen
# reorders float work more aggressively than dev profile does.
run cargo test --release -p fupermod-kernels -q "${EXTRA[@]+"${EXTRA[@]}"}"
# The runtime's collective/fault tests — including the hub/ring/tree
# collective-parity suite (crates/runtime/tests/parity.rs) — spawn one
# thread per rank and assert on wall-clock deadlines; run them
# single-threaded so parallel test scheduling cannot starve a rank,
# and bound the whole suite.
run timeout 300 cargo test -p fupermod-runtime "${EXTRA[@]+"${EXTRA[@]}"}" -- --test-threads=1
# Tracetool gate: a traced end-to-end run must merge, report and
# schema-validate (the observability layer's contract — see
# docs/OBSERVABILITY.md §8). Uses the release binaries built above.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
run env FUPERMOD_TRACE_DIR="$TRACE_TMP" \
    ./target/release/exp2_dynamic_cost --quick --runtime sim
TRACE_FILE="$TRACE_TMP/exp2_dynamic_cost.trace.jsonl"
run ./target/release/fupermod_tracetool merge "$TRACE_FILE" \
    --out "$TRACE_TMP/merged.jsonl"
run ./target/release/fupermod_tracetool report "$TRACE_TMP/merged.jsonl" \
    --json --out "$TRACE_TMP/summary.json"
run ./target/release/fupermod_tracetool validate \
    --schema scripts/tracetool_schema.json "$TRACE_TMP/summary.json"
run ./target/release/fupermod_tracetool export "$TRACE_FILE" \
    --format chrome --out "$TRACE_TMP/chrome.json"
# Live-tail parity: following the (already complete) trace until idle
# must print exactly the sequence the batch merge produces
# (docs/OBSERVABILITY.md §9).
run ./target/release/fupermod_tracetool tail "$TRACE_FILE" \
    --idle-exit 1 --stats-every 0 --out "$TRACE_TMP/tailed.jsonl"
run diff "$TRACE_TMP/merged.jsonl" "$TRACE_TMP/tailed.jsonl"
# Event-engine scale smoke: the discrete-event interpreter must drive
# a traced p = 10 000 balancing run through the same observability
# contract as the thread backend — exp2's dynamic leg at scale, then
# tracetool merge/report/validate on the result (docs/RUNTIME.md §9).
# Bounded: the run takes single-digit seconds; a hang is a regression.
run env FUPERMOD_TRACE_DIR="$TRACE_TMP/event" \
    timeout 120 ./target/release/exp2_dynamic_cost --quick \
    --ranks 10000 --sim-engine event
EVENT_TRACE="$TRACE_TMP/event/exp2_dynamic_cost.trace.jsonl"
run ./target/release/fupermod_tracetool merge "$EVENT_TRACE" \
    --out "$TRACE_TMP/event_merged.jsonl"
run ./target/release/fupermod_tracetool report "$TRACE_TMP/event_merged.jsonl" \
    --json --out "$TRACE_TMP/event_summary.json"
run ./target/release/fupermod_tracetool validate \
    --schema scripts/tracetool_schema.json "$TRACE_TMP/event_summary.json"
# Overlap gate: on a fault-free sim plan the pipelined (ibcast
# double-buffered) matmul must produce a product **bit-identical** to
# the blocking schedule — the request API's drop-in contract (see
# docs/RUNTIME.md §8). The checksum lines are diffed; timing lines are
# not (the makespans legitimately differ — that is the point).
run ./target/release/fupermod_simulate \
    --app matmul --pipeline blocking --runtime sim --size 8 \
    | grep '^product checksum:' > "$TRACE_TMP/matmul_blocking.txt"
run ./target/release/fupermod_simulate \
    --app matmul --pipeline overlapped --runtime sim --size 8 \
    | grep '^product checksum:' > "$TRACE_TMP/matmul_overlapped.txt"
run diff "$TRACE_TMP/matmul_blocking.txt" "$TRACE_TMP/matmul_overlapped.txt"
# Multi-process transport gate: a 4-process localhost TCP run of the
# balance app must print output byte-identical to the single-process
# threaded run (bit-identical final partitions), and the per-process
# trace files must stitch into one causally ordered timeline that
# passes schema validation (docs/RUNTIME.md §10).
TCP_DIR="$TRACE_TMP/tcp"
mkdir -p "$TCP_DIR"
echo "==> tcp gate: single-process reference run"
./target/release/fupermod_simulate --app balance --platform two-speed \
    --ranks 4 --seed 7 --size 20000 > "$TCP_DIR/reference.txt"
TCP_PORT=$((20000 + $$ % 20000))
declare -a TCP_PIDS=()
for r in 1 2 3; do
    timeout 120 ./target/release/fupermod_simulate --app balance \
        --platform two-speed --ranks 4 --seed 7 --size 20000 \
        --transport tcp --rank-id "$r" --world 4 \
        --rendezvous "127.0.0.1:$TCP_PORT" --trace-dir "$TCP_DIR" &
    TCP_PIDS[$r]=$!
done
echo "==> tcp gate: 4-process localhost run (rank 0 foreground, port $TCP_PORT)"
timeout 120 ./target/release/fupermod_simulate --app balance \
    --platform two-speed --ranks 4 --seed 7 --size 20000 \
    --transport tcp --rank-id 0 --world 4 \
    --rendezvous "127.0.0.1:$TCP_PORT" --trace-dir "$TCP_DIR" \
    > "$TCP_DIR/rank0.txt"
for r in 1 2 3; do wait "${TCP_PIDS[$r]}"; done
run diff "$TCP_DIR/reference.txt" "$TCP_DIR/rank0.txt"
run ./target/release/fupermod_tracetool merge \
    "$TCP_DIR"/fupermod_simulate.rank*.trace.jsonl \
    --out "$TCP_DIR/tcp_merged.jsonl"
run ./target/release/fupermod_tracetool report "$TCP_DIR/tcp_merged.jsonl" \
    --json --out "$TCP_DIR/tcp_summary.json"
run ./target/release/fupermod_tracetool validate \
    --schema scripts/tracetool_schema.json "$TCP_DIR/tcp_summary.json"
# Serving gate: the partitioning-as-a-service daemon (fupermod_served,
# docs/SERVE.md) must accept concurrent clients streaming model points
# and answer a partition query **byte-identical** to the offline
# fupermod_builder + fupermod_partitioner pipeline over the same
# points, then shut down cleanly — all under a timeout so a wedged
# accept loop is a failure, not a hang.
SERVE_DIR="$TRACE_TMP/serve"
mkdir -p "$SERVE_DIR"
run ./target/release/fupermod_builder --platform two-speed --points 8 \
    --lo 64 --hi 8192 --out "$SERVE_DIR/models" > /dev/null
echo "==> serve gate: offline reference partition"
./target/release/fupermod_partitioner --models "$SERVE_DIR/models" \
    --total 20000 --algorithm numerical --model akima \
    > "$SERVE_DIR/offline.txt"
echo "==> serve gate: daemon + concurrent ingest clients + live /metrics"
timeout 120 ./target/release/fupermod_served --mode serve \
    --listen 127.0.0.1:0 --metrics-listen 127.0.0.1:0 \
    > "$SERVE_DIR/daemon.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$SERVE_DIR/daemon.out" && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^listening on //p' "$SERVE_DIR/daemon.out")
[ -n "$SERVE_ADDR" ] || { echo "daemon never announced its address" >&2; exit 1; }
METRICS_ADDR=$(sed -n 's/^metrics on //p' "$SERVE_DIR/daemon.out")
[ -n "$METRICS_ADDR" ] || { echo "daemon never announced its metrics address" >&2; exit 1; }
run timeout 60 ./target/release/fupermod_served --mode scrape \
    --connect "$METRICS_ADDR" --path /healthz
run timeout 60 ./target/release/fupermod_served --mode scrape \
    --connect "$METRICS_ADDR" --path /readyz
declare -a SERVE_PIDS=()
i=0
for f in "$SERVE_DIR"/models/*.points; do
    timeout 60 ./target/release/fupermod_served --mode ingest \
        --connect "$SERVE_ADDR" --points "$f" \
        --fingerprint "$(basename "$f")" > "$SERVE_DIR/client_$i.out" &
    SERVE_PIDS[$i]=$!
    i=$((i + 1))
done
# Scrape the health endpoints while the ingest clients are running:
# the observability plane must answer during load, not just at rest.
timeout 60 ./target/release/fupermod_served --mode scrape \
    --connect "$METRICS_ADDR" --path /healthz > /dev/null
timeout 60 ./target/release/fupermod_served --mode scrape \
    --connect "$METRICS_ADDR" --path /metrics > /dev/null
for pid in "${SERVE_PIDS[@]}"; do wait "$pid"; done
FPS=$(cd "$SERVE_DIR/models" && ls -- *.points | paste -sd, -)
echo "==> serve gate: partition query against the warm daemon"
timeout 60 ./target/release/fupermod_served --mode partition \
    --connect "$SERVE_ADDR" --fingerprints "$FPS" \
    --total 20000 --algorithm numerical > "$SERVE_DIR/served.txt" 2>/dev/null
run diff "$SERVE_DIR/offline.txt" "$SERVE_DIR/served.txt"
echo "==> serve gate: exposition parses and counters match client totals"
timeout 60 ./target/release/fupermod_served --mode scrape \
    --connect "$METRICS_ADDR" --path /metrics > "$SERVE_DIR/metrics.txt"
python3 - "$SERVE_DIR" <<'PY'
import glob, re, sys

serve_dir = sys.argv[1]
text = open(f"{serve_dir}/metrics.txt", encoding="utf-8").read()

# Every non-comment line must parse as `name{labels} value`.
sample = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? '
    r"(-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)
lines = [l for l in text.splitlines() if l and not l.startswith("#")]
if not lines:
    sys.exit("no samples in /metrics output")
for l in lines:
    if not sample.match(l):
        sys.exit(f"unparsable exposition line: {l!r}")

def counter_total(name, **labels):
    total = 0
    for l in lines:
        if not l.startswith(name):
            continue
        head, value = l.rsplit(" ", 1)
        if all(f'{k}="{v}"' in head for k, v in labels.items()):
            total += int(float(value))
    return total

# Each client printed `ingested N points ...`; every point was one
# ingest_point request, so the ok-counter must equal the client total.
expected = 0
for path in glob.glob(f"{serve_dir}/client_*.out"):
    for line in open(path, encoding="utf-8"):
        m = re.match(r"^ingested (\d+) points", line)
        if m:
            expected += int(m.group(1))
if expected == 0:
    sys.exit("ingest clients reported no points — gate is vacuous")
got = counter_total("served_requests_total", op="ingest_point", outcome="ok")
if got != expected:
    sys.exit(f"served_requests_total[ingest_point,ok] = {got}, clients sent {expected}")
if counter_total("served_requests_total", op="partition", outcome="ok") < 1:
    sys.exit("partition request not counted")
if counter_total("served_requests_total", outcome="error") != 0:
    sys.exit("unexpected error-outcome requests during the gate")
print(f"exposition ok: {len(lines)} samples, "
      f"{got} ingest_point requests matched the client total")
PY
# The protocol `stats` op must read the same registry snapshot the
# exposition serves (one source of truth), including uptime.
timeout 60 ./target/release/fupermod_served --mode stats \
    --connect "$SERVE_ADDR" > "$SERVE_DIR/stats.txt"
grep -q '^uptime_seconds ' "$SERVE_DIR/stats.txt" \
    || { echo "stats output missing uptime_seconds" >&2; exit 1; }
run timeout 60 ./target/release/fupermod_served --mode shutdown \
    --connect "$SERVE_ADDR"
wait "$SERVE_PID"
# After shutdown the observability plane must be gone with the daemon:
# a scrape that still succeeds means the listener out-lived serve().
if timeout 10 ./target/release/fupermod_served --mode scrape \
    --connect "$METRICS_ADDR" --path /readyz > /dev/null 2>&1; then
    echo "metrics listener still answering after shutdown" >&2
    exit 1
fi
# Bench regression gate (opt-in — needs two recorded BENCH_PR*.json
# files from this host; see scripts/bench_compare.sh):
#   BENCH_COMPARE_BASELINE=old.json BENCH_COMPARE_CURRENT=new.json scripts/check.sh
# When only BENCH_COMPARE_CURRENT is set, the baseline defaults to the
# newest committed BENCH_*.json that shares at least one benchmark
# with the current file (different recording MODEs measure disjoint
# bench sets, which bench_compare.sh rightly refuses to compare).
if [ -n "${BENCH_COMPARE_BASELINE:-}" ] || [ -n "${BENCH_COMPARE_CURRENT:-}" ]; then
    : "${BENCH_COMPARE_CURRENT:?set both BENCH_COMPARE_BASELINE and BENCH_COMPARE_CURRENT (or at least CURRENT)}"
    if [ -z "${BENCH_COMPARE_BASELINE:-}" ]; then
        for candidate in $(ls -t BENCH_*.json 2>/dev/null \
                | grep -vFx "$BENCH_COMPARE_CURRENT" || true); do
            if python3 -c '
import json, sys
names = lambda p: set(json.load(open(p)).get("results_stats", {}))
sys.exit(0 if names(sys.argv[1]) & names(sys.argv[2]) else 1)
' "$candidate" "$BENCH_COMPARE_CURRENT" 2>/dev/null; then
                BENCH_COMPARE_BASELINE=$candidate
                break
            fi
        done
        if [ -n "${BENCH_COMPARE_BASELINE:-}" ]; then
            echo "==> bench compare baseline auto-selected: $BENCH_COMPARE_BASELINE"
        else
            # First recording of a new MODE has nothing to diff
            # against — note it and move on rather than fail.
            echo "==> bench compare skipped: no BENCH_*.json shares benchmarks with $BENCH_COMPARE_CURRENT"
        fi
    fi
    if [ -n "${BENCH_COMPARE_BASELINE:-}" ]; then
        run scripts/bench_compare.sh "$BENCH_COMPARE_BASELINE" "$BENCH_COMPARE_CURRENT"
    fi
fi
# The runtime crate must also be clippy-clean on its own — including
# the discrete-event simulator (`src/sim/`), whose hot dispatch loop
# is exactly where sloppy clones and needless collects would hide.
# (The workspace pass below covers it too, but a targeted run keeps
# these lints enforced even when other crates are temporarily excluded
# from a gate.)
run cargo clippy -p fupermod-runtime --all-targets "${EXTRA[@]+"${EXTRA[@]}"}" -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --workspace --no-deps -q "${EXTRA[@]+"${EXTRA[@]}"}"
run cargo clippy --workspace --all-targets "${EXTRA[@]+"${EXTRA[@]}"}" -- -D warnings

echo "==> all checks passed"
