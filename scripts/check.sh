#!/usr/bin/env bash
# Local pre-PR gate: release build, full test suite, docs and lints
# with warnings denied. Run from the repository root. Any extra
# arguments (e.g. --offline) are forwarded to every cargo invocation.
set -euo pipefail

EXTRA=("$@")

run() {
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release "${EXTRA[@]+"${EXTRA[@]}"}"
run cargo test --workspace -q "${EXTRA[@]+"${EXTRA[@]}"}"
# The criterion benches must at least compile — they are the evidence
# trail for the performance work (see docs/PERFORMANCE.md).
run cargo bench --workspace --no-run -q "${EXTRA[@]+"${EXTRA[@]}"}"
# The kernel numerical-identity tests (gemm_parallel vs blocked/naive)
# are fast and worth re-running with optimisations on: release codegen
# reorders float work more aggressively than dev profile does.
run cargo test --release -p fupermod-kernels -q "${EXTRA[@]+"${EXTRA[@]}"}"
# The runtime's collective/fault tests — including the hub/ring/tree
# collective-parity suite (crates/runtime/tests/parity.rs) — spawn one
# thread per rank and assert on wall-clock deadlines; run them
# single-threaded so parallel test scheduling cannot starve a rank,
# and bound the whole suite.
run timeout 300 cargo test -p fupermod-runtime "${EXTRA[@]+"${EXTRA[@]}"}" -- --test-threads=1
# Tracetool gate: a traced end-to-end run must merge, report and
# schema-validate (the observability layer's contract — see
# docs/OBSERVABILITY.md §8). Uses the release binaries built above.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
run env FUPERMOD_TRACE_DIR="$TRACE_TMP" \
    ./target/release/exp2_dynamic_cost --quick --runtime sim
TRACE_FILE="$TRACE_TMP/exp2_dynamic_cost.trace.jsonl"
run ./target/release/fupermod_tracetool merge "$TRACE_FILE" \
    --out "$TRACE_TMP/merged.jsonl"
run ./target/release/fupermod_tracetool report "$TRACE_TMP/merged.jsonl" \
    --json --out "$TRACE_TMP/summary.json"
run ./target/release/fupermod_tracetool validate \
    --schema scripts/tracetool_schema.json "$TRACE_TMP/summary.json"
run ./target/release/fupermod_tracetool export "$TRACE_FILE" \
    --format chrome --out "$TRACE_TMP/chrome.json"
# Event-engine scale smoke: the discrete-event interpreter must drive
# a traced p = 10 000 balancing run through the same observability
# contract as the thread backend — exp2's dynamic leg at scale, then
# tracetool merge/report/validate on the result (docs/RUNTIME.md §9).
# Bounded: the run takes single-digit seconds; a hang is a regression.
run env FUPERMOD_TRACE_DIR="$TRACE_TMP/event" \
    timeout 120 ./target/release/exp2_dynamic_cost --quick \
    --ranks 10000 --sim-engine event
EVENT_TRACE="$TRACE_TMP/event/exp2_dynamic_cost.trace.jsonl"
run ./target/release/fupermod_tracetool merge "$EVENT_TRACE" \
    --out "$TRACE_TMP/event_merged.jsonl"
run ./target/release/fupermod_tracetool report "$TRACE_TMP/event_merged.jsonl" \
    --json --out "$TRACE_TMP/event_summary.json"
run ./target/release/fupermod_tracetool validate \
    --schema scripts/tracetool_schema.json "$TRACE_TMP/event_summary.json"
# Overlap gate: on a fault-free sim plan the pipelined (ibcast
# double-buffered) matmul must produce a product **bit-identical** to
# the blocking schedule — the request API's drop-in contract (see
# docs/RUNTIME.md §8). The checksum lines are diffed; timing lines are
# not (the makespans legitimately differ — that is the point).
run ./target/release/fupermod_simulate \
    --app matmul --pipeline blocking --runtime sim --size 8 \
    | grep '^product checksum:' > "$TRACE_TMP/matmul_blocking.txt"
run ./target/release/fupermod_simulate \
    --app matmul --pipeline overlapped --runtime sim --size 8 \
    | grep '^product checksum:' > "$TRACE_TMP/matmul_overlapped.txt"
run diff "$TRACE_TMP/matmul_blocking.txt" "$TRACE_TMP/matmul_overlapped.txt"
# Multi-process transport gate: a 4-process localhost TCP run of the
# balance app must print output byte-identical to the single-process
# threaded run (bit-identical final partitions), and the per-process
# trace files must stitch into one causally ordered timeline that
# passes schema validation (docs/RUNTIME.md §10).
TCP_DIR="$TRACE_TMP/tcp"
mkdir -p "$TCP_DIR"
echo "==> tcp gate: single-process reference run"
./target/release/fupermod_simulate --app balance --platform two-speed \
    --ranks 4 --seed 7 --size 20000 > "$TCP_DIR/reference.txt"
TCP_PORT=$((20000 + $$ % 20000))
declare -a TCP_PIDS=()
for r in 1 2 3; do
    timeout 120 ./target/release/fupermod_simulate --app balance \
        --platform two-speed --ranks 4 --seed 7 --size 20000 \
        --transport tcp --rank-id "$r" --world 4 \
        --rendezvous "127.0.0.1:$TCP_PORT" --trace-dir "$TCP_DIR" &
    TCP_PIDS[$r]=$!
done
echo "==> tcp gate: 4-process localhost run (rank 0 foreground, port $TCP_PORT)"
timeout 120 ./target/release/fupermod_simulate --app balance \
    --platform two-speed --ranks 4 --seed 7 --size 20000 \
    --transport tcp --rank-id 0 --world 4 \
    --rendezvous "127.0.0.1:$TCP_PORT" --trace-dir "$TCP_DIR" \
    > "$TCP_DIR/rank0.txt"
for r in 1 2 3; do wait "${TCP_PIDS[$r]}"; done
run diff "$TCP_DIR/reference.txt" "$TCP_DIR/rank0.txt"
run ./target/release/fupermod_tracetool merge \
    "$TCP_DIR"/fupermod_simulate.rank*.trace.jsonl \
    --out "$TCP_DIR/tcp_merged.jsonl"
run ./target/release/fupermod_tracetool report "$TCP_DIR/tcp_merged.jsonl" \
    --json --out "$TCP_DIR/tcp_summary.json"
run ./target/release/fupermod_tracetool validate \
    --schema scripts/tracetool_schema.json "$TCP_DIR/tcp_summary.json"
# Serving gate: the partitioning-as-a-service daemon (fupermod_served,
# docs/SERVE.md) must accept concurrent clients streaming model points
# and answer a partition query **byte-identical** to the offline
# fupermod_builder + fupermod_partitioner pipeline over the same
# points, then shut down cleanly — all under a timeout so a wedged
# accept loop is a failure, not a hang.
SERVE_DIR="$TRACE_TMP/serve"
mkdir -p "$SERVE_DIR"
run ./target/release/fupermod_builder --platform two-speed --points 8 \
    --lo 64 --hi 8192 --out "$SERVE_DIR/models" > /dev/null
echo "==> serve gate: offline reference partition"
./target/release/fupermod_partitioner --models "$SERVE_DIR/models" \
    --total 20000 --algorithm numerical --model akima \
    > "$SERVE_DIR/offline.txt"
echo "==> serve gate: daemon + 2 concurrent ingest clients"
timeout 120 ./target/release/fupermod_served --mode serve \
    --listen 127.0.0.1:0 > "$SERVE_DIR/daemon.out" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 100); do
    grep -q '^listening on ' "$SERVE_DIR/daemon.out" && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^listening on //p' "$SERVE_DIR/daemon.out")
[ -n "$SERVE_ADDR" ] || { echo "daemon never announced its address" >&2; exit 1; }
declare -a SERVE_PIDS=()
i=0
for f in "$SERVE_DIR"/models/*.points; do
    timeout 60 ./target/release/fupermod_served --mode ingest \
        --connect "$SERVE_ADDR" --points "$f" \
        --fingerprint "$(basename "$f")" > /dev/null &
    SERVE_PIDS[$i]=$!
    i=$((i + 1))
done
for pid in "${SERVE_PIDS[@]}"; do wait "$pid"; done
FPS=$(cd "$SERVE_DIR/models" && ls -- *.points | paste -sd, -)
echo "==> serve gate: partition query against the warm daemon"
timeout 60 ./target/release/fupermod_served --mode partition \
    --connect "$SERVE_ADDR" --fingerprints "$FPS" \
    --total 20000 --algorithm numerical > "$SERVE_DIR/served.txt" 2>/dev/null
run diff "$SERVE_DIR/offline.txt" "$SERVE_DIR/served.txt"
run timeout 60 ./target/release/fupermod_served --mode shutdown \
    --connect "$SERVE_ADDR"
wait "$SERVE_PID"
# Bench regression gate (opt-in — needs two recorded BENCH_PR*.json
# files from this host; see scripts/bench_compare.sh):
#   BENCH_COMPARE_BASELINE=old.json BENCH_COMPARE_CURRENT=new.json scripts/check.sh
if [ -n "${BENCH_COMPARE_BASELINE:-}" ] || [ -n "${BENCH_COMPARE_CURRENT:-}" ]; then
    : "${BENCH_COMPARE_BASELINE:?set both BENCH_COMPARE_BASELINE and BENCH_COMPARE_CURRENT}"
    : "${BENCH_COMPARE_CURRENT:?set both BENCH_COMPARE_BASELINE and BENCH_COMPARE_CURRENT}"
    run scripts/bench_compare.sh "$BENCH_COMPARE_BASELINE" "$BENCH_COMPARE_CURRENT"
fi
# The runtime crate must also be clippy-clean on its own — including
# the discrete-event simulator (`src/sim/`), whose hot dispatch loop
# is exactly where sloppy clones and needless collects would hide.
# (The workspace pass below covers it too, but a targeted run keeps
# these lints enforced even when other crates are temporarily excluded
# from a gate.)
run cargo clippy -p fupermod-runtime --all-targets "${EXTRA[@]+"${EXTRA[@]}"}" -- -D warnings
RUSTDOCFLAGS="-D warnings" run cargo doc --workspace --no-deps -q "${EXTRA[@]+"${EXTRA[@]}"}"
run cargo clippy --workspace --all-targets "${EXTRA[@]+"${EXTRA[@]}"}" -- -D warnings

echo "==> all checks passed"
