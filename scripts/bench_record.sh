#!/usr/bin/env bash
# Records performance evidence into a machine-readable JSON file
# validated against scripts/bench_schema.json. Two modes:
#
#   MODE=pr2 (default) — parallel model construction / measurement
#     hot-path evidence (default OUT=BENCH_PR2.json; see
#     docs/PERFORMANCE.md for how to read it). Interpret CPU-bound
#     ratios together with host.cpus: on a single-core host the
#     thread-level bars (gemm_parallel) cannot beat their serial
#     baselines, while the latency-bound model-build bars still can
#     (the workers overlap blocking waits, not CPU).
#
#   MODE=pr4 — collective-algorithm evidence (default
#     OUT=BENCH_PR4.json; see docs/RUNTIME.md §6). Records the
#     `vtime_collectives/p{4,16,64}_{hub,ring,tree}` benches, whose
#     "times" are Hockney *virtual seconds* charged by the simulated
#     backend for one allgatherv+allreduce round — schedule quality,
#     independent of host speed. The derived ratios are hub ÷
#     {ring,tree}: how much virtual time each decentralised schedule
#     saves over the serialized star.
#
#   MODE=pr6 — compute/communication overlap evidence (default
#     OUT=BENCH_PR6.json; see docs/RUNTIME.md §8 and EXPERIMENTS.md).
#     Records the `{vtime,wall}_{matmul_pipeline,balance_overlap}`
#     benches: blocking vs request-pipelined schedules of the
#     broadcast matmul and the distributed balancing loop. The derived
#     ratios are blocking ÷ overlapped. Read `vtime_*` as schedule
#     quality (deterministic Hockney clocks) and `wall_*` as latency
#     hiding under an injected message delay — on a single-core host
#     the wall wins are bounded by how much real compute the delay can
#     hide under (see host.cpus).
#
# Runs the relevant criterion benches RUNS times (default 3) and takes
# the per-benchmark median time.
#
#   RUNS=5 OUT=BENCH_PR2.json scripts/bench_record.sh
#   MODE=pr4 scripts/bench_record.sh
set -euo pipefail

RUNS=${RUNS:-3}
MODE=${MODE:-pr2}
case "$MODE" in
pr2) OUT=${OUT:-BENCH_PR2.json} ;;
pr4) OUT=${OUT:-BENCH_PR4.json} ;;
pr6) OUT=${OUT:-BENCH_PR6.json} ;;
*)
    echo "unknown MODE=$MODE (expected pr2, pr4 or pr6)" >&2
    exit 2
    ;;
esac
SCHEMA="$(dirname "$0")/bench_schema.json"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for i in $(seq "$RUNS"); do
    echo "==> bench run $i/$RUNS (MODE=$MODE)" >&2
    if [ "$MODE" = pr2 ]; then
        cargo bench -q -p fupermod-bench \
            --bench model_build \
            --bench gemm \
            --bench interp \
            --bench benchmark_machinery >>"$raw"
    elif [ "$MODE" = pr6 ]; then
        cargo bench -q -p fupermod-bench \
            --bench overlap >>"$raw"
    else
        cargo bench -q -p fupermod-bench \
            --bench comm_collectives >>"$raw"
    fi
done

python3 - "$raw" "$OUT" "$RUNS" "$SCHEMA" "$MODE" <<'PY'
import json, os, platform, re, statistics, sys
from datetime import datetime, timezone

raw_path, out_path, runs, schema_path, mode = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4], sys.argv[5],
)

# Criterion-shim output: `name<padding>    12.34 µs/iter (56 iters)`.
LINE = re.compile(
    r"^(\S+)\s+([0-9.]+)\s*(ns|µs|us|ms|s)\s*/iter\s+\((\d+) iters\)\s*$"
)
SCALE = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}

samples = {}
with open(raw_path, encoding="utf-8") as f:
    for line in f:
        m = LINE.match(line.rstrip("\n"))
        if m:
            name, value, unit, _iters = m.groups()
            samples.setdefault(name, []).append(float(value) * SCALE[unit])

if not samples:
    sys.exit("no benchmark lines parsed — did the benches run?")

results = {name: statistics.median(vals) for name, vals in sorted(samples.items())}

def ratio(baseline, optimised):
    """Speedup of `optimised` over `baseline` (>1 means faster)."""
    if baseline not in results or optimised not in results:
        sys.exit(f"missing benchmark for ratio: {baseline} vs {optimised}")
    return results[baseline] / results[optimised]

if mode == "pr2":
    derived = {
        "model_build_parallel4_speedup": ratio("model_build/serial/1", "model_build/parallel/4"),
        "gemm_parallel4_512_speedup": ratio("gemm_parallel/blocked/512", "gemm_parallel/parallel4/512"),
        "akima_eval64_cached_speedup": ratio("akima_eval64/recompute", "akima_eval64/cached"),
        "akima_eval64_segment_resolved_speedup": ratio(
            "akima_eval64/recompute_segment_resolved", "akima_eval64/cached_segment_resolved"
        ),
        "benchmark_stats_incremental_speedup": ratio("benchmark_stats/recompute", "benchmark_stats/incremental"),
    }
elif mode == "pr6":
    derived = {
        f"{metric}_{app}_speedup": ratio(
            f"{metric}_{app}/blocking", f"{metric}_{app}/overlapped"
        )
        for metric in ("vtime", "wall")
        for app in ("matmul_pipeline", "balance_overlap")
    }
else:
    derived = {
        f"vtime_p{p}_{alg}_speedup": ratio(
            f"vtime_collectives/p{p}_hub", f"vtime_collectives/p{p}_{alg}"
        )
        for p in (4, 16, 64)
        for alg in ("ring", "tree")
    }

doc = {
    "schema_version": 1,
    "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {
        "cpus": os.cpu_count() or 1,
        "os": f"{platform.system()} {platform.release()} {platform.machine()}",
    },
    "runs": runs,
    "results_s": results,
    "derived": derived,
}

# --- validate against the schema before writing ---
with open(schema_path, encoding="utf-8") as f:
    schema = json.load(f)

TYPES = {"int": int, "float": (int, float), "str": str, "dict": dict}

def check(obj, required, where):
    for key, tname in required.items():
        if key not in obj:
            sys.exit(f"schema violation: missing {where}{key}")
        if not isinstance(obj[key], TYPES[tname]):
            sys.exit(f"schema violation: {where}{key} is not {tname}")
        if tname == "int" and isinstance(obj[key], bool):
            sys.exit(f"schema violation: {where}{key} is not int")

check(doc, schema["required"], "")
check(doc["host"], schema["host_required"], "host.")
check(doc["derived"], schema["derived_required_by_mode"][mode], "derived.")

with open(out_path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"wrote {out_path} ({len(results)} benchmarks, median of {runs} runs)")
for k, v in doc["derived"].items():
    print(f"  {k}: {v:.2f}x")
PY
