#!/usr/bin/env bash
# Records performance evidence into a machine-readable JSON file
# validated against scripts/bench_schema.json. Two modes:
#
#   MODE=pr2 (default) — parallel model construction / measurement
#     hot-path evidence (default OUT=BENCH_PR2.json; see
#     docs/PERFORMANCE.md for how to read it). Interpret CPU-bound
#     ratios together with host.cpus: on a single-core host the
#     thread-level bars (gemm_parallel) cannot beat their serial
#     baselines, while the latency-bound model-build bars still can
#     (the workers overlap blocking waits, not CPU).
#
#   MODE=pr4 — collective-algorithm evidence (default
#     OUT=BENCH_PR4.json; see docs/RUNTIME.md §6). Records the
#     `vtime_collectives/p{4,16,64}_{hub,ring,tree}` benches, whose
#     "times" are Hockney *virtual seconds* charged by the simulated
#     backend for one allgatherv+allreduce round — schedule quality,
#     independent of host speed. The derived ratios are hub ÷
#     {ring,tree}: how much virtual time each decentralised schedule
#     saves over the serialized star.
#
#   MODE=pr6 — compute/communication overlap evidence (default
#     OUT=BENCH_PR6.json; see docs/RUNTIME.md §8 and EXPERIMENTS.md).
#     Records the `{vtime,wall}_{matmul_pipeline,balance_overlap}`
#     benches: blocking vs request-pipelined schedules of the
#     broadcast matmul and the distributed balancing loop. The derived
#     ratios are blocking ÷ overlapped. Read `vtime_*` as schedule
#     quality (deterministic Hockney clocks) and `wall_*` as latency
#     hiding under an injected message delay — on a single-core host
#     the wall wins are bounded by how much real compute the delay can
#     hide under (see host.cpus).
#
#   MODE=pr7 — discrete-event simulator scale evidence (default
#     OUT=BENCH_PR7.json; see docs/RUNTIME.md §9). Records the
#     `sim_scale/p{64,1k,10k,100k}_{ring,tree}` benches — host
#     wall-clock of the event engine simulating one collective round —
#     plus the `sim_scale/p100k_ring_balance` acceptance scenario and
#     the `# metric` lines the bench prints (dispatch events/sec at
#     p = 100k, peak RSS).
#
#   MODE=pr9 — partitioning-as-a-service evidence (default
#     OUT=BENCH_PR9.json; see docs/SERVE.md). Records the
#     `store_serve/{cold_build_partition,warm_lookup}` and
#     `store_ingest/{incremental,rebuild}` benches. The derived ratios
#     are cold ÷ warm (what a plan-cache hit saves over rebuilding the
#     models and re-solving per request; must be >= 10x) and rebuild ÷
#     incremental (what window-patching saves over from-scratch model
#     rebuilds while streaming 640 observations over 128 sizes; must
#     be >= 2x) — both ratios are acceptance-checked here.
#
#   MODE=pr10 — live telemetry registry overhead evidence (default
#     OUT=BENCH_PR10.json; see docs/OBSERVABILITY.md §9). Records the
#     `telemetry_overhead/{no_telemetry,registry_disabled,
#     registry_enabled,global_disabled}` benches. The derived values
#     are absolute ns/op plus the disabled-path overhead over the bare
#     baseline, acceptance-checked here: a disabled registry call must
#     cost no more than a few ns/op (one relaxed AtomicBool load).
#
#   MODE=pr8 — multi-process TCP transport evidence (default
#     OUT=BENCH_PR8.json; see docs/RUNTIME.md §10). Records the
#     `net_collectives/p4_{tcp,threaded}` and `net_p2p/rtt_{tcp,threaded}`
#     benches — the same collective round and small-message ping-pong
#     on the socket transport vs the shared-memory threaded backend,
#     all on loopback — plus the bulk-throughput `# metric` lines. The
#     derived ratios are TCP ÷ threaded: the socket transport's cost
#     factor for the identical data plane.
#
# Runs the relevant criterion benches RUNS times (default 3) and takes
# the per-benchmark median time. Every benchmark also gets a
# `results_stats` entry with the across-run mean, its 95% confidence
# half-width (1.96·stdev/√n) and the coefficient of variation, so a
# reader can tell a stable 2x from a noisy one.
#
#   RUNS=5 OUT=BENCH_PR2.json scripts/bench_record.sh
#   MODE=pr4 scripts/bench_record.sh
set -euo pipefail

RUNS=${RUNS:-3}
MODE=${MODE:-pr2}
case "$MODE" in
pr2) OUT=${OUT:-BENCH_PR2.json} ;;
pr4) OUT=${OUT:-BENCH_PR4.json} ;;
pr6) OUT=${OUT:-BENCH_PR6.json} ;;
pr7) OUT=${OUT:-BENCH_PR7.json} ;;
pr8) OUT=${OUT:-BENCH_PR8.json} ;;
pr9) OUT=${OUT:-BENCH_PR9.json} ;;
pr10) OUT=${OUT:-BENCH_PR10.json} ;;
*)
    echo "unknown MODE=$MODE (expected pr2, pr4, pr6, pr7, pr8, pr9 or pr10)" >&2
    exit 2
    ;;
esac
SCHEMA="$(dirname "$0")/bench_schema.json"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for i in $(seq "$RUNS"); do
    echo "==> bench run $i/$RUNS (MODE=$MODE)" >&2
    if [ "$MODE" = pr2 ]; then
        cargo bench -q -p fupermod-bench \
            --bench model_build \
            --bench gemm \
            --bench interp \
            --bench benchmark_machinery >>"$raw"
    elif [ "$MODE" = pr6 ]; then
        cargo bench -q -p fupermod-bench \
            --bench overlap >>"$raw"
    elif [ "$MODE" = pr7 ]; then
        cargo bench -q -p fupermod-bench \
            --bench sim_scale >>"$raw"
    elif [ "$MODE" = pr8 ]; then
        cargo bench -q -p fupermod-bench \
            --bench net_transport >>"$raw"
    elif [ "$MODE" = pr9 ]; then
        cargo bench -q -p fupermod-bench \
            --bench store_serve >>"$raw"
    elif [ "$MODE" = pr10 ]; then
        cargo bench -q -p fupermod-bench \
            --bench telemetry_overhead >>"$raw"
    else
        cargo bench -q -p fupermod-bench \
            --bench comm_collectives >>"$raw"
    fi
done

python3 - "$raw" "$OUT" "$RUNS" "$SCHEMA" "$MODE" <<'PY'
import json, math, os, platform, re, statistics, subprocess, sys
from datetime import datetime, timezone

raw_path, out_path, runs, schema_path, mode = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4], sys.argv[5],
)

# Criterion-shim output: `name<padding>    12.34 µs/iter (56 iters)`.
LINE = re.compile(
    r"^(\S+)\s+([0-9.]+)\s*(ns|µs|us|ms|s)\s*/iter\s+\((\d+) iters\)\s*$"
)
# Bench-emitted derived metrics: `# metric NAME VALUE`.
METRIC = re.compile(r"^# metric (\S+) ([0-9eE+.-]+)\s*$")
SCALE = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}

samples = {}
metric_samples = {}
with open(raw_path, encoding="utf-8") as f:
    for line in f:
        line = line.rstrip("\n")
        m = LINE.match(line)
        if m:
            name, value, unit, _iters = m.groups()
            samples.setdefault(name, []).append(float(value) * SCALE[unit])
            continue
        m = METRIC.match(line)
        if m:
            metric_samples.setdefault(m.group(1), []).append(float(m.group(2)))

if not samples:
    sys.exit("no benchmark lines parsed — did the benches run?")

results = {name: statistics.median(vals) for name, vals in sorted(samples.items())}

def spread(vals):
    """Across-run mean, 95% CI half-width and coefficient of variation."""
    n = len(vals)
    mean = statistics.fmean(vals)
    stdev = statistics.stdev(vals) if n > 1 else 0.0
    return {
        "mean": mean,
        "ci95": 1.96 * stdev / math.sqrt(n) if n > 1 else 0.0,
        "cov": stdev / mean if mean else 0.0,
    }

results_stats = {name: spread(vals) for name, vals in sorted(samples.items())}

def metric(name):
    """Median of a bench-emitted `# metric` line across runs."""
    if name not in metric_samples:
        sys.exit(f"missing bench metric: {name}")
    return statistics.median(metric_samples[name])

def ratio(baseline, optimised):
    """Speedup of `optimised` over `baseline` (>1 means faster)."""
    if baseline not in results or optimised not in results:
        sys.exit(f"missing benchmark for ratio: {baseline} vs {optimised}")
    return results[baseline] / results[optimised]

if mode == "pr2":
    derived = {
        "model_build_parallel4_speedup": ratio("model_build/serial/1", "model_build/parallel/4"),
        "gemm_parallel4_512_speedup": ratio("gemm_parallel/blocked/512", "gemm_parallel/parallel4/512"),
        "akima_eval64_cached_speedup": ratio("akima_eval64/recompute", "akima_eval64/cached"),
        "akima_eval64_segment_resolved_speedup": ratio(
            "akima_eval64/recompute_segment_resolved", "akima_eval64/cached_segment_resolved"
        ),
        "benchmark_stats_incremental_speedup": ratio("benchmark_stats/recompute", "benchmark_stats/incremental"),
    }
elif mode == "pr6":
    derived = {
        f"{metric}_{app}_speedup": ratio(
            f"{metric}_{app}/blocking", f"{metric}_{app}/overlapped"
        )
        for metric in ("vtime", "wall")
        for app in ("matmul_pipeline", "balance_overlap")
    }
elif mode == "pr7":
    if "sim_scale/p100k_ring_balance" not in results:
        sys.exit("missing benchmark: sim_scale/p100k_ring_balance")
    derived = {
        "sim_scale_p100k_events_per_sec": metric("sim_scale_p100k_events_per_sec"),
        "sim_scale_peak_rss_mib": metric("sim_scale_peak_rss_mib"),
        "p100k_ring_balance_wall_s": results["sim_scale/p100k_ring_balance"],
        # Wall-clock growth for 10x more ranks — near 10 means the
        # engine scales linearly in p.
        "ring_wall_scale_100k_over_10k": (
            results["sim_scale/p100k_ring"] / results["sim_scale/p10k_ring"]
        ),
    }
    if derived["p100k_ring_balance_wall_s"] >= 60.0:
        sys.exit(
            "acceptance violation: p100k_ring_balance took "
            f"{derived['p100k_ring_balance_wall_s']:.1f}s (must be < 60s)"
        )
elif mode == "pr8":
    derived = {
        # TCP time / threaded time: the socket transport's cost factor
        # (> 1 means the wire path is slower, as expected on loopback).
        "net_collective_tcp_over_threaded": ratio(
            "net_collectives/p4_tcp", "net_collectives/p4_threaded"
        ),
        "net_p2p_rtt_tcp_over_threaded": ratio(
            "net_p2p/rtt_tcp", "net_p2p/rtt_threaded"
        ),
        "net_tcp_bulk_mib_per_sec": metric("net_tcp_bulk_mib_per_sec"),
        "net_threaded_bulk_mib_per_sec": metric("net_threaded_bulk_mib_per_sec"),
    }
elif mode == "pr9":
    derived = {
        # What a warm plan-cache hit saves over rebuilding the member
        # models and re-solving the partition per request.
        "warm_over_cold_lookup_speedup": ratio(
            "store_serve/cold_build_partition", "store_serve/warm_lookup"
        ),
        # What incremental window-patching saves over from-scratch
        # model rebuilds while streaming observations.
        "incremental_over_rebuild_speedup": ratio(
            "store_ingest/rebuild", "store_ingest/incremental"
        ),
    }
    if derived["warm_over_cold_lookup_speedup"] < 10.0:
        sys.exit(
            "acceptance violation: warm lookup only "
            f"{derived['warm_over_cold_lookup_speedup']:.1f}x over cold "
            "build+partition (must be >= 10x)"
        )
    if derived["incremental_over_rebuild_speedup"] < 2.0:
        sys.exit(
            "acceptance violation: incremental ingest only "
            f"{derived['incremental_over_rebuild_speedup']:.1f}x over "
            "rebuilding ingest (must be >= 2x)"
        )
elif mode == "pr10":
    names = {
        "baseline": "telemetry_overhead/no_telemetry",
        "disabled": "telemetry_overhead/registry_disabled",
        "enabled": "telemetry_overhead/registry_enabled",
        "global_disabled": "telemetry_overhead/global_disabled",
    }
    for n in names.values():
        if n not in results:
            sys.exit(f"missing benchmark: {n}")
    derived = {
        "telemetry_baseline_ns_per_op": results[names["baseline"]] * 1e9,
        "telemetry_disabled_ns_per_op": results[names["disabled"]] * 1e9,
        "telemetry_enabled_ns_per_op": results[names["enabled"]] * 1e9,
        "telemetry_global_disabled_ns_per_op": results[names["global_disabled"]] * 1e9,
        # The untraced-run price: disabled-registry call minus the bare
        # loop. Can dip slightly negative from run-to-run noise.
        "telemetry_disabled_overhead_ns": (
            results[names["disabled"]] - results[names["baseline"]]
        ) * 1e9,
    }
    if derived["telemetry_disabled_overhead_ns"] >= 10.0:
        sys.exit(
            "acceptance violation: disabled telemetry costs "
            f"{derived['telemetry_disabled_overhead_ns']:.1f}ns/op over the "
            "bare baseline (must be < 10ns — one relaxed load)"
        )
else:
    derived = {
        f"vtime_p{p}_{alg}_speedup": ratio(
            f"vtime_collectives/p{p}_hub", f"vtime_collectives/p{p}_{alg}"
        )
        for p in (4, 16, 64)
        for alg in ("ring", "tree")
    }

def git_provenance():
    """The commit the numbers were measured at, and whether the tree
    had uncommitted changes — so a recorded file can be tied back to
    (or disqualified as evidence for) an exact source state."""
    def run(*argv):
        return subprocess.run(
            argv, capture_output=True, text=True, check=True
        ).stdout.strip()
    try:
        sha = run("git", "rev-parse", "HEAD")
        dirty = bool(run("git", "status", "--porcelain"))
    except (OSError, subprocess.CalledProcessError):
        sys.exit("cannot determine git provenance — run from the repo checkout")
    return {"sha": sha, "dirty": dirty}

doc = {
    "schema_version": 2,
    "generated_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {
        "cpus": os.cpu_count() or 1,
        "os": f"{platform.system()} {platform.release()} {platform.machine()}",
    },
    "git": git_provenance(),
    "runs": runs,
    "results_s": results,
    "results_stats": results_stats,
    "derived": derived,
}

# --- validate against the schema before writing ---
with open(schema_path, encoding="utf-8") as f:
    schema = json.load(f)

TYPES = {"int": int, "float": (int, float), "str": str, "dict": dict, "bool": bool}

def check(obj, required, where):
    for key, tname in required.items():
        if key not in obj:
            sys.exit(f"schema violation: missing {where}{key}")
        if not isinstance(obj[key], TYPES[tname]):
            sys.exit(f"schema violation: {where}{key} is not {tname}")
        if tname == "int" and isinstance(obj[key], bool):
            sys.exit(f"schema violation: {where}{key} is not int")

check(doc, schema["required"], "")
check(doc["host"], schema["host_required"], "host.")
check(doc["git"], schema["git_required"], "git.")
check(doc["derived"], schema["derived_required_by_mode"][mode], "derived.")
for name, stats in doc["results_stats"].items():
    check(stats, schema["results_stats_required"], f"results_stats.{name}.")

with open(out_path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"wrote {out_path} ({len(results)} benchmarks, median of {runs} runs)")
for k, v in doc["derived"].items():
    # pr7/pr8 derive (some) absolute quantities (events/sec, MiB/s,
    # seconds), not only speedup ratios.
    suffix = "" if mode in ("pr7", "pr8", "pr10") else "x"
    print(f"  {k}: {v:.2f}{suffix}")
PY
