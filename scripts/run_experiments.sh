#!/usr/bin/env bash
# Regenerates every figure/experiment of the paper (see DESIGN.md's
# index) into results/*.csv. Run from the repository root.
set -euo pipefail

OUT=${1:-results}
mkdir -p "$OUT"

BINS="fig2_interpolation fig3_partial_fpm fig4_jacobi_balancing \
      exp1_partition_quality exp2_dynamic_cost exp3_matmul_speedup \
      exp4_matrix2d_comm exp5_noise_sensitivity exp6_model_points \
      exp7_hierarchy exp8_interpolation_error exp9_dynamic_matmul"

cargo build --release -p fupermod-bench

for bin in $BINS; do
    echo "== $bin"
    cargo run --release -q -p fupermod-bench --bin "$bin" \
        > "$OUT/$bin.csv" 2> "$OUT/$bin.log" || {
        echo "FAILED: $bin (see $OUT/$bin.log)"; exit 1;
    }
done
echo "all experiments written to $OUT/"
