#!/usr/bin/env bash
# Statistical regression gate over two BENCH_PR*.json files produced
# by scripts/bench_record.sh:
#
#   scripts/bench_compare.sh BASELINE.json CURRENT.json
#
# For every benchmark present in both files it compares the across-run
# 95% confidence intervals (results_stats: mean ± ci95). A benchmark
# REGRESSES when the current mean is slower than the baseline mean and
# the two intervals do not overlap — i.e. the slowdown is
# distinguishable from run-to-run noise at the recorded confidence,
# not merely a noisy re-measurement. Any regression fails the script
# (exit 1); improvements and overlapping intervals pass.
#
# Opt-in wiring in scripts/check.sh: set
#
#   BENCH_COMPARE_BASELINE=old.json BENCH_COMPARE_CURRENT=new.json scripts/check.sh
#
# and the gate runs after the test suite. It is opt-in because it
# needs two recorded files from the *same host* to be meaningful —
# cross-host comparisons conflate hardware with code (check host.cpus
# and git.sha/git.dirty in the files when reading a failure).
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 BASELINE.json CURRENT.json" >&2
    exit 2
fi

python3 - "$1" "$2" <<'PY'
import json, sys

baseline_path, current_path = sys.argv[1], sys.argv[2]

def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if "results_stats" not in doc:
        sys.exit(f"{path}: no results_stats — re-record with scripts/bench_record.sh")
    return doc

baseline, current = load(baseline_path), load(current_path)

for name, doc in (("baseline", baseline), ("current", current)):
    git = doc.get("git", {})
    sha = git.get("sha", "unknown")[:12]
    dirty = "+dirty" if git.get("dirty") else ""
    print(f"{name}: {sha}{dirty} on {doc.get('host', {}).get('os', '?')}")

shared = sorted(set(baseline["results_stats"]) & set(current["results_stats"]))
if not shared:
    sys.exit("no benchmarks in common — comparing unrelated recordings?")

regressions = []
for name in shared:
    b, c = baseline["results_stats"][name], current["results_stats"][name]
    change = (c["mean"] - b["mean"]) / b["mean"] if b["mean"] else 0.0
    # Slower, and the intervals are disjoint: the current run's fastest
    # plausible mean is still slower than the baseline's slowest.
    regressed = (
        c["mean"] > b["mean"]
        and c["mean"] - c["ci95"] > b["mean"] + b["ci95"]
    )
    verdict = "REGRESSED" if regressed else ("ok (slower, within noise)" if change > 0 else "ok")
    print(
        f"  {name}: {b['mean']:.3e}s ±{b['ci95']:.1e} -> "
        f"{c['mean']:.3e}s ±{c['ci95']:.1e} ({change:+.1%}) {verdict}"
    )
    if regressed:
        regressions.append(name)

only = sorted(set(current["results_stats"]) - set(baseline["results_stats"]))
if only:
    print(f"  (no baseline for: {', '.join(only)})")

if regressions:
    sys.exit(
        f"{len(regressions)} benchmark(s) regressed beyond the 95% CI: "
        + ", ".join(regressions)
    )
print(f"no regressions across {len(shared)} shared benchmark(s)")
PY
