//! Quickstart: benchmark two heterogeneous devices, build the three
//! performance models, and compare the partitions each algorithm
//! produces.
//!
//! Run with: `cargo run --example quickstart`

use fupermod::core::benchmark::Benchmark;
use fupermod::core::kernel::DeviceKernel;
use fupermod::core::model::{AkimaModel, ConstantModel, Model, PiecewiseModel};
use fupermod::core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod::core::{CoreError, Precision};
use fupermod::platform::{cluster, WorkloadProfile};

/// One partitioning configuration: label, algorithm, and its models.
type Run<'a> = (&'a str, Box<dyn Partitioner>, &'a Vec<&'a dyn Model>);

fn main() -> Result<(), CoreError> {
    // A fast and a slow CPU of a simulated dedicated cluster, running
    // the paper's matrix-multiplication kernel (blocking factor 16).
    let profile = WorkloadProfile::matrix_update(16);
    let devices = [cluster::fast_cpu("fast0", 1), cluster::slow_cpu("slow0", 2)];
    let total: u64 = 20_000;

    // 1. Measure: a handful of statistically controlled benchmarks per
    //    device.
    let precision = Precision::default();
    let bench = Benchmark::new(&precision);
    let sizes = [100u64, 500, 2_000, 8_000, 16_000];

    let mut cpms = Vec::new();
    let mut pwls = Vec::new();
    let mut akimas = Vec::new();
    for dev in &devices {
        let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
        let mut cpm = ConstantModel::new();
        let mut pwl = PiecewiseModel::new();
        let mut akima = AkimaModel::new();
        for &d in &sizes {
            let point = bench.measure(&mut kernel, d)?;
            println!(
                "measured {:>6} units on {}: {:.4} s ({} reps, ±{:.2e})",
                point.d,
                dev.name(),
                point.t,
                point.reps,
                point.ci
            );
            cpm.update(point)?;
            pwl.update(point)?;
            akima.update(point)?;
        }
        cpms.push(cpm);
        pwls.push(pwl);
        akimas.push(akima);
    }

    // 2. Model + 3. Partition: each algorithm with its natural model.
    println!("\npartitioning {total} units between {} devices:", devices.len());
    let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
    let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
    let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();

    let runs: Vec<Run> = vec![
        ("even        ", Box::new(EvenPartitioner), &cpm_refs),
        ("constant    ", Box::new(ConstantPartitioner), &cpm_refs),
        ("geometric   ", Box::new(GeometricPartitioner::default()), &pwl_refs),
        ("numerical   ", Box::new(NumericalPartitioner::default()), &akima_refs),
    ];
    for (name, partitioner, models) in runs {
        let dist = partitioner.partition(total, models)?;
        let truth: Vec<f64> = dist
            .sizes()
            .iter()
            .enumerate()
            .map(|(i, &d)| devices[i].ideal_time(d, &profile))
            .collect();
        println!(
            "{name} -> sizes {:?}, predicted makespan {:.3} s, true times {:?}",
            dist.sizes(),
            dist.predicted_makespan(),
            truth.iter().map(|t| format!("{t:.3}")).collect::<Vec<_>>()
        );
    }
    Ok(())
}
