//! Partitioning on a hybrid CPU/GPU node: the GPU's combined speed
//! function (device + dedicated host core, PCIe transfers, launch
//! overhead, 256 MB memory limit) is highly non-constant, which is
//! precisely the case where constant models fail (paper §3,
//! situations (i)–(iii)).
//!
//! The example sweeps the total problem size and shows how the Akima
//! FPM keeps reassigning work: the GPU dominates mid-range sizes but
//! its share collapses once a proportional slice would spill device
//! memory, while the CPM blindly keeps the ratio fixed.
//!
//! Run with: `cargo run --release --example gpu_cluster`

use fupermod::apps::matmul::build_device_models;
use fupermod::core::model::{AkimaModel, ConstantModel, Model};
use fupermod::core::partition::{ConstantPartitioner, NumericalPartitioner, Partitioner};
use fupermod::core::{CoreError, Precision};
use fupermod::platform::{Platform, WorkloadProfile};

fn main() -> Result<(), CoreError> {
    let platform = Platform::hybrid_node(4, 55); // 3 CPU cores + 1 GPU
    let profile = WorkloadProfile::matrix_update(16);
    let gpu_rank = platform.size() - 1;

    let sizes = [64u64, 512, 2_048, 8_192, 20_000, 40_000, 60_000];
    let akimas: Vec<AkimaModel> =
        build_device_models(&platform, &profile, &sizes, &Precision::default())?;
    let cpms: Vec<ConstantModel> =
        build_device_models(&platform, &profile, &[2_048], &Precision::default())?;

    println!("total_units | gpu_share_cpm | gpu_share_fpm | fpm_true_makespan | cpm_true_makespan");
    for total in [4_000u64, 16_000, 64_000, 120_000, 200_000] {
        let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();
        let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
        let fpm = NumericalPartitioner::default().partition(total, &akima_refs)?;
        let cpm = ConstantPartitioner.partition(total, &cpm_refs)?;

        let truth = |dist: &fupermod::core::partition::Distribution| {
            dist.sizes()
                .iter()
                .enumerate()
                .map(|(i, &d)| platform.device(i).ideal_time(d, &profile))
                .fold(0.0_f64, f64::max)
        };
        println!(
            "{total:>11} | {:>12.3} | {:>12.3} | {:>17.3} | {:>17.3}",
            cpm.parts()[gpu_rank].d as f64 / total as f64,
            fpm.parts()[gpu_rank].d as f64 / total as f64,
            truth(&fpm),
            truth(&cpm),
        );
    }
    println!(
        "\nGPU device memory fits ~{} units of this kernel; watch the FPM cap the GPU share\n\
         near that boundary while the CPM keeps over-assigning.",
        (256e6 / (3.0 * 16.0 * 16.0 * 8.0)) as u64
    );
    Ok(())
}
