//! Heat-diffusion stencil with dynamic load balancing — the "computer
//! simulation" application class from the paper's introduction, with a
//! nearest-neighbour (halo) communication pattern instead of matmul's
//! broadcasts.
//!
//! Run with: `cargo run --release --example heat_stencil`

use fupermod::apps::heat::{run, sine_mode, sine_mode_decay, HeatConfig};
use fupermod::core::partition::{Distribution, GeometricPartitioner};
use fupermod::core::CoreError;
use fupermod::platform::{LinkModel, Platform};

fn main() -> Result<(), CoreError> {
    let (rows, cols) = (600, 1024);
    let cfg = HeatConfig {
        cols,
        nu: 0.2,
        steps: 30,
        eps_balance: 0.05,
        balance: true,
    };
    let platform = Platform::two_speed(1, 3, 11).with_link(LinkModel::infiniband());
    let initial = sine_mode(rows, cols);

    let balanced = run(
        &initial,
        rows,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &cfg,
    )?;
    let fixed = run(
        &initial,
        rows,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &HeatConfig {
            balance: false,
            ..cfg
        },
    )?;

    println!("step | rows per process          | imbalance");
    println!("-----+---------------------------+----------");
    for rec in balanced.steps.iter().take(10) {
        println!(
            "{:>4} | {:<25} | {:>8.3}",
            rec.step,
            format!("{:?}", rec.sizes),
            Distribution::imbalance_of(&rec.compute_times)
        );
    }

    // Physics check: the fundamental sine mode decays at a known rate.
    let decay = sine_mode_decay(rows, cols, cfg.nu).powi(cfg.steps as i32);
    let max_err = balanced
        .grid
        .iter()
        .zip(&initial)
        .fold(0.0_f64, |m, (g, i)| m.max((g - i * decay).abs()));
    println!("\nmax deviation from exact discrete decay: {max_err:.2e}");
    println!(
        "makespan: balanced {:.4} s vs fixed-even {:.4} s (speedup {:.2}x)",
        balanced.makespan,
        fixed.makespan,
        fixed.makespan / balanced.makespan
    );
    Ok(())
}
