//! Heterogeneous parallel matrix multiplication, end to end:
//!
//! 1. benchmark the devices of a simulated heterogeneous cluster,
//! 2. partition the block grid with the Akima-FPM numerical algorithm,
//! 3. arrange rectangles with the column-based 2D partition,
//! 4. *verify the math* by running the same partition for real on
//!    worker threads against serial GEMM,
//! 5. simulate the large-scale run and report the speedup over the
//!    even distribution.
//!
//! Run with: `cargo run --release --example matmul_hetero`

use fupermod::apps::matmul::{
    build_device_models, partition_areas, run_threaded, simulate, MatMulConfig,
};
use fupermod::apps::workload::random_matrix;
use fupermod::core::model::{AkimaModel, Model};
use fupermod::core::partition::NumericalPartitioner;
use fupermod::core::{CoreError, Precision};
use fupermod::kernels::gemm::gemm_blocked;
use fupermod::platform::{Platform, WorkloadProfile};

fn main() -> Result<(), CoreError> {
    let block = 8usize;
    let platform = Platform::two_speed(2, 2, 77);
    let profile = WorkloadProfile::matrix_update(block);

    // Small, real verification run: 64×64 elements = 8×8 blocks.
    let n_blocks_small: u64 = 8;
    let models: Vec<AkimaModel> = build_device_models(
        &platform,
        &profile,
        &[4, 16, 64, 256],
        &Precision::default(),
    )?;
    let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
    let areas = partition_areas(&NumericalPartitioner::default(), n_blocks_small, &refs)?;
    println!("2D areas for the 8x8 block grid: {areas:?}");

    let n = n_blocks_small as usize * block;
    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    let c = run_threaded(&a, &b, block, &areas)?;
    let mut reference = vec![0.0; n * n];
    gemm_blocked(n, n, n, &a.data, &b.data, &mut reference);
    let max_err = c
        .data
        .iter()
        .zip(&reference)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()));
    println!("real threaded run: max |C - C_ref| = {max_err:.2e}");
    assert!(max_err < 1e-9, "distributed product mismatch");

    // Large simulated run: compare even vs FPM partitioning.
    let cfg = MatMulConfig {
        n_blocks: 256,
        block: 16,
    };
    let profile_big = WorkloadProfile::matrix_update(cfg.block);
    let models: Vec<AkimaModel> = build_device_models(
        &platform,
        &profile_big,
        &[64, 512, 4096, 16384, 32768],
        &Precision::default(),
    )?;
    let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
    let fpm_areas = partition_areas(&NumericalPartitioner::default(), cfg.n_blocks, &refs)?;
    let even_areas = {
        let p = platform.size() as u64;
        let total = cfg.n_blocks * cfg.n_blocks;
        (0..p)
            .map(|i| total / p + u64::from(i < total % p))
            .collect::<Vec<_>>()
    };

    let fpm = simulate(&platform, &fpm_areas, &cfg)?;
    let even = simulate(&platform, &even_areas, &cfg)?;
    println!(
        "simulated 4096x4096 multiply on '{}': even {:.2} s, FPM {:.2} s (speedup {:.2}x)",
        platform.name(),
        even.total_time,
        fpm.total_time,
        even.total_time / fpm.total_time
    );
    println!(
        "communication metric (sum of half-perimeters): even {}, FPM {}",
        even.half_perimeters, fpm.half_perimeters
    );
    Ok(())
}
