//! Dynamic balancing under injected faults: the distributed
//! `fupermod-runtime` executor rebalances load away from a straggler
//! and survives a fail-stop rank death.
//!
//! Three runs on the same four-device platform:
//!
//! 1. **fault-free** — the baseline distribution;
//! 2. **straggler** — rank 0 (nominally the fastest device) computes
//!    6x slower; the partial models observe the inflated times and the
//!    partitioner shifts its load to the healthy ranks;
//! 3. **death** — rank 2 fail-stops mid-run; its share is
//!    repartitioned across the survivors and the job still converges.
//!
//! Every injection is documented by a schema-v2 `fault` trace event
//! (see docs/OBSERVABILITY.md); the plans are plain JSON
//! (see docs/RUNTIME.md).
//!
//! Run with: `cargo run --example faulty_balance`

use std::sync::Arc;

use fupermod::core::dynamic::DynamicContext;
use fupermod::core::model::{Model, PiecewiseModel};
use fupermod::core::partition::GeometricPartitioner;
use fupermod::core::trace::{MemorySink, TraceEvent};
use fupermod::core::{CoreError, Point};
use fupermod::runtime::{
    run_to_balance_distributed, BalanceOutcome, FaultPlan, RuntimeConfig, RuntimeError,
};

/// Synthetic device speeds, units per second.
const SPEEDS: [f64; 4] = [150.0, 50.0, 100.0, 25.0];
const TOTAL: u64 = 13_000;

fn measure(rank: usize, d: u64) -> Result<Point, CoreError> {
    Ok(Point::single(d, d as f64 / SPEEDS[rank]))
}

fn make_ctx() -> DynamicContext {
    let models: Vec<Box<dyn Model>> = (0..SPEEDS.len())
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    DynamicContext::new(Box::new(GeometricPartitioner::default()), models, TOTAL, 0.05)
}

fn run(plan: FaultPlan, sink: Arc<MemorySink>) -> Result<BalanceOutcome, RuntimeError> {
    run_to_balance_distributed(
        RuntimeConfig::thread().with_plan(plan).with_trace(sink),
        SPEEDS.len(),
        make_ctx,
        measure,
        30,
    )
}

fn fault_counts(sink: &MemorySink) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for event in sink.events() {
        if let TraceEvent::Fault { kind, .. } = event {
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((kind, 1)),
            }
        }
    }
    counts
}

fn report(label: &str, outcome: &BalanceOutcome, sink: &MemorySink) {
    println!(
        "{label:<11} | steps {:>2} | converged {:<5} | sizes {:?}",
        outcome.steps.len(),
        outcome.converged(),
        outcome.final_sizes
    );
    let faults = fault_counts(sink);
    if faults.is_empty() {
        println!("{:<11} |   no fault events", "");
    } else {
        for (kind, n) in faults {
            println!("{:<11} |   fault `{kind}` x{n}", "");
        }
    }
}

fn main() -> Result<(), RuntimeError> {
    println!("devices: {SPEEDS:?} units/s, {TOTAL} units to balance\n");

    // 1. Fault-free baseline.
    let sink = Arc::new(MemorySink::new());
    let baseline = run(FaultPlan::none(), sink.clone())?;
    report("fault-free", &baseline, &sink);

    // 2. Rank 0 straggles: 6x slower compute.
    let plan = FaultPlan::from_json(
        r#"{"stragglers": [{"rank": 0, "compute_factor": 6.0}]}"#,
    )?;
    let sink = Arc::new(MemorySink::new());
    let straggled = run(plan, sink.clone())?;
    report("straggler", &straggled, &sink);
    println!(
        "            -> rank 0 load: {} -> {} units (rebalanced away)\n",
        baseline.final_sizes[0], straggled.final_sizes[0]
    );

    // 3. Rank 2 fail-stops mid-run.
    let plan = FaultPlan::from_json(r#"{"deaths": [{"rank": 2, "after_ops": 4}]}"#)?;
    let sink = Arc::new(MemorySink::new());
    let degraded = run(plan, sink.clone())?;
    report("rank death", &degraded, &sink);
    println!(
        "            -> dead ranks {:?}; {} units redistributed to survivors",
        degraded.dead_ranks,
        baseline.final_sizes[2]
    );
    assert_eq!(degraded.final_sizes.iter().sum::<u64>(), TOTAL);
    Ok(())
}
