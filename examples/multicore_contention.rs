//! Synchronised group measurement on a multicore node (the paper's
//! measurement technique for resource-sharing processes [18]): the
//! speed of a single core cannot be measured in isolation because its
//! siblings contend for the shared cache and memory bandwidth, so all
//! cores benchmark in lockstep.
//!
//! This example shows (a) how per-core speed degrades as more cores are
//! active, and (b) the `measure_group` API that keeps the repetitions
//! barrier-synchronised.
//!
//! Run with: `cargo run --example multicore_contention`

use fupermod::core::benchmark::Benchmark;
use fupermod::core::kernel::{DeviceKernel, Kernel};
use fupermod::core::{CoreError, Precision};
use fupermod::platform::{cluster, WorkloadProfile};

fn main() -> Result<(), CoreError> {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision::default();
    let d = 4_000u64; // big enough to spill the shared cache

    println!("active_cores | per-core time (s) | per-core speed (units/s)");
    for active in [1usize, 2, 4, 8] {
        // A node configured with `active` cores running simultaneously.
        let cores = cluster::multicore_cores("core", active, 7);
        let mut kernels: Vec<DeviceKernel> = cores
            .iter()
            .map(|dev| DeviceKernel::new(dev.clone(), profile.clone()))
            .collect();
        let mut refs: Vec<&mut dyn Kernel> =
            kernels.iter_mut().map(|k| k as &mut dyn Kernel).collect();
        let sizes = vec![d; active];
        let points = Benchmark::new(&precision).measure_group(&mut refs, &sizes)?;
        let t = points[0].t;
        println!(
            "{active:>12} | {t:>17.4} | {:>23.1}",
            d as f64 / t
        );
    }
    println!(
        "\nPer-core speed drops as siblings activate and the combined working\n\
         set spills the shared cache — the contention the paper's multicore\n\
         measurement technique is designed to capture. All group members run\n\
         the same number of repetitions, barrier-synchronised."
    );
    Ok(())
}
