//! Dynamic load balancing of the Jacobi method (the paper's §4.4
//! walkthrough): the system of equations is redistributed between
//! iterations using partial piecewise FPMs built from the iteration
//! times themselves.
//!
//! Run with: `cargo run --example jacobi_balance`

use fupermod::apps::jacobi::{run, run_even, JacobiConfig};
use fupermod::apps::workload::dominant_system;
use fupermod::core::partition::{Distribution, GeometricPartitioner};
use fupermod::core::CoreError;
use fupermod::platform::{LinkModel, Platform};

fn main() -> Result<(), CoreError> {
    let system = dominant_system(1200, 9);
    // A compute-dominated configuration (wide rows, fast interconnect),
    // run for a fixed iteration budget so the one-time redistribution
    // is amortised — the paper's Fig. 4 setting.
    let platform = Platform::two_speed(1, 3, 9).with_link(LinkModel::infiniband());
    let cfg = JacobiConfig {
        tol: 1e-12,
        max_iters: 40,
        eps_balance: 0.05,
        balance: true,
    };

    let balanced = run(
        &system,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &cfg,
    )?;
    let even = run_even(&system, &platform, &cfg)?;

    println!("iter | rows per process        | imbalance | moved");
    println!("-----+-------------------------+-----------+------");
    for rec in balanced.iterations.iter().take(12) {
        println!(
            "{:>4} | {:<23} | {:>8.3}  | {:>5}",
            rec.iteration,
            format!("{:?}", rec.sizes),
            Distribution::imbalance_of(&rec.compute_times),
            rec.rows_moved
        );
    }

    let max_err = balanced
        .x
        .iter()
        .zip(&system.x_true)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
    println!(
        "\nconverged: {} in {} iterations, max |x - x_true| = {max_err:.2e}",
        balanced.converged,
        balanced.iterations.len()
    );
    println!(
        "makespan: balanced {:.3} s vs even {:.3} s (speedup {:.2}x)",
        balanced.makespan,
        even.makespan,
        even.makespan / balanced.makespan
    );
    Ok(())
}
