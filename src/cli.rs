//! Shared helpers for the `fupermod_*` command-line binaries: flag
//! parsing, platform/partitioner selection, and trace-sink wiring for
//! the `--trace PATH`, `--trace-dir DIR` and
//! `--trace-format jsonl|csv` flags every binary accepts (see
//! `docs/OBSERVABILITY.md`). `FUPERMOD_TRACE_DIR` in the environment
//! acts like `--trace-dir`, so a whole pipeline of binaries can be
//! traced without editing each invocation.

use std::collections::HashMap;
use std::sync::Arc;

use fupermod_core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod_core::trace::{metrics, CsvSink, JsonlSink, TraceSink};
use fupermod_platform::Platform;
use fupermod_runtime::{AlgorithmPolicy, FaultPlan, RuntimeConfig};

/// Parses `--flag value` pairs from the process arguments into a map
/// (keys without the leading `--`). Exits with status 2 on a flag
/// without a value.
pub fn parse_args() -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let key = flag.trim_start_matches("--").to_owned();
        if let Some(value) = args.next() {
            map.insert(key, value);
        } else {
            eprintln!("missing value for --{key}");
            std::process::exit(2);
        }
    }
    map
}

/// Resolves a simulated platform by name. Exits with status 2 on an
/// unknown name.
pub fn pick_platform(name: &str, seed: u64) -> Platform {
    match name {
        "uniform4" => Platform::uniform(4, seed),
        "two-speed" => Platform::two_speed(2, 2, seed),
        "multicore" => Platform::multicore_node(6, seed),
        "hybrid" => Platform::hybrid_node(4, seed),
        "grid" => Platform::grid_site(seed),
        other => {
            eprintln!("unknown platform '{other}'");
            std::process::exit(2);
        }
    }
}

/// Resolves a partitioning algorithm by name. Exits with status 2 on
/// an unknown name.
pub fn pick_partitioner(name: &str) -> Box<dyn Partitioner> {
    match name {
        "even" => Box::new(EvenPartitioner),
        "constant" => Box::new(ConstantPartitioner),
        "geometric" => Box::new(GeometricPartitioner::default()),
        "numerical" => Box::new(NumericalPartitioner::default()),
        other => {
            eprintln!("unknown algorithm '{other}'");
            std::process::exit(2);
        }
    }
}

/// Parses the `--parallelism N` flag: model-build worker-thread count.
/// Defaults to `1` (serial — the reproducible default); `0` means one
/// worker per available core. Parallel and serial builds produce
/// bit-identical models and traces (see
/// [`fupermod_core::builder::ModelBuilder`]), so this knob only changes
/// wall-clock time. Exits with status 2 on a non-integer value.
pub fn parallelism(args: &HashMap<String, String>) -> usize {
    match args.get("parallelism") {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid --parallelism value {s:?} (want a non-negative integer)");
            std::process::exit(2);
        }),
        None => 1,
    }
}

/// Parses the `--fault-plan SPEC` flag into a [`FaultPlan`]: inline
/// JSON when SPEC starts with `{`, otherwise a path to a JSON file
/// (schema in `docs/RUNTIME.md`). Returns the empty plan when the flag
/// is absent; exits with status 2 on an invalid plan.
pub fn fault_plan(args: &HashMap<String, String>) -> FaultPlan {
    match args.get("fault-plan") {
        None => FaultPlan::none(),
        Some(spec) => {
            let parsed = if spec.trim_start().starts_with('{') {
                FaultPlan::from_json(spec)
            } else {
                FaultPlan::from_json_file(std::path::Path::new(spec))
            };
            parsed.unwrap_or_else(|e| {
                eprintln!("invalid --fault-plan: {e}");
                std::process::exit(2);
            })
        }
    }
}

/// Parses the `--collectives hub|ring|tree|auto` flag into an
/// [`AlgorithmPolicy`] (default `hub`, the compatibility schedule).
/// All policies produce bitwise-identical collective results on
/// fault-free plans; they differ in schedule shape and therefore in
/// simulated virtual time and scaling (see `docs/RUNTIME.md` §6).
/// Exits with status 2 on an unknown spelling.
pub fn collectives(args: &HashMap<String, String>) -> AlgorithmPolicy {
    match args.get("collectives") {
        None => AlgorithmPolicy::default(),
        Some(s) => AlgorithmPolicy::parse(s).unwrap_or_else(|| {
            eprintln!("--collectives must be hub, ring, tree or auto (got '{s}')");
            std::process::exit(2);
        }),
    }
}

/// Builds the runtime configuration selected by `--runtime thread|sim`
/// (default `thread`) for a distributed run on `platform`, applying
/// [`fault_plan`], the [`collectives`] algorithm policy, and routing
/// runtime `comm`/`fault` trace events to `sink` when given. Exits
/// with status 2 on an unknown backend.
pub fn runtime_config(
    args: &HashMap<String, String>,
    platform: &Platform,
    sink: Option<&Arc<dyn TraceSink>>,
) -> RuntimeConfig {
    let backend = args.get("runtime").map(String::as_str).unwrap_or("thread");
    let config = match backend {
        "thread" => RuntimeConfig::thread(),
        "sim" => RuntimeConfig::sim(platform.size(), platform.link()),
        other => {
            eprintln!("--runtime must be thread or sim (got '{other}')");
            std::process::exit(2);
        }
    };
    let config = config
        .with_plan(fault_plan(args))
        .with_algorithms(collectives(args));
    match sink {
        Some(sink) => config.with_trace(sink.clone()),
        None => config,
    }
}

/// Resolves the trace path requested by the unified trace flags:
/// `--trace PATH` (exact file) wins over `--trace-dir DIR`, which
/// wins over the `FUPERMOD_TRACE_DIR` environment variable. The
/// directory forms name the file `DIR/<name>.trace.jsonl` (or
/// `.trace.csv` under `--trace-format csv`), where `name` is the
/// binary's own name. Returns `None` when tracing was not requested.
pub fn trace_path(args: &HashMap<String, String>) -> Option<String> {
    if let Some(path) = args.get("trace") {
        return Some(path.clone());
    }
    let dir = args
        .get("trace-dir")
        .cloned()
        .or_else(|| std::env::var("FUPERMOD_TRACE_DIR").ok())?;
    let name = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "fupermod".to_owned());
    let ext = match args.get("trace-format").map(String::as_str) {
        Some("csv") => "csv",
        _ => "jsonl",
    };
    Some(format!("{dir}/{name}.trace.{ext}"))
}

/// Opens the structured-trace sink requested by `--trace PATH`,
/// `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`) and
/// `--trace-format jsonl|csv` (default `jsonl`, or inferred from a
/// `.csv` extension) — see [`trace_path`]. Returns `None` when no
/// trace was requested. Opening a sink also enables the process-wide
/// latency histograms ([`metrics`]), which [`finish_trace`] exports
/// as `metrics` snapshot events.
///
/// Exits with status 2 on an unknown format and status 1 when the file
/// cannot be created.
pub fn open_trace_sink(args: &HashMap<String, String>) -> Option<Arc<dyn TraceSink>> {
    let path = &trace_path(args)?;
    let format = args
        .get("trace-format")
        .map(String::as_str)
        .unwrap_or_else(|| {
            if path.ends_with(".csv") {
                "csv"
            } else {
                "jsonl"
            }
        });
    let sink: Arc<dyn TraceSink> = match format {
        "jsonl" => match JsonlSink::create(path) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        "csv" => match CsvSink::create(path) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("--trace-format must be jsonl or csv (got '{other}')");
            std::process::exit(2);
        }
    };
    metrics().set_histograms_enabled(true);
    Some(sink)
}

/// Exports the latency-histogram snapshots as `metrics` events, then
/// flushes the optional trace sink, exiting with status 1 on a
/// deferred write error, and prints the process-wide metrics summary
/// to stderr. Call once, right before the binary exits.
pub fn finish_trace(sink: Option<&Arc<dyn TraceSink>>) {
    if let Some(sink) = sink {
        metrics().export_histogram_events(sink.as_ref());
        if let Err(e) = sink.flush() {
            eprintln!("trace write failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("{}", metrics().summary());
}
