//! Shared helpers for the `fupermod_*` command-line binaries: flag
//! parsing, platform/partitioner selection, and trace-sink wiring for
//! the `--trace PATH`, `--trace-dir DIR` and
//! `--trace-format jsonl|csv` flags every binary accepts (see
//! `docs/OBSERVABILITY.md`). `FUPERMOD_TRACE_DIR` in the environment
//! acts like `--trace-dir`, so a whole pipeline of binaries can be
//! traced without editing each invocation.

use std::collections::HashMap;
use std::sync::Arc;

use fupermod_core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod_core::trace::{metrics, CsvSink, JsonlSink, TraceSink};
use fupermod_platform::Platform;
use fupermod_runtime::{AlgorithmPolicy, FaultPlan, RuntimeConfig, SimEngine};

/// Largest rank count the thread engine will accept: one OS thread per
/// rank stops being a simulation strategy and starts being a
/// fork bomb well before the default pthread limits bite. Past this,
/// `--sim-engine event` runs the same scenarios in one thread.
pub const THREAD_RANKS_CAP: usize = 512;

/// A rejected process-count / engine combination from the `--ranks`
/// (`-p`) and `--sim-engine` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliArgError {
    /// `--ranks 0`: a run needs at least one rank.
    ZeroRanks,
    /// `--ranks` value that does not parse as a positive integer.
    BadRanks(String),
    /// The thread engine was asked for more ranks than
    /// [`THREAD_RANKS_CAP`]; it would spawn that many OS threads.
    ThreadCapExceeded {
        /// Requested rank count.
        ranks: usize,
    },
}

impl std::fmt::Display for CliArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliArgError::ZeroRanks => {
                write!(f, "--ranks must be at least 1 (got 0)")
            }
            CliArgError::BadRanks(s) => {
                write!(f, "invalid --ranks value {s:?} (want a positive integer)")
            }
            CliArgError::ThreadCapExceeded { ranks } => write!(
                f,
                "the thread engine spawns one OS thread per rank and is \
                 capped at {THREAD_RANKS_CAP} ranks (asked for {ranks}); \
                 use --sim-engine event for large p"
            ),
        }
    }
}

impl std::error::Error for CliArgError {}

/// Parses `--flag value` pairs from the process arguments into a map
/// (keys without the leading `--`). Exits with status 2 on a flag
/// without a value.
pub fn parse_args() -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let key = flag.trim_start_matches("--").to_owned();
        if let Some(value) = args.next() {
            map.insert(key, value);
        } else {
            eprintln!("missing value for --{key}");
            std::process::exit(2);
        }
    }
    map
}

/// Resolves a simulated platform by name. Exits with status 2 on an
/// unknown name.
pub fn pick_platform(name: &str, seed: u64) -> Platform {
    match name {
        "uniform4" => Platform::uniform(4, seed),
        "two-speed" => Platform::two_speed(2, 2, seed),
        "multicore" => Platform::multicore_node(6, seed),
        "hybrid" => Platform::hybrid_node(4, seed),
        "grid" => Platform::grid_site(seed),
        other => {
            eprintln!("unknown platform '{other}'");
            std::process::exit(2);
        }
    }
}

/// Parses the `--ranks N` (alias `-p N`) process-count override.
/// Returns `None` when the flag is absent.
///
/// # Errors
///
/// [`CliArgError::ZeroRanks`] for `--ranks 0`,
/// [`CliArgError::BadRanks`] for a non-integer value.
pub fn ranks(args: &HashMap<String, String>) -> Result<Option<usize>, CliArgError> {
    let raw = args
        .get("ranks")
        .or_else(|| args.get("-p"))
        .or_else(|| args.get("p"));
    match raw {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Err(CliArgError::ZeroRanks),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(CliArgError::BadRanks(s.clone())),
        },
    }
}

/// Checks a rank count against the engine that would run it: the
/// thread engine refuses more than [`THREAD_RANKS_CAP`] ranks rather
/// than hanging while it spawns (and then schedules) that many OS
/// threads.
///
/// # Errors
///
/// [`CliArgError::ThreadCapExceeded`] past the cap on the thread
/// engine. The event engine has no cap.
pub fn check_engine_ranks(engine: SimEngine, ranks: usize) -> Result<(), CliArgError> {
    if engine == SimEngine::Thread && ranks > THREAD_RANKS_CAP {
        return Err(CliArgError::ThreadCapExceeded { ranks });
    }
    Ok(())
}

/// Resolves a simulated platform by name at a caller-chosen size —
/// the `--ranks` form of [`pick_platform`]. The named families scale:
/// `uniform4` becomes `p` identical cores, `two-speed` splits `p`
/// between fast and slow halves, `multicore`/`hybrid` become a
/// `p`-core node. `grid` is a fixed 16-device site and exits with
/// status 2 under `--ranks`, as does an unknown name.
pub fn scaled_platform(name: &str, p: usize, seed: u64) -> Platform {
    match name {
        "uniform4" => Platform::uniform(p, seed),
        "two-speed" => Platform::two_speed(p.div_ceil(2), p / 2, seed),
        "multicore" => Platform::multicore_node(p, seed),
        "hybrid" => {
            if p < 2 {
                eprintln!("--platform hybrid needs --ranks of at least 2 (got {p})");
                std::process::exit(2);
            }
            Platform::hybrid_node(p, seed)
        }
        "grid" => {
            eprintln!("--platform grid is a fixed 16-device site; drop --ranks or pick a scalable family");
            std::process::exit(2);
        }
        other => {
            eprintln!("unknown platform '{other}'");
            std::process::exit(2);
        }
    }
}

/// Parses the `--sim-engine thread|event` flag (default `thread`, the
/// original one-OS-thread-per-rank backend). `event` selects the
/// single-threaded discrete-event interpreter — same virtual clocks,
/// `10⁴`–`10⁶` ranks (see `docs/RUNTIME.md` §9). Exits with status 2
/// on an unknown spelling.
pub fn sim_engine(args: &HashMap<String, String>) -> SimEngine {
    match args.get("sim-engine") {
        None => SimEngine::default(),
        Some(s) => SimEngine::parse(s).unwrap_or_else(|e| {
            eprintln!("--sim-engine: {e}");
            std::process::exit(2);
        }),
    }
}

/// Resolves a partitioning algorithm by name. Exits with status 2 on
/// an unknown name.
pub fn pick_partitioner(name: &str) -> Box<dyn Partitioner> {
    match name {
        "even" => Box::new(EvenPartitioner),
        "constant" => Box::new(ConstantPartitioner),
        "geometric" => Box::new(GeometricPartitioner::default()),
        "numerical" => Box::new(NumericalPartitioner::default()),
        other => {
            eprintln!("unknown algorithm '{other}'");
            std::process::exit(2);
        }
    }
}

/// Coordinates of one process of a multi-process TCP job, from the
/// `--transport tcp --rank-id K --world N --rendezvous HOST:PORT`
/// flags (see `docs/RUNTIME.md` §10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpTransport {
    /// This process's rank (`--rank-id`, `0..world`).
    pub rank: usize,
    /// Total process count of the job (`--world`).
    pub world: usize,
    /// Rank 0's rendezvous address, `host:port` (`--rendezvous`).
    /// Rank 0 listens on it; every other rank dials it.
    pub rendezvous: String,
}

/// Parses the `--transport` flag family. Returns `None` for the
/// default in-process transport (`--transport local` or absent);
/// `Some` for `--transport tcp`, which requires `--rank-id`,
/// `--world` and `--rendezvous`. Exits with status 2 on an unknown
/// transport, a missing companion flag, or out-of-range coordinates.
pub fn tcp_transport(args: &HashMap<String, String>) -> Option<TcpTransport> {
    match args.get("transport").map(String::as_str) {
        None | Some("local") => return None,
        Some("tcp") => {}
        Some(other) => {
            eprintln!("--transport must be local or tcp (got '{other}')");
            std::process::exit(2);
        }
    }
    let need = |flag: &str| -> String {
        args.get(flag).cloned().unwrap_or_else(|| {
            eprintln!("--transport tcp requires --{flag}");
            std::process::exit(2);
        })
    };
    let parse_usize = |flag: &str, raw: &str| -> usize {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("invalid --{flag} value {raw:?} (want a non-negative integer)");
            std::process::exit(2);
        })
    };
    let rank = parse_usize("rank-id", &need("rank-id"));
    let world = parse_usize("world", &need("world"));
    let rendezvous = need("rendezvous");
    if world == 0 || rank >= world {
        eprintln!("--rank-id {rank} outside --world {world}");
        std::process::exit(2);
    }
    Some(TcpTransport {
        rank,
        world,
        rendezvous,
    })
}

/// Parses the `--parallelism N` flag: model-build worker-thread count.
/// Defaults to `1` (serial — the reproducible default); `0` means one
/// worker per available core. Parallel and serial builds produce
/// bit-identical models and traces (see
/// [`fupermod_core::builder::ModelBuilder`]), so this knob only changes
/// wall-clock time. Exits with status 2 on a non-integer value.
pub fn parallelism(args: &HashMap<String, String>) -> usize {
    match args.get("parallelism") {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid --parallelism value {s:?} (want a non-negative integer)");
            std::process::exit(2);
        }),
        None => 1,
    }
}

/// Parses the `--fault-plan SPEC` flag into a [`FaultPlan`]: inline
/// JSON when SPEC starts with `{`, otherwise a path to a JSON file
/// (schema in `docs/RUNTIME.md`). Returns the empty plan when the flag
/// is absent; exits with status 2 on an invalid plan.
pub fn fault_plan(args: &HashMap<String, String>) -> FaultPlan {
    match args.get("fault-plan") {
        None => FaultPlan::none(),
        Some(spec) => {
            let parsed = if spec.trim_start().starts_with('{') {
                FaultPlan::from_json(spec)
            } else {
                FaultPlan::from_json_file(std::path::Path::new(spec))
            };
            parsed.unwrap_or_else(|e| {
                eprintln!("invalid --fault-plan: {e}");
                std::process::exit(2);
            })
        }
    }
}

/// Parses the `--collectives hub|ring|tree|auto` flag into an
/// [`AlgorithmPolicy`] (default `hub`, the compatibility schedule).
/// All policies produce bitwise-identical collective results on
/// fault-free plans; they differ in schedule shape and therefore in
/// simulated virtual time and scaling (see `docs/RUNTIME.md` §6).
/// Exits with status 2 on an unknown spelling.
pub fn collectives(args: &HashMap<String, String>) -> AlgorithmPolicy {
    match args.get("collectives") {
        None => AlgorithmPolicy::default(),
        Some(s) => AlgorithmPolicy::parse(s).unwrap_or_else(|| {
            eprintln!("--collectives must be hub, ring, tree or auto (got '{s}')");
            std::process::exit(2);
        }),
    }
}

/// Builds the runtime configuration selected by `--runtime thread|sim`
/// (default `thread`) and `--sim-engine thread|event` for a
/// distributed run on `platform`, applying [`fault_plan`], the
/// [`collectives`] algorithm policy, and routing runtime
/// `comm`/`fault` trace events to `sink` when given.
///
/// `--sim-engine event` needs the virtual-clock backend, so it
/// implies `--runtime sim` when `--runtime` is absent and rejects an
/// explicit `--runtime thread`. The thread engine is capped at
/// [`THREAD_RANKS_CAP`] ranks ([`check_engine_ranks`]). Exits with
/// status 2 on an unknown backend or a rejected combination.
pub fn runtime_config(
    args: &HashMap<String, String>,
    platform: &Platform,
    sink: Option<&Arc<dyn TraceSink>>,
) -> RuntimeConfig {
    let engine = sim_engine(args);
    let backend = match args.get("runtime").map(String::as_str) {
        Some(b) => b,
        None if engine == SimEngine::Event => "sim",
        None => "thread",
    };
    let config = match backend {
        "thread" => {
            if engine == SimEngine::Event {
                eprintln!(
                    "--sim-engine event needs the virtual-clock backend: \
                     use --runtime sim (or drop --sim-engine)"
                );
                std::process::exit(2);
            }
            RuntimeConfig::thread()
        }
        "sim" => RuntimeConfig::sim(platform.size(), platform.link()),
        other => {
            eprintln!("--runtime must be thread or sim (got '{other}')");
            std::process::exit(2);
        }
    };
    if let Err(e) = check_engine_ranks(engine, platform.size()) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let config = config
        .with_engine(engine)
        .with_plan(fault_plan(args))
        .with_algorithms(collectives(args));
    match sink {
        Some(sink) => config.with_trace(sink.clone()),
        None => config,
    }
}

/// Resolves the trace path requested by the unified trace flags:
/// `--trace PATH` (exact file) wins over `--trace-dir DIR`, which
/// wins over the `FUPERMOD_TRACE_DIR` environment variable. The
/// directory forms name the file `DIR/<name>.trace.jsonl` (or
/// `.trace.csv` under `--trace-format csv`), where `name` is the
/// binary's own name. Returns `None` when tracing was not requested.
pub fn trace_path(args: &HashMap<String, String>) -> Option<String> {
    trace_path_for_rank(args, None)
}

/// [`trace_path`] for one process of a multi-process (`--transport
/// tcp`) job: the rank is woven into the file name so concurrent
/// processes never clobber each other's trace. The directory forms
/// produce `DIR/<name>.rank<k>.trace.jsonl`; an explicit `--trace
/// PATH` gains a `.rank<k>` infix before its extension
/// (`out.jsonl` → `out.rank2.jsonl`). `fupermod_tracetool merge`
/// stitches the per-rank files back into one causal timeline.
pub fn trace_path_for_rank(
    args: &HashMap<String, String>,
    rank: Option<usize>,
) -> Option<String> {
    if let Some(path) = args.get("trace") {
        let Some(rank) = rank else {
            return Some(path.clone());
        };
        return Some(match path.rsplit_once('.') {
            Some((stem, ext)) => format!("{stem}.rank{rank}.{ext}"),
            None => format!("{path}.rank{rank}"),
        });
    }
    let dir = args
        .get("trace-dir")
        .cloned()
        .or_else(|| std::env::var("FUPERMOD_TRACE_DIR").ok())?;
    let name = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "fupermod".to_owned());
    let ext = match args.get("trace-format").map(String::as_str) {
        Some("csv") => "csv",
        _ => "jsonl",
    };
    let infix = rank.map(|r| format!(".rank{r}")).unwrap_or_default();
    Some(format!("{dir}/{name}{infix}.trace.{ext}"))
}

/// Opens the structured-trace sink requested by `--trace PATH`,
/// `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`) and
/// `--trace-format jsonl|csv` (default `jsonl`, or inferred from a
/// `.csv` extension) — see [`trace_path`]. Returns `None` when no
/// trace was requested. Opening a sink also enables the process-wide
/// latency histograms ([`metrics`]), which [`finish_trace`] exports
/// as `metrics` snapshot events.
///
/// Exits with status 2 on an unknown format and status 1 when the file
/// cannot be created.
pub fn open_trace_sink(args: &HashMap<String, String>) -> Option<Arc<dyn TraceSink>> {
    open_trace_sink_for_rank(args, None)
}

/// [`open_trace_sink`] for one process of a multi-process
/// (`--transport tcp`) job — the file name carries the rank (see
/// [`trace_path_for_rank`]).
pub fn open_trace_sink_for_rank(
    args: &HashMap<String, String>,
    rank: Option<usize>,
) -> Option<Arc<dyn TraceSink>> {
    let path = &trace_path_for_rank(args, rank)?;
    let format = args
        .get("trace-format")
        .map(String::as_str)
        .unwrap_or_else(|| {
            if path.ends_with(".csv") {
                "csv"
            } else {
                "jsonl"
            }
        });
    let sink: Arc<dyn TraceSink> = match format {
        "jsonl" => match JsonlSink::create(path) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        "csv" => match CsvSink::create(path) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("--trace-format must be jsonl or csv (got '{other}')");
            std::process::exit(2);
        }
    };
    metrics().set_histograms_enabled(true);
    fupermod_core::telemetry::global().set_enabled(true);
    Some(sink)
}

/// Exports the latency-histogram snapshots and the process-wide
/// telemetry registry ([`fupermod_core::telemetry::global`]) as
/// `metrics` events, then flushes the optional trace sink, exiting
/// with status 1 on a deferred write error, and prints the
/// process-wide metrics summary to stderr. Call once, right before
/// the binary exits.
pub fn finish_trace(sink: Option<&Arc<dyn TraceSink>>) {
    if let Some(sink) = sink {
        metrics().export_histogram_events(sink.as_ref());
        fupermod_core::telemetry::global()
            .snapshot()
            .export_trace_events(0, sink.as_ref());
        if let Err(e) = sink.flush() {
            eprintln!("trace write failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("{}", metrics().summary());
}

/// Builds the model-store configuration for `fupermod_served` from
/// the `--shards N`, `--plan-budget BYTES`, `--outlier-k K` and
/// `--confidence CL` flags (all optional; defaults are
/// `StoreConfig::default()`'s). Exits with status 2 on an unparsable
/// value, matching the other flag helpers.
pub fn store_config(args: &HashMap<String, String>) -> fupermod_store::StoreConfig {
    fn parsed<T: std::str::FromStr>(
        args: &HashMap<String, String>,
        key: &str,
        default: T,
    ) -> T {
        match args.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("invalid --{key} value {raw:?}");
                std::process::exit(2);
            }),
        }
    }
    let defaults = fupermod_store::StoreConfig::default();
    fupermod_store::StoreConfig {
        shards: parsed(args, "shards", defaults.shards),
        plan_budget_bytes: parsed(args, "plan-budget", defaults.plan_budget_bytes),
        entry: fupermod_store::EntryConfig {
            outlier_k: parsed(args, "outlier-k", defaults.entry.outlier_k),
            confidence: parsed(args, "confidence", defaults.entry.confidence),
        },
    }
}

/// Splits a comma-separated flag value (`--fingerprints a,b,c`) into
/// its non-empty items.
pub fn csv_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}
