//! `fupermod_tracetool` — analyze traces written by the
//! observability layer (see docs/OBSERVABILITY.md).
//!
//! ```text
//! Usage: fupermod_tracetool <command> [options] FILE...
//!
//!   merge FILE... [--out PATH]
//!       Causally merge per-rank JSONL/CSV traces into one global
//!       JSONL timeline, ordered by the schema-v3 Lamport stamps
//!       (deterministic: rank breaks ties). Output goes to stdout
//!       unless --out is given.
//!
//!   report FILE... [--json] [--out PATH]
//!       Merge, then summarize: per-rank compute/comm/wait seconds,
//!       collective critical path by (op, algorithm), the dynamic
//!       imbalance table, fault and latency-histogram summaries.
//!       Text by default; --json emits summary JSON matching
//!       scripts/tracetool_schema.json.
//!
//!   export FILE... [--format chrome] [--out PATH]
//!       Merge, then export a Chrome trace-event / Perfetto JSON
//!       timeline: one track per rank, barrier-aligned slices.
//!       Load the output at https://ui.perfetto.dev or
//!       chrome://tracing.
//!
//!   validate --schema SCHEMA.json FILE
//!       Validate a JSON document against a committed JSON-Schema
//!       subset (used by scripts/check.sh to gate report output).
//!
//!   tail FILE... | --trace-dir DIR [--poll MS] [--idle-exit SECS]
//!        [--stats-every SECS] [--out PATH]
//!       Follow growing JSONL traces live: print events in the batch
//!       merge's causal order as they arrive (torn-write-safe), with
//!       rolling per-op p50/p99 on stderr. --trace-dir rescans DIR
//!       each poll, adopting files that appear late. --idle-exit
//!       returns once every file has been quiet that long (otherwise
//!       follow forever); --stats-every 0 silences the rolling stats.
//! ```
//!
//! Exit codes: 0 ok, 1 data/validation error, 2 usage error.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::PathBuf;

use fupermod::core::trace::SCHEMA_VERSION;
use fupermod::trace::{
    export_chrome, tail, validate, Json, Merge, Report, StampedEvent, TailOptions,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    let rest = &args[1..];
    let code = match command.as_str() {
        "merge" => cmd_merge(rest),
        "report" => cmd_report(rest),
        "export" => cmd_export(rest),
        "validate" => cmd_validate(rest),
        "tail" => cmd_tail(rest),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!(
                "unknown command '{other}' (want merge, report, export, validate or tail)"
            );
            2
        }
    };
    std::process::exit(code);
}

fn usage() -> ! {
    eprintln!(
        "Usage: fupermod_tracetool <merge|report|export|validate> [options] FILE...\n\
         \n\
         merge    FILE... [--out PATH]              merged global JSONL timeline\n\
         report   FILE... [--json] [--out PATH]     summary report (text or JSON)\n\
         export   FILE... [--format chrome] [--out PATH]  Perfetto/Chrome JSON\n\
         validate --schema SCHEMA.json FILE         check JSON against a schema\n\
         tail     FILE... | --trace-dir DIR [--poll MS] [--idle-exit SECS]\n\
                  [--stats-every SECS] [--out PATH] follow growing traces live"
    );
    std::process::exit(2);
}

/// Splits `--flag value` options from positional file arguments.
fn split_args(rest: &[String]) -> (Vec<(String, String)>, Vec<String>, Vec<PathBuf>) {
    let mut opts = Vec::new();
    let mut switches = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if let Some(flag) = a.strip_prefix("--") {
            match flag {
                "json" => {
                    switches.push(flag.to_owned());
                    i += 1;
                }
                "out" | "format" | "schema" | "trace-dir" | "poll" | "idle-exit"
                | "stats-every" => {
                    let Some(v) = rest.get(i + 1) else {
                        eprintln!("--{flag} needs a value");
                        std::process::exit(2);
                    };
                    opts.push((flag.to_owned(), v.clone()));
                    i += 2;
                }
                _ => {
                    eprintln!("unknown option --{flag}");
                    std::process::exit(2);
                }
            }
        } else {
            files.push(PathBuf::from(a));
            i += 1;
        }
    }
    (opts, switches, files)
}

fn opt<'a>(opts: &'a [(String, String)], key: &str) -> Option<&'a str> {
    opts.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Output writer: `--out PATH` or stdout.
fn out_writer(opts: &[(String, String)]) -> io::Result<Box<dyn Write>> {
    Ok(match opt(opts, "out") {
        Some(path) => Box::new(BufWriter::new(File::create(path)?)),
        None => Box::new(BufWriter::new(io::stdout())),
    })
}

/// Drains a merge into `f`, reporting the first stream error.
fn drain_merge<F>(mut merge: Merge, f: F) -> Result<(), String>
where
    F: FnOnce(&mut dyn Iterator<Item = StampedEvent>) -> Result<(), String>,
{
    let mut stream_err: Option<String> = None;
    {
        let mut iter = merge.by_ref().map_while(|r| match r {
            Ok(e) => Some(e),
            Err(e) => {
                stream_err = Some(e.to_string());
                None
            }
        });
        f(&mut iter)?;
    }
    match stream_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn open_merge(files: &[PathBuf]) -> Result<Merge, String> {
    if files.is_empty() {
        return Err("no trace files given".to_owned());
    }
    Merge::open(files).map_err(|e| e.to_string())
}

fn fail(context: &str, err: &str) -> i32 {
    eprintln!("fupermod_tracetool: {context}: {err}");
    1
}

fn cmd_merge(rest: &[String]) -> i32 {
    let (opts, _, files) = split_args(rest);
    let merge = match open_merge(&files) {
        Ok(m) => m,
        Err(e) => return fail("merge", &e),
    };
    let mut out = match out_writer(&opts) {
        Ok(w) => w,
        Err(e) => return fail("merge", &e.to_string()),
    };
    let result = drain_merge(merge, |events| {
        writeln!(out, "{{\"trace\":\"fupermod\",\"schema\":{SCHEMA_VERSION}}}")
            .map_err(|e| e.to_string())?;
        for ev in events {
            writeln!(out, "{}", ev.event.to_jsonl()).map_err(|e| e.to_string())?;
        }
        Ok(())
    })
    .and_then(|()| out.flush().map_err(|e| e.to_string()));
    match result {
        Ok(()) => 0,
        Err(e) => fail("merge", &e),
    }
}

fn cmd_report(rest: &[String]) -> i32 {
    let (opts, switches, files) = split_args(rest);
    let merge = match open_merge(&files) {
        Ok(m) => m,
        Err(e) => return fail("report", &e),
    };
    let schema = merge.schema();
    let mut report: Option<Report> = None;
    let result = drain_merge(merge, |events| {
        report = Some(Report::build(schema, events));
        Ok(())
    });
    if let Err(e) = result {
        return fail("report", &e);
    }
    let report = report.expect("report built");
    let rendered = if switches.iter().any(|s| s == "json") {
        let mut s = report.render_json();
        s.push('\n');
        s
    } else {
        report.render_text()
    };
    let result = out_writer(&opts)
        .and_then(|mut out| out.write_all(rendered.as_bytes()).and_then(|()| out.flush()));
    match result {
        Ok(()) => 0,
        Err(e) => fail("report", &e.to_string()),
    }
}

fn cmd_export(rest: &[String]) -> i32 {
    let (opts, _, files) = split_args(rest);
    let format = opt(&opts, "format").unwrap_or("chrome");
    if format != "chrome" {
        eprintln!("--format must be 'chrome' (got '{format}')");
        return 2;
    }
    let merge = match open_merge(&files) {
        Ok(m) => m,
        Err(e) => return fail("export", &e),
    };
    let mut out = match out_writer(&opts) {
        Ok(w) => w,
        Err(e) => return fail("export", &e.to_string()),
    };
    let result = drain_merge(merge, |events| {
        export_chrome(events, &mut out).map_err(|e| e.to_string())
    })
    .and_then(|()| {
        writeln!(out).and_then(|()| out.flush()).map_err(|e| e.to_string())
    });
    match result {
        Ok(()) => 0,
        Err(e) => fail("export", &e),
    }
}

fn cmd_tail(rest: &[String]) -> i32 {
    let (opts, _, files) = split_args(rest);
    let dir = opt(&opts, "trace-dir").map(PathBuf::from);
    if files.is_empty() && dir.is_none() {
        eprintln!("tail needs trace FILEs or --trace-dir DIR");
        return 2;
    }
    let parse_secs = |key: &str| -> Option<f64> {
        opt(&opts, key).map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("--{key} wants a number (got {raw:?})");
                std::process::exit(2);
            })
        })
    };
    let mut options = TailOptions::default();
    if let Some(ms) = parse_secs("poll") {
        options.poll = std::time::Duration::from_millis(ms.max(1.0) as u64);
    }
    if let Some(secs) = parse_secs("idle-exit") {
        options.idle_exit = Some(std::time::Duration::from_secs_f64(secs.max(0.0)));
    }
    if let Some(secs) = parse_secs("stats-every") {
        options.stats_every = (secs > 0.0)
            .then(|| std::time::Duration::from_secs_f64(secs));
    }
    let mut out = match out_writer(&opts) {
        Ok(w) => w,
        Err(e) => return fail("tail", &e.to_string()),
    };
    let mut stats = io::stderr();
    match tail(files, dir.as_deref(), &options, &mut out, &mut stats) {
        Ok(()) => 0,
        Err(e) => fail("tail", &e.to_string()),
    }
}

fn cmd_validate(rest: &[String]) -> i32 {
    let (opts, _, files) = split_args(rest);
    let Some(schema_path) = opt(&opts, "schema") else {
        eprintln!("validate needs --schema SCHEMA.json");
        return 2;
    };
    let [file] = files.as_slice() else {
        eprintln!("validate takes exactly one document FILE");
        return 2;
    };
    let read = |path: &str| -> Result<Json, String> {
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("{path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let schema = match read(schema_path) {
        Ok(j) => j,
        Err(e) => return fail("validate", &e),
    };
    let doc = match read(&file.display().to_string()) {
        Ok(j) => j,
        Err(e) => return fail("validate", &e),
    };
    match validate(&schema, &doc) {
        Ok(()) => {
            println!("{}: valid", file.display());
            0
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("{}: {e}", file.display());
            }
            1
        }
    }
}
