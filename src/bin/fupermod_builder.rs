//! `fupermod_builder` — build full performance models offline and save
//! them as point files, mirroring the original FuPerMod's model-builder
//! utility. The saved files feed `fupermod_partitioner` for static
//! data partitioning (the paper's "build the full models once, use them
//! multiple times" workflow).
//!
//! ```text
//! Usage: fupermod_builder [--platform NAME] [--seed S] [--block B]
//!                         [--lo L --hi H --points N] [--out DIR]
//!   --platform  uniform4 | two-speed | multicore | hybrid | grid (default: two-speed)
//!   --seed      platform seed (default: 1)
//!   --block     matmul blocking factor (default: 16)
//!   --lo/--hi   size range in computation units (default: 16..65536)
//!   --points    number of benchmark sizes (default: 14)
//!   --out       output directory (default: ./models)
//! ```

use std::collections::HashMap;

use fupermod::core::benchmark::Benchmark;
use fupermod::core::kernel::DeviceKernel;
use fupermod::core::model::{io, Model, PiecewiseModel};
use fupermod::core::Precision;
use fupermod::platform::{Platform, WorkloadProfile};

fn parse_args() -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let key = flag.trim_start_matches("--").to_owned();
        if let Some(value) = args.next() {
            map.insert(key, value);
        } else {
            eprintln!("missing value for --{key}");
            std::process::exit(2);
        }
    }
    map
}

fn pick_platform(name: &str, seed: u64) -> Platform {
    match name {
        "uniform4" => Platform::uniform(4, seed),
        "two-speed" => Platform::two_speed(2, 2, seed),
        "multicore" => Platform::multicore_node(6, seed),
        "hybrid" => Platform::hybrid_node(4, seed),
        "grid" => Platform::grid_site(seed),
        other => {
            eprintln!("unknown platform '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let get = |k: &str, default: &str| args.get(k).cloned().unwrap_or_else(|| default.to_owned());

    let platform = pick_platform(
        &get("platform", "two-speed"),
        get("seed", "1").parse().expect("seed must be an integer"),
    );
    let block: usize = get("block", "16").parse().expect("block must be an integer");
    let lo: u64 = get("lo", "16").parse().expect("lo must be an integer");
    let hi: u64 = get("hi", "65536").parse().expect("hi must be an integer");
    let npoints: usize = get("points", "14").parse().expect("points must be an integer");
    let out = std::path::PathBuf::from(get("out", "models"));

    std::fs::create_dir_all(&out).expect("cannot create output directory");
    let profile = WorkloadProfile::matrix_update(block);
    let precision = Precision::thorough();
    let bench = Benchmark::new(&precision);

    // Geometric size grid.
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (npoints as f64 - 1.0));
    let sizes: Vec<u64> = (0..npoints)
        .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
        .collect();

    for (rank, dev) in platform.devices().iter().enumerate() {
        let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
        let mut model = PiecewiseModel::new();
        for &d in &sizes {
            let point = bench.measure(&mut kernel, d).expect("benchmark failed");
            model.update(point).expect("model update failed");
        }
        let path = out.join(format!("{rank:02}_{}.points", dev.name()));
        io::save_model(&path, &model).expect("save failed");
        println!(
            "rank {rank} ({}): {} points -> {}",
            dev.name(),
            model.points().len(),
            path.display()
        );
    }
    println!(
        "built models for platform '{}' ({} devices) into {}",
        platform.name(),
        platform.size(),
        out.display()
    );
}
