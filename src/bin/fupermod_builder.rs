//! `fupermod_builder` — build full performance models offline and save
//! them as point files, mirroring the original FuPerMod's model-builder
//! utility. The saved files feed `fupermod_partitioner` for static
//! data partitioning (the paper's "build the full models once, use them
//! multiple times" workflow).
//!
//! ```text
//! Usage: fupermod_builder [--platform NAME] [--seed S] [--block B]
//!                         [--lo L --hi H --points N] [--out DIR]
//!                         [--trace PATH [--trace-format jsonl|csv]]
//!   --platform      uniform4 | two-speed | multicore | hybrid | grid (default: two-speed)
//!   --seed          platform seed (default: 1)
//!   --block         matmul blocking factor (default: 16)
//!   --lo/--hi       size range in computation units (default: 16..65536)
//!   --points        number of benchmark sizes (default: 14)
//!   --out           output directory (default: ./models)
//!   --trace         write a structured trace of every benchmark
//!                   repetition and model update (see docs/OBSERVABILITY.md)
//!   --trace-format  jsonl (default) or csv
//! ```

use fupermod::cli;
use fupermod::core::benchmark::Benchmark;
use fupermod::core::kernel::DeviceKernel;
use fupermod::core::model::{io, Model, PiecewiseModel};
use fupermod::core::trace::{null_sink, TraceEvent};
use fupermod::core::Precision;
use fupermod::platform::WorkloadProfile;

fn main() {
    let args = cli::parse_args();
    let get = |k: &str, default: &str| args.get(k).cloned().unwrap_or_else(|| default.to_owned());

    let platform = cli::pick_platform(
        &get("platform", "two-speed"),
        get("seed", "1").parse().expect("seed must be an integer"),
    );
    let block: usize = get("block", "16").parse().expect("block must be an integer");
    let lo: u64 = get("lo", "16").parse().expect("lo must be an integer");
    let hi: u64 = get("hi", "65536").parse().expect("hi must be an integer");
    let npoints: usize = get("points", "14").parse().expect("points must be an integer");
    let out = std::path::PathBuf::from(get("out", "models"));
    let sink = cli::open_trace_sink(&args);
    let trace = sink.as_deref().unwrap_or(null_sink());

    std::fs::create_dir_all(&out).expect("cannot create output directory");
    let profile = WorkloadProfile::matrix_update(block);
    let precision = Precision::thorough();
    let bench = Benchmark::new(&precision).with_trace(trace);

    // Geometric size grid.
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (npoints as f64 - 1.0));
    let sizes: Vec<u64> = (0..npoints)
        .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
        .collect();

    for (rank, dev) in platform.devices().iter().enumerate() {
        let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
        let mut model = PiecewiseModel::new();
        for &d in &sizes {
            let point = bench.measure(&mut kernel, d).expect("benchmark failed");
            model.update(point).expect("model update failed");
            trace.record(&TraceEvent::ModelUpdate {
                rank,
                d: point.d,
                t: point.t,
                reps: point.reps,
                points: model.points().len(),
            });
        }
        let path = out.join(format!("{rank:02}_{}.points", dev.name()));
        io::save_model(&path, &model).expect("save failed");
        println!(
            "rank {rank} ({}): {} points -> {}",
            dev.name(),
            model.points().len(),
            path.display()
        );
    }
    println!(
        "built models for platform '{}' ({} devices) into {}",
        platform.name(),
        platform.size(),
        out.display()
    );
    cli::finish_trace(sink.as_ref());
}
