//! `fupermod_builder` — build full performance models offline and save
//! them as point files, mirroring the original FuPerMod's model-builder
//! utility. The saved files feed `fupermod_partitioner` for static
//! data partitioning (the paper's "build the full models once, use them
//! multiple times" workflow).
//!
//! ```text
//! Usage: fupermod_builder [--platform NAME] [--seed S] [--block B]
//!                         [--lo L --hi H --points N] [--out DIR]
//!                         [--parallelism N]
//!                         [--trace PATH | --trace-dir DIR]
//!                         [--trace-format jsonl|csv]
//!   --platform      uniform4 | two-speed | multicore | hybrid | grid (default: two-speed)
//!   --seed          platform seed (default: 1)
//!   --block         matmul blocking factor (default: 16)
//!   --lo/--hi       size range in computation units (default: 16..65536)
//!   --points        number of benchmark sizes (default: 14)
//!   --out           output directory (default: ./models)
//!   --parallelism   model-build worker threads (default: 1 = serial,
//!                   0 = one per core); output is bit-identical either way
//!   --trace         write a structured trace of every benchmark
//!                   repetition and model update (see docs/OBSERVABILITY.md)
//!   --trace-dir     like --trace, but write DIR/fupermod_builder.trace.jsonl
//!                   (FUPERMOD_TRACE_DIR in the environment acts the same)
//!   --trace-format  jsonl (default) or csv
//! ```

use fupermod::cli;
use fupermod::core::builder::ModelBuilder;
use fupermod::core::kernel::{DeviceKernel, Kernel};
use fupermod::core::model::{io, Model, PiecewiseModel};
use fupermod::core::trace::null_sink;
use fupermod::core::Precision;
use fupermod::platform::WorkloadProfile;

fn main() {
    let args = cli::parse_args();
    let get = |k: &str, default: &str| args.get(k).cloned().unwrap_or_else(|| default.to_owned());

    let platform = cli::pick_platform(
        &get("platform", "two-speed"),
        get("seed", "1").parse().expect("seed must be an integer"),
    );
    let block: usize = get("block", "16").parse().expect("block must be an integer");
    let lo: u64 = get("lo", "16").parse().expect("lo must be an integer");
    let hi: u64 = get("hi", "65536").parse().expect("hi must be an integer");
    let npoints: usize = get("points", "14").parse().expect("points must be an integer");
    let out = std::path::PathBuf::from(get("out", "models"));
    let parallelism = cli::parallelism(&args);
    let sink = cli::open_trace_sink(&args);
    let trace = sink.as_deref().unwrap_or(null_sink());

    std::fs::create_dir_all(&out).expect("cannot create output directory");
    let profile = WorkloadProfile::matrix_update(block);
    let precision = Precision::thorough();

    // Geometric size grid.
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (npoints as f64 - 1.0));
    let sizes: Vec<u64> = (0..npoints)
        .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
        .collect();

    // One kernel per device; the builder measures them (possibly on
    // worker threads — the saved models and the trace are bit-identical
    // either way) and hands back the models in rank order.
    let kernels: Vec<Box<dyn Kernel + Send>> = platform
        .devices()
        .iter()
        .map(|dev| Box::new(DeviceKernel::new(dev.clone(), profile.clone())) as Box<dyn Kernel + Send>)
        .collect();
    let built = ModelBuilder::new(&precision)
        .with_parallelism(parallelism)
        .with_trace(trace)
        .build::<PiecewiseModel>(kernels, &sizes)
        .expect("model build failed");

    for (rank, (dev, built)) in platform.devices().iter().zip(&built).enumerate() {
        let path = out.join(format!("{rank:02}_{}.points", dev.name()));
        io::save_model(&path, &built.model).expect("save failed");
        println!(
            "rank {rank} ({}): {} points -> {}",
            dev.name(),
            built.model.points().len(),
            path.display()
        );
    }
    println!(
        "built models for platform '{}' ({} devices) into {}",
        platform.name(),
        platform.size(),
        out.display()
    );
    cli::finish_trace(sink.as_ref());
}
