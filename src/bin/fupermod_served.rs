//! `fupermod_served` — the partitioning-as-a-service daemon and its
//! command-line client, built on the `fupermod-store` crate: a sharded,
//! incrementally-maintained cache of device models plus an
//! epoch-invalidated partition-plan cache, served over line-delimited
//! JSON on TCP (protocol reference: `docs/SERVE.md`).
//!
//! ```text
//! Usage: fupermod_served [--mode serve|ingest|partition|lookup|stats|shutdown]
//!
//! serve (default):
//!   --listen ADDR   bind address (default 127.0.0.1:7070; port 0 picks
//!                   a free port — the chosen one is printed)
//!   --metrics-listen ADDR
//!                   also serve GET /metrics (Prometheus text
//!                   exposition), /healthz and /readyz over HTTP on
//!                   ADDR (port 0 picks a free port — printed as
//!                   `metrics on ADDR`); see docs/OBSERVABILITY.md §9
//!   --slow-ms N     log requests slower than N milliseconds to stderr
//!   --shards N      store shard count (default 8)
//!   --plan-budget B plan-cache byte budget (default 1048576)
//!   --outlier-k K   outlier rejection threshold (default 5)
//!   --confidence C  confidence level for point CIs (default 0.95)
//!   --trace PATH | --trace-dir DIR | --trace-format jsonl|csv
//!                   export the telemetry registry as metrics trace
//!                   events on shutdown (see docs/OBSERVABILITY.md)
//!
//! client modes (all take --connect ADDR):
//!   ingest:    --points FILE --fingerprint NAME [--kernel K] [--config C]
//!              stream a *.points file into one model entry
//!   partition: --fingerprints a,b,c --total D [--algorithm NAME]
//!              [--kernel K] [--config C]
//!              print the distribution in fupermod_partitioner's format
//!   lookup:    --fingerprint NAME [--kernel K] [--config C]
//!   stats:     print the daemon's counters (the same registry snapshot
//!              /metrics exposes)
//!   shutdown:  stop the daemon
//!
//! scrape mode (no daemon protocol — plain HTTP GET, no curl needed):
//!   scrape:    --connect ADDR [--path /metrics]   print body, exit
//!              non-zero unless the response status is 200
//! ```
//!
//! The daemon prints `listening on ADDR` (flushed) once the socket is
//! bound, so scripts can scrape the actual port when binding port 0.

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use fupermod::cli;
use fupermod::core::model::io;
use fupermod::core::trace::fmt_float;
use fupermod::store::http::{http_get, serve_http};
use fupermod::store::protocol::json::{self, Value};
use fupermod::store::server::{serve_with, Client, ServeOptions};
use fupermod::store::ModelStore;

fn main() {
    let args = cli::parse_args();
    let mode = args.get("mode").map(String::as_str).unwrap_or("serve");
    match mode {
        "serve" => run_serve(&args),
        "ingest" => run_ingest(&mut connect(&args), &args),
        "partition" => run_partition(&mut connect(&args), &args),
        "lookup" => run_lookup(&mut connect(&args), &args),
        "stats" => run_stats(&mut connect(&args)),
        "shutdown" => run_shutdown(&mut connect(&args)),
        "scrape" => run_scrape(&args),
        other => {
            eprintln!("unknown --mode '{other}'");
            std::process::exit(2);
        }
    }
}

fn run_serve(args: &HashMap<String, String>) {
    let addr = args
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7070");
    let config = cli::store_config(args);
    let sink = cli::open_trace_sink(args);
    let options = ServeOptions {
        slow_request: args.get("slow-ms").map(|raw| {
            let ms: u64 = raw.parse().unwrap_or_else(|_| {
                eprintln!("invalid --slow-ms value {raw:?} (want milliseconds)");
                std::process::exit(2);
            });
            std::time::Duration::from_millis(ms)
        }),
    };

    let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("local address");

    let store = Arc::new(ModelStore::new(config));
    let stop = Arc::new(AtomicBool::new(false));

    // The observability side-listener shares the stop flag: a protocol
    // `shutdown` turns /readyz 503 and winds the HTTP loop down too.
    let http_handle = args.get("metrics-listen").map(|metrics_addr| {
        let metrics_listener = TcpListener::bind(metrics_addr).unwrap_or_else(|e| {
            eprintln!("cannot bind metrics listener {metrics_addr}: {e}");
            std::process::exit(1);
        });
        let metrics_local = metrics_listener.local_addr().expect("metrics address");
        println!("metrics on {metrics_local}");
        let (store, stop) = (Arc::clone(&store), Arc::clone(&stop));
        std::thread::spawn(move || serve_http(metrics_listener, store, stop))
    });

    println!("listening on {local}");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush stdout");

    if let Err(e) = serve_with(listener, Arc::clone(&store), Arc::clone(&stop), options) {
        eprintln!("serve loop failed: {e}");
        std::process::exit(1);
    }
    if let Some(handle) = http_handle {
        if let Err(e) = handle.join().expect("metrics listener panicked") {
            eprintln!("metrics listener failed: {e}");
        }
    }
    if let Some(sink) = &sink {
        // Legacy dotted-scope counter events first (stable consumers),
        // then the full labelled registry snapshot (schema v4).
        store.metrics().export_events(0, sink.as_ref());
        store.refresh_gauges();
        store.registry().snapshot().export_trace_events(0, sink.as_ref());
    }
    cli::finish_trace(sink.as_ref());
    let s = store.metrics().snapshot();
    eprintln!(
        "stopped: {} entries, plan hits {} / misses {} / evictions {}",
        store.len(),
        s.plan_hits,
        s.plan_misses,
        s.plan_evictions
    );
}

fn run_scrape(args: &HashMap<String, String>) {
    let addr = required(args, "connect");
    let path = args.get("path").map(String::as_str).unwrap_or("/metrics");
    match http_get(addr, path) {
        Ok((200, body)) => print!("{body}"),
        Ok((code, body)) => {
            eprintln!("GET {path}: HTTP {code}");
            print!("{body}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("GET {path} from {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn connect(args: &HashMap<String, String>) -> Client {
    let addr = args.get("connect").unwrap_or_else(|| {
        eprintln!("--connect ADDR is required for client modes");
        std::process::exit(2);
    });
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    })
}

/// Sends one line and parses the response object, exiting non-zero on
/// transport errors or an `"ok": false` response.
fn exchange(client: &mut Client, line: &str) -> Vec<(String, Value)> {
    let response = client.request(line).unwrap_or_else(|e| {
        eprintln!("request failed: {e}");
        std::process::exit(1);
    });
    let fields = json::parse_flat_object(&response).unwrap_or_else(|e| {
        eprintln!("unparsable response {response:?}: {e}");
        std::process::exit(1);
    });
    let ok = matches!(field(&fields, "ok"), Some(Value::Bool(true)));
    if !ok {
        match field(&fields, "error") {
            Some(Value::Str(msg)) => eprintln!("daemon error: {msg}"),
            _ => eprintln!("daemon error: {response}"),
        }
        std::process::exit(1);
    }
    fields
}

fn field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn nums(fields: &[(String, Value)], key: &str) -> Vec<f64> {
    match field(fields, key) {
        Some(Value::NumArray(v)) => v.clone(),
        other => {
            eprintln!("response field '{key}' missing or mistyped: {other:?}");
            std::process::exit(1);
        }
    }
}

fn num(fields: &[(String, Value)], key: &str) -> f64 {
    match field(fields, key) {
        Some(Value::Num(v)) => *v,
        other => {
            eprintln!("response field '{key}' missing or mistyped: {other:?}");
            std::process::exit(1);
        }
    }
}

fn required<'a>(args: &'a HashMap<String, String>, key: &str) -> &'a str {
    args.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("--{key} is required");
        std::process::exit(2);
    })
}

fn key_fields(args: &HashMap<String, String>, fingerprint: &str) -> String {
    format!(
        "\"fingerprint\":{},\"kernel\":{},\"config\":{}",
        json::quote(fingerprint),
        json::quote(args.get("kernel").map(String::as_str).unwrap_or("default")),
        json::quote(args.get("config").map(String::as_str).unwrap_or("default")),
    )
}

fn run_ingest(client: &mut Client, args: &HashMap<String, String>) {
    let path = required(args, "points");
    let fingerprint = required(args, "fingerprint");
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let points = io::read_points(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut epoch = 0.0;
    for p in &points {
        // Aggregated file points go through the merge-semantics path,
        // which absorbs them exactly like `io::load_into_model` feeds a
        // local model — the daemon's models stay bit-identical to an
        // offline build over the same file.
        let line = format!(
            "{{\"op\":\"ingest_point\",{},\"d\":{},\"t\":{},\"reps\":{},\"ci\":{}}}",
            key_fields(args, fingerprint),
            p.d,
            fmt_float(p.t),
            p.reps,
            fmt_float(p.ci),
        );
        let fields = exchange(client, &line);
        epoch = num(&fields, "epoch");
    }
    println!(
        "ingested {} points from {path} into {fingerprint} (epoch {epoch})",
        points.len()
    );
}

fn run_partition(client: &mut Client, args: &HashMap<String, String>) {
    let fingerprints = cli::csv_list(required(args, "fingerprints"));
    if fingerprints.is_empty() {
        eprintln!("--fingerprints must name at least one model");
        std::process::exit(2);
    }
    let total: u64 = required(args, "total").parse().unwrap_or_else(|_| {
        eprintln!("--total must be an integer");
        std::process::exit(2);
    });
    let algorithm = args
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("geometric");
    let quoted: Vec<String> = fingerprints.iter().map(|f| json::quote(f)).collect();
    let line = format!(
        "{{\"op\":\"partition\",\"fingerprints\":[{}],\"kernel\":{},\"config\":{},\"total\":{total},\"algorithm\":{}}}",
        quoted.join(","),
        json::quote(args.get("kernel").map(String::as_str).unwrap_or("default")),
        json::quote(args.get("config").map(String::as_str).unwrap_or("default")),
        json::quote(algorithm),
    );
    let fields = exchange(client, &line);
    let ds = nums(&fields, "ds");
    let ts = nums(&fields, "ts");
    let cached = matches!(field(&fields, "cached"), Some(Value::Bool(true)));

    // Exactly fupermod_partitioner's output (fingerprints stand in for
    // the model file names), so the two are byte-diffable.
    println!("# rank  file  d  predicted_t");
    for (rank, (fp, (d, t))) in fingerprints.iter().zip(ds.iter().zip(&ts)).enumerate() {
        println!("{rank} {fp} {} {t:.6}", *d as u64);
    }
    println!(
        "# total {} / predicted makespan {:.6} s / predicted imbalance {:.4}",
        ds.iter().map(|d| *d as u64).sum::<u64>(),
        num(&fields, "makespan"),
        num(&fields, "imbalance"),
    );
    eprintln!("plan cache: {}", if cached { "hit" } else { "miss" });
}

fn run_lookup(client: &mut Client, args: &HashMap<String, String>) {
    let fingerprint = required(args, "fingerprint");
    let line = format!("{{\"op\":\"lookup\",{}}}", key_fields(args, fingerprint));
    let fields = exchange(client, &line);
    let ds = nums(&fields, "ds");
    let ts = nums(&fields, "ts");
    let reps = nums(&fields, "reps");
    let cis = nums(&fields, "cis");
    println!("# epoch {}", num(&fields, "epoch"));
    println!("# d  t  reps  ci");
    for i in 0..ds.len() {
        println!(
            "{} {} {} {}",
            ds[i] as u64,
            fmt_float(ts[i]),
            reps[i] as u64,
            fmt_float(cis[i])
        );
    }
}

fn run_stats(client: &mut Client) {
    let fields = exchange(client, r#"{"op":"stats"}"#);
    for (k, v) in &fields {
        if k == "ok" {
            continue;
        }
        match v {
            Value::Num(n) => println!("{k} {}", fmt_float(*n)),
            other => println!("{k} {other:?}"),
        }
    }
}

fn run_shutdown(client: &mut Client) {
    exchange(client, r#"{"op":"shutdown"}"#);
    println!("daemon shutting down");
}
