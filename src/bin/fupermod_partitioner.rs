//! `fupermod_partitioner` — load saved performance models and compute
//! an optimal static distribution, mirroring the original FuPerMod's
//! partitioning utility.
//!
//! ```text
//! Usage: fupermod_partitioner --models DIR --total D
//!                             [--algorithm even|constant|geometric|numerical]
//!                             [--model cpm|linear|piecewise|akima]
//!                             [--trace PATH | --trace-dir DIR]
//!                             [--trace-format jsonl|csv]
//!   --models        directory of *.points files (rank order = sorted name)
//!   --total         workload in computation units
//!   --algorithm     partitioning algorithm (default: geometric)
//!   --model         model type built from the points (default: piecewise)
//!   --trace         write the partition step as a structured trace
//!                   (see docs/OBSERVABILITY.md)
//!   --trace-dir     like --trace, but write DIR/fupermod_partitioner.trace.jsonl
//!                   (FUPERMOD_TRACE_DIR in the environment acts the same)
//!   --trace-format  jsonl (default) or csv
//! ```

use fupermod::cli;
use fupermod::core::model::{
    io, AkimaModel, ConstantModel, LinearModel, Model, PiecewiseModel,
};
use fupermod::core::trace::null_sink;

fn new_model(kind: &str) -> Box<dyn Model> {
    match kind {
        "cpm" => Box::new(ConstantModel::new()),
        "linear" => Box::new(LinearModel::new()),
        "piecewise" => Box::new(PiecewiseModel::new()),
        "akima" => Box::new(AkimaModel::new()),
        other => {
            eprintln!("unknown model type '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = cli::parse_args();
    let dir = args.get("models").map(std::path::PathBuf::from).unwrap_or_else(|| {
        eprintln!("--models DIR is required");
        std::process::exit(2);
    });
    let total: u64 = args
        .get("total")
        .unwrap_or_else(|| {
            eprintln!("--total D is required");
            std::process::exit(2);
        })
        .parse()
        .expect("total must be an integer");
    let model_kind = args.get("model").map(String::as_str).unwrap_or("piecewise");
    let algo_kind = args
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("geometric");
    let sink = cli::open_trace_sink(&args);

    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("cannot read models directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "points"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("no *.points files in {}", dir.display());
        std::process::exit(1);
    }

    let mut models: Vec<Box<dyn Model>> = Vec::with_capacity(files.len());
    for path in &files {
        let mut model = new_model(model_kind);
        io::load_into_model(path, model.as_mut()).expect("load failed");
        models.push(model);
    }
    let refs: Vec<&dyn Model> = models.iter().map(|m| m.as_ref()).collect();

    let partitioner = cli::pick_partitioner(algo_kind);
    let dist = partitioner
        .partition_traced(total, &refs, sink.as_deref().unwrap_or(null_sink()))
        .expect("partitioning failed");

    println!("# rank  file  d  predicted_t");
    for (rank, (part, path)) in dist.parts().iter().zip(&files).enumerate() {
        println!(
            "{rank} {} {} {:.6}",
            path.file_name().expect("file name").to_string_lossy(),
            part.d,
            part.t
        );
    }
    println!(
        "# total {} / predicted makespan {:.6} s / predicted imbalance {:.4}",
        dist.total_assigned(),
        dist.predicted_makespan(),
        dist.predicted_imbalance()
    );
    cli::finish_trace(sink.as_ref());
}
