//! `fupermod_simulate` — run the heterogeneous applications on a
//! simulated platform from the command line.
//!
//! ```text
//! Usage: fupermod_simulate --app matmul|jacobi|heat|balance
//!                          [--platform NAME] [--ranks P] [--seed S] [--size N]
//!                          [--algorithm even|constant|geometric|numerical]
//!                          [--parallelism N]
//!                          [--runtime thread|sim] [--fault-plan SPEC]
//!                          [--sim-engine thread|event]
//!                          [--collectives hub|ring|tree|auto]
//!                          [--pipeline blocking|overlapped] [--overlap yes]
//!                          [--transport local|tcp] [--rank-id K] [--world N]
//!                          [--rendezvous HOST:PORT]
//!                          [--trace PATH | --trace-dir DIR]
//!                          [--trace-format jsonl|csv]
//!   --app           which application to simulate; `balance` runs the
//!                   distributed dynamic-balancing loop on the runtime
//!   --platform      uniform4 | two-speed | multicore | hybrid | grid (default: two-speed)
//!   --ranks, -p     scale the named platform family to P devices
//!                   (grid is fixed at 16 and rejects this flag);
//!                   P = 0 is rejected, and the thread engine refuses
//!                   P > 512 rather than spawning that many OS threads
//!   --seed          platform/workload seed (default: 1)
//!   --size          problem size: matmul = blocks per side (default 128),
//!                   jacobi/heat = rows (default 600),
//!                   balance = work units (default 100000)
//!   --algorithm     partitioning algorithm (default: geometric)
//!   --parallelism   (matmul only) model-build worker threads (default: 1
//!                   = serial, 0 = one per core); bit-identical output
//!   --pipeline      (matmul only) run the broadcast-driven multiplication
//!                   for real on the runtime instead of the closed-form
//!                   simulation: `blocking` waits for each pivot before
//!                   computing, `overlapped` double-buffers the next pivot
//!                   with `ibcast` (see docs/RUNTIME.md §8); prints a
//!                   product checksum suitable for bit-identity diffing
//!   --runtime       (balance, matmul --pipeline) thread (wall clocks,
//!                   default) or sim (deterministic Hockney virtual clocks)
//!   --sim-engine    (balance) thread (one OS thread per rank, default)
//!                   or event (single-threaded discrete-event
//!                   interpreter, 10⁴–10⁶ ranks; implies --runtime sim;
//!                   see docs/RUNTIME.md §9)
//!   --fault-plan    (balance, matmul --pipeline) inline JSON or a JSON
//!                   file injecting delays/drops/stragglers/death (see
//!                   docs/RUNTIME.md)
//!   --collectives   (balance, matmul --pipeline) collective schedules:
//!                   hub (default), ring, tree or auto (see docs/RUNTIME.md §6)
//!   --overlap yes   (balance only) post measurement receives before the
//!                   root's own measurement and push shares with eager
//!                   isends — nonblocking requests instead of blocking
//!                   collectives (see docs/RUNTIME.md §8)
//!   --transport     (balance only) local (default: all ranks are threads
//!                   of this process) or tcp (this process drives ONE rank
//!                   of a multi-process job over sockets; launch one
//!                   process per rank — see docs/RUNTIME.md §10)
//!   --rank-id,      (tcp) this process's rank, the job's total process
//!   --world         count; every process must agree on --world, the
//!                   platform flags and --seed
//!   --rendezvous    (tcp) rank 0's HOST:PORT; rank 0 listens there and
//!                   the other ranks dial it with retry/backoff
//!   --trace         write a structured trace (see docs/OBSERVABILITY.md)
//!   --trace-dir     like --trace, but write DIR/fupermod_simulate.trace.jsonl
//!                   (FUPERMOD_TRACE_DIR in the environment acts the same)
//!   --trace-format  jsonl (default) or csv
//!   --gantt yes     (matmul only) dump the Gantt-style activity CSV to stderr
//! ```

use fupermod::apps::heat::{run_traced as heat_run, sine_mode, HeatConfig};
use fupermod::apps::jacobi::{run_traced as jacobi_run, JacobiConfig};
use fupermod::apps::matmul::{
    build_device_models_with, simulate, simulate_traced, MatMulConfig,
};
use fupermod::apps::workload::dominant_system;
use fupermod::cli;
use fupermod::core::model::{AkimaModel, Model};
use fupermod::core::trace::{null_sink, TraceSink};
use fupermod::core::Precision;
use fupermod::platform::{LinkModel, WorkloadProfile};

use std::sync::Arc;

fn main() {
    let args = cli::parse_args();
    let get = |k: &str, default: &str| args.get(k).cloned().unwrap_or_else(|| default.to_owned());
    let app = get("app", "");
    let seed: u64 = get("seed", "1").parse().expect("seed must be an integer");
    let platform_name = get("platform", "two-speed");
    let ranks = cli::ranks(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let platform = match ranks {
        Some(p) => cli::scaled_platform(&platform_name, p, seed),
        None => cli::pick_platform(&platform_name, seed),
    };
    let algorithm = get("algorithm", "geometric");
    let tcp = cli::tcp_transport(&args);
    if tcp.is_some() && app != "balance" {
        eprintln!("--transport tcp runs --app balance only");
        std::process::exit(2);
    }
    // Each process of a TCP job writes its own trace file
    // (`fupermod_tracetool merge` stitches them back together).
    let sink = cli::open_trace_sink_for_rank(&args, tcp.as_ref().map(|t| t.rank));
    let events: Arc<dyn TraceSink> = sink
        .clone()
        .unwrap_or_else(|| Arc::new(fupermod::core::trace::NullSink));

    match app.as_str() {
        "matmul" if args.contains_key("pipeline") => {
            use fupermod::apps::matmul::{matrix_checksum, run_bcast};
            use fupermod::apps::workload::random_matrix;
            use fupermod::runtime::OverlapMode;

            if cli::sim_engine(&args) == fupermod::runtime::SimEngine::Event {
                eprintln!(
                    "--sim-engine event runs --app balance only; \
                     --pipeline needs the thread engine"
                );
                std::process::exit(2);
            }
            let mode = match get("pipeline", "blocking").as_str() {
                "blocking" => OverlapMode::Blocking,
                "overlapped" | "pipelined" => OverlapMode::Overlapped,
                other => {
                    eprintln!("--pipeline must be blocking or overlapped (got '{other}')");
                    std::process::exit(2);
                }
            };
            let n_blocks: u64 = get("size", "8").parse().expect("size must be an integer");
            let block = 16usize;
            let n = n_blocks as usize * block;
            let a = random_matrix(n, n, seed);
            let b = random_matrix(n, n, seed.wrapping_add(1));
            // Even block-area split: the pipeline path exercises the
            // communication schedule, not the partition quality.
            let p = platform.size() as u64;
            let total = n_blocks * n_blocks;
            let areas: Vec<u64> = (0..p)
                .map(|i| total / p + u64::from(i < total % p))
                .collect();
            let config = cli::runtime_config(&args, &platform, sink.as_ref());
            let run = run_bcast(&a, &b, block, &areas, config, mode)
                .expect("broadcast matmul failed");
            println!("platform: {}", platform.name());
            println!("areas: {areas:?}");
            println!("pipeline mode: {mode:?}");
            println!("product checksum: {:016x}", matrix_checksum(&run.product));
            if let Some(vt) = run.virtual_time {
                println!("virtual makespan: {vt:.6} s");
            }
            println!("wall seconds: {:.4}", run.wall_seconds);
        }
        "matmul" => {
            let n_blocks: u64 = get("size", "128").parse().expect("size must be an integer");
            let cfg = MatMulConfig { n_blocks, block: 16 };
            let profile = WorkloadProfile::matrix_update(cfg.block);
            let max = (n_blocks * n_blocks / 2).max(32);
            let models: Vec<AkimaModel> = build_device_models_with(
                &platform,
                &profile,
                &[32, max / 64, max / 8, max],
                &Precision::default(),
                sink.as_deref().unwrap_or(null_sink()),
                cli::parallelism(&args),
            )
            .expect("model build failed");
            let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
            let partitioner = cli::pick_partitioner(&algorithm);
            let dist = partitioner
                .partition_traced(n_blocks * n_blocks, &refs, events.as_ref())
                .expect("partition failed");
            let areas = dist.sizes();
            let want_gantt = get("gantt", "no") == "yes";
            let report = if want_gantt {
                let (report, gantt) =
                    simulate_traced(&platform, &areas, &cfg).expect("simulation failed");
                eprintln!("rank,start,end,activity");
                for e in &gantt {
                    eprintln!("{},{:.6},{:.6},{:?}", e.rank, e.start, e.end, e.activity);
                }
                report
            } else {
                simulate(&platform, &areas, &cfg).expect("simulation failed")
            };
            println!("platform: {}", platform.name());
            println!("areas: {areas:?}");
            println!("total simulated time: {:.4} s", report.total_time);
            println!("communication seconds: {:.4}", report.comm_seconds);
            println!("half-perimeter sum: {}", report.half_perimeters);
        }
        "jacobi" => {
            let n: usize = get("size", "600").parse().expect("size must be an integer");
            let system = dominant_system(n, seed.wrapping_add(1));
            let report = jacobi_run(
                &system,
                &platform,
                cli::pick_partitioner(&algorithm),
                &JacobiConfig::default(),
                events.clone(),
            )
            .expect("jacobi run failed");
            println!("platform: {}", platform.name());
            println!(
                "converged: {} in {} iterations, makespan {:.4} s",
                report.converged,
                report.iterations.len(),
                report.makespan
            );
            if let Some(last) = report.iterations.last() {
                println!("final row distribution: {:?}", last.sizes);
            }
        }
        "heat" => {
            let rows: usize = get("size", "600").parse().expect("size must be an integer");
            let cfg = HeatConfig::default();
            let initial = sine_mode(rows, cfg.cols);
            let platform = platform.with_link(LinkModel::infiniband());
            let report = heat_run(
                &initial,
                rows,
                &platform,
                cli::pick_partitioner(&algorithm),
                &cfg,
                events.clone(),
            )
            .expect("heat run failed");
            println!("platform: {}", platform.name());
            println!(
                "{} steps, makespan {:.4} s",
                report.steps.len(),
                report.makespan
            );
            if let Some(last) = report.steps.last() {
                println!("final row distribution: {:?}", last.sizes);
            }
        }
        "balance" => {
            use fupermod::core::dynamic::DynamicContext;
            use fupermod::core::model::PiecewiseModel;
            use fupermod::runtime::{run_to_balance_distributed_with, OverlapMode};

            let total: u64 = get("size", "100000").parse().expect("size must be an integer");
            let profile = WorkloadProfile::matrix_update(16);
            let size = platform.size();
            let mode = if get("overlap", "no") == "yes" {
                OverlapMode::Overlapped
            } else {
                OverlapMode::Blocking
            };
            let make_ctx = || {
                let models: Vec<Box<dyn Model>> = (0..size)
                    .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
                    .collect();
                DynamicContext::new(cli::pick_partitioner(&algorithm), models, total, 0.05)
            };
            let measure = |rank: usize, d: u64| {
                fupermod::apps::matmul::measure_device_point(
                    &platform,
                    rank,
                    &profile,
                    d,
                    &fupermod::core::Precision::quick(),
                )
            };
            if let Some(tcp) = &tcp {
                // Multi-process path: this process drives exactly one
                // rank; the platform/context are rebuilt identically
                // in every process from the shared seed and flags.
                use fupermod::runtime::net::{connect, TcpConfig};
                use fupermod::runtime::{run_balance_rank, Communicator, SimEngine};

                if get("runtime", "thread") != "thread"
                    || cli::sim_engine(&args) != SimEngine::Thread
                {
                    eprintln!(
                        "--transport tcp is wall-clock only: drop --runtime sim \
                         and --sim-engine event"
                    );
                    std::process::exit(2);
                }
                if tcp.world != size {
                    eprintln!(
                        "--world {} does not match the platform's {} devices \
                         (scale the platform with --ranks)",
                        tcp.world, size
                    );
                    std::process::exit(2);
                }
                let plan = cli::fault_plan(&args);
                let factor = plan.straggler_factor(tcp.rank);
                let mut cfg = TcpConfig::new(tcp.rank, tcp.world, tcp.rendezvous.clone())
                    .with_plan(plan)
                    .with_algorithms(cli::collectives(&args));
                if let Some(s) = &sink {
                    cfg = cfg.with_trace(s.clone());
                }
                let mut comm = connect(cfg).unwrap_or_else(|e| {
                    eprintln!("rank {}: tcp connect failed: {e}", tcp.rank);
                    std::process::exit(1);
                });
                let ctx = (tcp.rank == 0).then(make_ctx);
                let result =
                    run_balance_rank(comm.inner_mut(), ctx, &measure, 25, mode, factor, &events);
                match result {
                    Ok(root_outcome) => {
                        // Deaths *during* the run: read before the
                        // closing barrier, while surviving peers are
                        // still blocked in it — after it they start
                        // tearing down, and their goodbyes would show
                        // up as deaths here.
                        let dead = comm.handle().dead_ranks();
                        // Settle membership before the goodbye, so no
                        // peer still needs this rank mid-collective.
                        let _ = comm.barrier();
                        if let Some((steps, final_sizes)) = root_outcome {
                            println!("platform: {}", platform.name());
                            println!(
                                "converged: {} in {} steps",
                                steps.last().is_some_and(|s| s.converged),
                                steps.len()
                            );
                            if let Some(last) = steps.last() {
                                println!("final imbalance: {:.4}", last.imbalance);
                            }
                            println!("final distribution: {final_sizes:?}");
                            if !dead.is_empty() {
                                println!("dead ranks: {dead:?}");
                            }
                        }
                        comm.shutdown();
                    }
                    Err(e) => {
                        eprintln!("rank {} failed: {e}", tcp.rank);
                        comm.shutdown();
                        cli::finish_trace(sink.as_ref());
                        std::process::exit(1);
                    }
                }
            } else {
                let config = cli::runtime_config(&args, &platform, sink.as_ref());
                let outcome =
                    run_to_balance_distributed_with(config, size, make_ctx, measure, 25, mode)
                        .expect("distributed balance run failed");
                println!("platform: {}", platform.name());
                println!(
                    "converged: {} in {} steps",
                    outcome.converged(),
                    outcome.steps.len()
                );
                if let Some(last) = outcome.steps.last() {
                    println!("final imbalance: {:.4}", last.imbalance);
                }
                println!("final distribution: {:?}", outcome.final_sizes);
                if !outcome.dead_ranks.is_empty() {
                    println!("dead ranks: {:?}", outcome.dead_ranks);
                }
            }
        }
        other => {
            eprintln!("--app must be matmul, jacobi, heat or balance (got '{other}')");
            std::process::exit(2);
        }
    }
    cli::finish_trace(sink.as_ref());
}
