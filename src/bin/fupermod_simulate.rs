//! `fupermod_simulate` — run the heterogeneous applications on a
//! simulated platform from the command line.
//!
//! ```text
//! Usage: fupermod_simulate --app matmul|jacobi|heat
//!                          [--platform NAME] [--seed S] [--size N]
//!                          [--algorithm even|constant|geometric|numerical]
//!   --app        which application to simulate
//!   --platform   uniform4 | two-speed | multicore | hybrid | grid (default: two-speed)
//!   --seed       platform/workload seed (default: 1)
//!   --size       problem size: matmul = blocks per side (default 128),
//!                jacobi/heat = rows (default 600)
//!   --algorithm  partitioning algorithm (default: geometric)
//!   --trace yes  (matmul only) dump the Gantt-style trace CSV to stderr
//! ```

use std::collections::HashMap;

use fupermod::apps::heat::{run as heat_run, sine_mode, HeatConfig};
use fupermod::apps::jacobi::{run as jacobi_run, JacobiConfig};
use fupermod::apps::matmul::{
    build_device_models, partition_areas, simulate, simulate_traced, MatMulConfig,
};
use fupermod::apps::workload::dominant_system;
use fupermod::core::model::{AkimaModel, Model};
use fupermod::core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod::core::Precision;
use fupermod::platform::{LinkModel, Platform, WorkloadProfile};

fn parse_args() -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let key = flag.trim_start_matches("--").to_owned();
        if let Some(value) = args.next() {
            map.insert(key, value);
        } else {
            eprintln!("missing value for --{key}");
            std::process::exit(2);
        }
    }
    map
}

fn pick_platform(name: &str, seed: u64) -> Platform {
    match name {
        "uniform4" => Platform::uniform(4, seed),
        "two-speed" => Platform::two_speed(2, 2, seed),
        "multicore" => Platform::multicore_node(6, seed),
        "hybrid" => Platform::hybrid_node(4, seed),
        "grid" => Platform::grid_site(seed),
        other => {
            eprintln!("unknown platform '{other}'");
            std::process::exit(2);
        }
    }
}

fn pick_partitioner(name: &str) -> Box<dyn Partitioner> {
    match name {
        "even" => Box::new(EvenPartitioner),
        "constant" => Box::new(ConstantPartitioner),
        "geometric" => Box::new(GeometricPartitioner::default()),
        "numerical" => Box::new(NumericalPartitioner::default()),
        other => {
            eprintln!("unknown algorithm '{other}'");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let get = |k: &str, default: &str| args.get(k).cloned().unwrap_or_else(|| default.to_owned());
    let app = get("app", "");
    let seed: u64 = get("seed", "1").parse().expect("seed must be an integer");
    let platform = pick_platform(&get("platform", "two-speed"), seed);
    let algorithm = get("algorithm", "geometric");

    match app.as_str() {
        "matmul" => {
            let n_blocks: u64 = get("size", "128").parse().expect("size must be an integer");
            let cfg = MatMulConfig { n_blocks, block: 16 };
            let profile = WorkloadProfile::matrix_update(cfg.block);
            let max = (n_blocks * n_blocks / 2).max(32);
            let models: Vec<AkimaModel> = build_device_models(
                &platform,
                &profile,
                &[32, max / 64, max / 8, max],
                &Precision::default(),
            )
            .expect("model build failed");
            let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
            let partitioner = pick_partitioner(&algorithm);
            let areas = partition_areas(partitioner.as_ref(), n_blocks, &refs)
                .expect("partition failed");
            let want_trace = get("trace", "no") == "yes";
            let report = if want_trace {
                let (report, trace) =
                    simulate_traced(&platform, &areas, &cfg).expect("simulation failed");
                eprintln!("rank,start,end,activity");
                for e in &trace {
                    eprintln!("{},{:.6},{:.6},{:?}", e.rank, e.start, e.end, e.activity);
                }
                report
            } else {
                simulate(&platform, &areas, &cfg).expect("simulation failed")
            };
            println!("platform: {}", platform.name());
            println!("areas: {areas:?}");
            println!("total simulated time: {:.4} s", report.total_time);
            println!("communication seconds: {:.4}", report.comm_seconds);
            println!("half-perimeter sum: {}", report.half_perimeters);
        }
        "jacobi" => {
            let n: usize = get("size", "600").parse().expect("size must be an integer");
            let system = dominant_system(n, seed.wrapping_add(1));
            let report = jacobi_run(
                &system,
                &platform,
                pick_partitioner(&algorithm),
                &JacobiConfig::default(),
            )
            .expect("jacobi run failed");
            println!("platform: {}", platform.name());
            println!(
                "converged: {} in {} iterations, makespan {:.4} s",
                report.converged,
                report.iterations.len(),
                report.makespan
            );
            if let Some(last) = report.iterations.last() {
                println!("final row distribution: {:?}", last.sizes);
            }
        }
        "heat" => {
            let rows: usize = get("size", "600").parse().expect("size must be an integer");
            let cfg = HeatConfig::default();
            let initial = sine_mode(rows, cfg.cols);
            let platform = platform.with_link(LinkModel::infiniband());
            let report = heat_run(
                &initial,
                rows,
                &platform,
                pick_partitioner(&algorithm),
                &cfg,
            )
            .expect("heat run failed");
            println!("platform: {}", platform.name());
            println!(
                "{} steps, makespan {:.4} s",
                report.steps.len(),
                report.makespan
            );
            if let Some(last) = report.steps.last() {
                println!("final row distribution: {:?}", last.sizes);
            }
        }
        other => {
            eprintln!("--app must be matmul, jacobi or heat (got '{other}')");
            std::process::exit(2);
        }
    }
}
