#![warn(missing_docs)]

//! # FuPerMod (reproduction)
//!
//! A Rust reproduction of **FuPerMod** — *"A Framework for Optimal Data
//! Partitioning for Parallel Scientific Applications on Dedicated
//! Heterogeneous HPC Platforms"* (Clarke, Zhong, Rychkov, Lastovetsky;
//! PaCT 2013) — together with every substrate it needs: a simulated
//! heterogeneous platform, real computation kernels, a numerical
//! toolbox, and the two use-case applications.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`num`] | `fupermod-num` | statistics, interpolation, solvers, apportionment |
//! | [`platform`] | `fupermod-platform` | simulated devices, workload profiles, communicators |
//! | [`kernels`] | `fupermod-kernels` | GEMM, Jacobi sweep, synthetic kernels |
//! | [`core`] | `fupermod-core` | benchmarking, performance models, partitioning |
//! | [`runtime`] | `fupermod-runtime` | rank-based message-passing runtime, fault injection, distributed balancing |
//! | [`store`] | `fupermod-store` | sharded incrementally-maintained model store, plan cache, serving protocol |
//! | [`apps`] | `fupermod-apps` | matrix multiplication and Jacobi use cases |
//! | [`trace`] | `fupermod-trace` | causal trace merge, critical-path reports, Perfetto export |
//!
//! The [`cli`] module holds the flag parsing and `--trace` sink wiring
//! shared by the `fupermod_*` binaries.
//!
//! ## Quick start
//!
//! ```
//! use fupermod::core::benchmark::Benchmark;
//! use fupermod::core::kernel::DeviceKernel;
//! use fupermod::core::model::{Model, PiecewiseModel};
//! use fupermod::core::partition::{GeometricPartitioner, Partitioner};
//! use fupermod::core::Precision;
//! use fupermod::platform::{cluster, WorkloadProfile};
//!
//! # fn main() -> Result<(), fupermod::core::CoreError> {
//! let profile = WorkloadProfile::matrix_update(16);
//! let devices = [cluster::fast_cpu("fast", 1), cluster::slow_cpu("slow", 2)];
//!
//! let mut models = Vec::new();
//! for dev in &devices {
//!     let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
//!     let mut model = PiecewiseModel::new();
//!     for d in [100u64, 500, 2000] {
//!         model.update(Benchmark::new(&Precision::default()).measure(&mut kernel, d)?)?;
//!     }
//!     models.push(model);
//! }
//! let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
//! let dist = GeometricPartitioner::default().partition(4000, &refs)?;
//! assert_eq!(dist.total_assigned(), 4000);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the binaries that regenerate every figure/experiment of the
//! paper (indexed in `DESIGN.md`, results recorded in
//! `EXPERIMENTS.md`).

pub mod cli;

pub use fupermod_apps as apps;
pub use fupermod_core as core;
pub use fupermod_kernels as kernels;
pub use fupermod_num as num;
pub use fupermod_platform as platform;
pub use fupermod_runtime as runtime;
pub use fupermod_store as store;
pub use fupermod_trace as trace;
