//! Offline shim for `serde_derive`: the `Serialize` / `Deserialize`
//! derive macros expand to nothing.
//!
//! The workspace only uses the derives as declarative markers on plain
//! data types (`Point`, `Part`, `Distribution`, …); no code path
//! actually serialises through serde (model I/O is a hand-rolled text
//! format). Emitting an empty token stream therefore keeps every
//! `#[derive(Serialize, Deserialize)]` compiling in the offline build
//! environment without pulling in the real proc-macro stack.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
