#![warn(missing_docs)]

//! Offline shim for `serde`: marker traits plus no-op derive macros.
//!
//! The FuPerMod workspace annotates its plain-data types with
//! `#[derive(Serialize, Deserialize)]` so downstream users *could*
//! serialise them, but nothing in the repository calls serde itself
//! (model point files use a hand-rolled text format, the new trace
//! subsystem hand-rolls JSONL/CSV). This crate provides just enough
//! API surface — the two trait names and the two derive macros — for
//! those annotations to compile in the offline build environment.
//!
//! The derives expand to nothing, so the traits are *not* implemented
//! for the annotated types; any future code that genuinely needs serde
//! serialisation must swap this shim for the real crate (delete the
//! `serde`/`serde_derive` entries under `shims/` and restore the
//! registry dependency in the workspace `Cargo.toml`).

/// Marker stand-in for `serde::Serialize` (never implemented by the
/// no-op derive).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented by the
/// no-op derive).
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
