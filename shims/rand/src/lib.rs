#![warn(missing_docs)]

//! Offline shim for `rand` 0.8: the API subset the FuPerMod workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` on
//! primitive ranges), implemented on a SplitMix64 core with no
//! dependencies beyond `std`.
//!
//! The generator is deterministic for a given seed — which is all the
//! simulated platform needs (reproducible noise streams) — but its
//! stream differs from the real `rand::rngs::StdRng` (ChaCha12). Any
//! test that hard-codes values from the upstream stream would need
//! updating; the workspace has none.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generator interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "cannot sample empty range");
        a + (b - a) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                // Wrapping add is safe: v < span = end - start.
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample empty range");
                let span = b.abs_diff(a) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as $t;
                a.wrapping_add(v)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)` (stand-in for `gen::<f64>()`).
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self)
    }

    /// A random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator — the shim's stand-in for
    /// `rand::rngs::StdRng`. Passes through every 64-bit state exactly
    /// once; plenty for simulation noise, not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// `rand::thread_rng` stand-in: a process-unique, time-seeded
/// generator. Provided for API compatibility; the workspace prefers
/// explicit seeds.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos ^ std::process::id() as u64)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_centred() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
