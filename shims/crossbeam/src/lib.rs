#![warn(missing_docs)]

//! Offline shim for `crossbeam`: the `channel` subset the workspace
//! uses (`unbounded`, `Sender`, `Receiver`), implemented over
//! `std::sync::mpsc`.
//!
//! The real thread communicator (`fupermod-platform`'s `ThreadComm`)
//! only needs cloneable unbounded senders and a blocking per-rank
//! receiver, which `std::sync::mpsc` provides directly; crossbeam's
//! extra capabilities (select, bounded channels, `Receiver: Clone`)
//! are not required and not shimmed.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Sender<T> {
        /// Sends `value`, never blocking.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Errors once the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_clones() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
