#![warn(missing_docs)]

//! Offline shim for `criterion`: just enough API for the workspace's
//! `harness = false` benches to compile and produce useful numbers
//! without the real statistics stack.
//!
//! Each benchmark is warmed up briefly, then timed in batches until a
//! wall-clock budget is exhausted; the mean time per iteration is
//! printed as `name ... <time>/iter (<n> iters)`. There is no outlier
//! analysis, plotting, or saved baselines — run the real criterion on a
//! connected machine for publishable numbers. Environment knobs:
//!
//! * `CRITERION_SHIM_BUDGET_MS` — per-benchmark measurement budget in
//!   milliseconds (default 300).
//! * `CRITERION_SHIM_WARMUP_MS` — warm-up budget (default 50).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn env_ms(key: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Accumulated measured time.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Wall-clock budget for this pass.
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly until the measurement budget is exhausted,
    /// timing every call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Runs `f` with caller-supplied timing, matching criterion's
    /// `iter_custom`: `f` receives an iteration count and returns the
    /// measured duration for that many iterations. Benches use this to
    /// report a quantity that is not host wall-clock — e.g. simulated
    /// virtual seconds — through the ordinary `<time>/iter` output.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            self.elapsed += f(1);
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn format_time(t: f64) -> String {
    if t < 1e-6 {
        format!("{:8.2} ns", t * 1e9)
    } else if t < 1e-3 {
        format!("{:8.2} µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:8.2} ms", t * 1e3)
    } else {
        format!("{t:8.3} s ")
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass (discarded).
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        budget: env_ms("CRITERION_SHIM_WARMUP_MS", 50),
    };
    f(&mut warm);
    // Measured pass.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        budget: env_ms("CRITERION_SHIM_BUDGET_MS", 300),
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("{name:<44} {}/iter ({} iters)", format_time(mean), b.iters);
}

/// Identifier for one parameterised benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`, matching criterion.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the group's throughput (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Benches `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(&format!("{}/{name}", self.name), &mut f);
    }

    /// Benches `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.name), &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benches a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Collects benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis(5),
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters > 0);
        assert_eq!(n, b.iters);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("akima", 32);
        assert_eq!(id.name, "akima/32");
    }
}
