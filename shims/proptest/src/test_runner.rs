//! Deterministic random source for the proptest shim.
//!
//! Each property test gets a seed derived (FNV-1a) from its fully
//! qualified name, XORed with the optional `PROPTEST_SEED` environment
//! variable, so failures reproduce run-to-run without a persistence
//! file while still allowing exploration of different streams.

/// SplitMix64 generator used to produce test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The generator for the named test: FNV-1a of the name, XOR
/// `PROPTEST_SEED` when set.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let env_seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    TestRng::from_seed(hash ^ env_seed)
}
