#![warn(missing_docs)]

//! Offline shim for `proptest`: randomised property testing with the
//! API subset the workspace's `tests/properties.rs` suites use —
//! `proptest!`, range and tuple strategies, `collection::vec`,
//! `prop_map` / `prop_flat_map`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its panic message (and
//!   the deterministic per-test seed) but is not minimised.
//! * **Deterministic seeds.** Each test derives its seed from the test
//!   name, so failures reproduce without a persistence file. Set
//!   `PROPTEST_SEED` to explore different streams and
//!   `PROPTEST_CASES` to override the case count.
//! * **Default cases**: 64 (the real default of 256 is available via
//!   `ProptestConfig::with_cases` or the environment variable).

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::TestRng;

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — try another input.
    Reject(String),
    /// A `prop_assert!`-style check failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection with the given reason.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of random values (subset of `proptest::strategy`;
/// generation only, no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy (compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 strategy range");
        a + (b - a) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = self.end.abs_diff(self.start) as u128;
                let v = (rng.next_u64() as u128 % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer strategy range");
                let span = b.abs_diff(a) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as $t;
                a.wrapping_add(v)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`](fn@vec): a fixed size or a range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound of the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector strategy.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts inside a `proptest!` body; on failure the current case
/// fails with the formatted message (no panic unwinding mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right` (both: `{:?}`)",
            l
        );
    }};
}

/// Vetoes the current case; the runner draws a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest '{}': too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejected
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed after {} passing cases (seed: name-derived, \
                         set PROPTEST_SEED to vary): {}",
                        stringify!($name),
                        passed,
                        msg
                    ),
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0.5f64..2.5, n in 3u64..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in v {
                prop_assert!(e < 10);
            }
        }

        #[test]
        fn map_and_flat_map_compose(
            (len, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), collection::vec(0.0f64..1.0, n))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn configured_case_count_applies(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("always_fails"), "message: {msg}");
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("some::test");
        let mut b = crate::test_runner::rng_for("some::test");
        let mut c = crate::test_runner::rng_for("other::test");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
