//! Parallel construction of device performance models — the
//! measurement engine behind `build_device_models`.
//!
//! The paper's central premise is that building the *full* functional
//! performance model is the expensive step ("the time of building the
//! full model is prohibitive"). On a dedicated heterogeneous platform
//! the devices are independent pieces of hardware, so their models can
//! be built **concurrently**: while the CPU model benchmarks size
//! `d_3`, the GPU model can already be at `d_7`. [`ModelBuilder`] runs
//! one build job per device on a pool of scoped worker threads and
//! guarantees that the outcome — models *and* trace-event stream — is
//! **bit-identical** to the serial build:
//!
//! * each device's kernel owns a deterministic measurement stream, so
//!   its samples do not depend on when the other devices run;
//! * each worker records its trace events into a private per-rank
//!   buffer; after all workers finish, the buffers are replayed into
//!   the caller's sink in rank order, reproducing the serial event
//!   sequence exactly;
//! * on error, events are forwarded for every rank up to and including
//!   the failing one, later ranks' events are dropped, and the error is
//!   returned — again exactly what the serial loop would have done.
//!
//! The only observable difference is the process-wide
//! [`metrics`](crate::trace::metrics) counters, which may include work
//! from ranks that a serial build would never have reached after an
//! error; they are diagnostic totals, not part of the trace schema.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::benchmark::Benchmark;
use crate::kernel::Kernel;
use crate::model::Model;
use crate::trace::{null_sink, MemorySink, TraceEvent, TraceSink};
use crate::{CoreError, Precision};

/// Per-rank result slot for the parallel build: filled exactly once by
/// the worker that claims the rank.
type ResultSlot<M> = Mutex<Option<Result<BuiltModel<M>, CoreError>>>;

/// A model built for one device, together with the (virtual)
/// benchmarking cost that went into it.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltModel<M> {
    /// The constructed model.
    pub model: M,
    /// Total benchmarking cost in seconds: `time × repetitions` summed
    /// over all measured sizes — the model-construction cost metric
    /// the paper's experiments compare.
    pub cost: f64,
}

/// Measurement engine that builds one model per device kernel,
/// serially or across scoped worker threads.
///
/// # Examples
///
/// ```
/// use fupermod_core::builder::ModelBuilder;
/// use fupermod_core::kernel::{DeviceKernel, Kernel};
/// use fupermod_core::model::{AkimaModel, Model};
/// use fupermod_core::Precision;
/// use fupermod_platform::{cluster, WorkloadProfile};
///
/// # fn main() -> Result<(), fupermod_core::CoreError> {
/// let profile = WorkloadProfile::matrix_update(16);
/// let kernels: Vec<Box<dyn Kernel + Send>> = vec![
///     Box::new(DeviceKernel::new(cluster::fast_cpu("fast", 1), profile.clone())),
///     Box::new(DeviceKernel::new(cluster::slow_cpu("slow", 2), profile.clone())),
/// ];
/// let precision = Precision::quick();
/// let built = ModelBuilder::new(&precision)
///     .with_parallelism(0) // 0 = one worker per available core
///     .build::<AkimaModel>(kernels, &[50, 200, 800])?;
/// assert_eq!(built.len(), 2);
/// assert_eq!(built[0].model.points().len(), 3);
/// # Ok(())
/// # }
/// ```
pub struct ModelBuilder<'a> {
    precision: &'a Precision,
    parallelism: usize,
    trace: &'a dyn TraceSink,
}

impl std::fmt::Debug for ModelBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelBuilder")
            .field("precision", &self.precision)
            .field("parallelism", &self.parallelism)
            .finish_non_exhaustive()
    }
}

impl<'a> ModelBuilder<'a> {
    /// Creates a serial builder (`parallelism = 1`).
    ///
    /// # Panics
    ///
    /// Panics if the precision parameters are invalid
    /// (see [`Precision::validate`]).
    pub fn new(precision: &'a Precision) -> Self {
        precision.validate();
        Self {
            precision,
            parallelism: 1,
            trace: null_sink(),
        }
    }

    /// Sets the worker-thread count: `1` builds serially on the calling
    /// thread, `n > 1` uses up to `n` scoped workers, and `0` means
    /// *auto* — one worker per available core
    /// ([`std::thread::available_parallelism`]).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Routes benchmark and model-update events to `sink`. The default
    /// is the no-op null sink.
    #[must_use]
    pub fn with_trace(mut self, sink: &'a dyn TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The effective worker count for `n_jobs` jobs.
    pub fn effective_workers(&self, n_jobs: usize) -> usize {
        let cap = if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.parallelism
        };
        cap.min(n_jobs).max(1)
    }

    /// Builds one model per kernel, benchmarking each kernel at every
    /// size in `sizes` (in order). Results are returned in input order
    /// and are bit-identical regardless of the worker count, provided
    /// the kernels measure independently (true for any dedicated
    /// platform, and for [`DeviceKernel`](crate::kernel::DeviceKernel)'s
    /// deterministic per-device noise streams).
    ///
    /// # Errors
    ///
    /// Returns the first error in rank order; trace events for ranks
    /// after the failing one are suppressed (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn build<M: Model + Default + Send>(
        &self,
        kernels: Vec<Box<dyn Kernel + Send>>,
        sizes: &[u64],
    ) -> Result<Vec<BuiltModel<M>>, CoreError> {
        assert!(!kernels.is_empty(), "need at least one kernel");
        let n = kernels.len();
        let workers = self.effective_workers(n);

        if workers <= 1 {
            // Serial: record straight into the caller's sink.
            let mut out = Vec::with_capacity(n);
            for (rank, mut kernel) in kernels.into_iter().enumerate() {
                let mut model = M::default();
                let cost = build_one_model(
                    rank,
                    kernel.as_mut(),
                    sizes,
                    self.precision,
                    &mut model,
                    self.trace,
                )?;
                out.push(BuiltModel { model, cost });
            }
            return Ok(out);
        }

        // Parallel: one job slot per rank, claimed by workers through a
        // shared counter; per-rank trace buffers keep the event stream
        // reproducible.
        let jobs: Vec<Mutex<Option<Box<dyn Kernel + Send>>>> =
            kernels.into_iter().map(|k| Mutex::new(Some(k))).collect();
        let results: Vec<ResultSlot<M>> = (0..n).map(|_| Mutex::new(None)).collect();
        let buffers: Vec<MemorySink> = (0..n).map(|_| MemorySink::new()).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let rank = next.fetch_add(1, Ordering::Relaxed);
                    if rank >= n {
                        break;
                    }
                    let mut kernel = jobs[rank]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let mut model = M::default();
                    let outcome = build_one_model(
                        rank,
                        kernel.as_mut(),
                        sizes,
                        self.precision,
                        &mut model,
                        &buffers[rank],
                    )
                    .map(|cost| BuiltModel { model, cost });
                    *results[rank].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        // Replay buffered events in rank order so the caller's sink
        // sees exactly the serial sequence; stop (dropping later
        // ranks' events) at the first error, as the serial loop would.
        let mut out = Vec::with_capacity(n);
        for (rank, result) in results.into_iter().enumerate() {
            for event in buffers[rank].take() {
                self.trace.record(&event);
            }
            let outcome = result
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a job");
            out.push(outcome?);
        }
        Ok(out)
    }
}

/// Builds one device model: benchmarks `kernel` at every size, feeds
/// the points into `model`, and emits one
/// [`TraceEvent::ModelUpdate`] (tagged with `rank`) per point after the
/// benchmark's own sample/summary events. Returns the total (virtual)
/// benchmarking cost in seconds — `time × repetitions` summed over all
/// measurements.
///
/// This is the single shared implementation behind
/// `build_device_models`, the experiment harness's per-device builder,
/// and the `fupermod_builder` binary.
///
/// # Errors
///
/// Propagates benchmark and model errors.
pub fn build_one_model(
    rank: usize,
    kernel: &mut dyn Kernel,
    sizes: &[u64],
    precision: &Precision,
    model: &mut dyn Model,
    sink: &dyn TraceSink,
) -> Result<f64, CoreError> {
    let bench = Benchmark::new(precision).with_trace(sink);
    let mut cost = 0.0;
    for &d in sizes {
        let point = bench.measure(kernel, d)?;
        cost += point.t * f64::from(point.reps);
        model.update(point)?;
        sink.record(&TraceEvent::ModelUpdate {
            rank,
            d: point.d,
            t: point.t,
            reps: point.reps,
            points: model.points().len(),
        });
    }
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::DeviceKernel;
    use crate::model::AkimaModel;
    use crate::trace::MemorySink;
    use fupermod_platform::{Platform, WorkloadProfile};

    fn kernels_for(platform: &Platform) -> Vec<Box<dyn Kernel + Send>> {
        let profile = WorkloadProfile::matrix_update(16);
        platform
            .devices()
            .iter()
            .map(|dev| {
                Box::new(DeviceKernel::new(dev.clone(), profile.clone()))
                    as Box<dyn Kernel + Send>
            })
            .collect()
    }

    const SIZES: [u64; 4] = [32, 128, 512, 2048];

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let platform = Platform::two_speed(2, 2, 77);
        let precision = Precision::quick();

        let serial_sink = MemorySink::new();
        let serial: Vec<BuiltModel<AkimaModel>> = ModelBuilder::new(&precision)
            .with_trace(&serial_sink)
            .build(kernels_for(&platform), &SIZES)
            .unwrap();

        for workers in [2, 3, 8, 0] {
            let par_sink = MemorySink::new();
            let parallel: Vec<BuiltModel<AkimaModel>> = ModelBuilder::new(&precision)
                .with_parallelism(workers)
                .with_trace(&par_sink)
                .build(kernels_for(&platform), &SIZES)
                .unwrap();
            // Models, costs and the *entire* trace stream must match
            // the serial build exactly — not approximately.
            assert_eq!(serial, parallel, "workers={workers}");
            assert_eq!(
                serial_sink.events(),
                par_sink.events(),
                "trace diverged at workers={workers}"
            );
        }
    }

    #[test]
    fn build_returns_models_in_input_order() {
        let platform = Platform::two_speed(2, 2, 78);
        let precision = Precision::quick();
        let built: Vec<BuiltModel<AkimaModel>> = ModelBuilder::new(&precision)
            .with_parallelism(4)
            .build(kernels_for(&platform), &[64, 256])
            .unwrap();
        assert_eq!(built.len(), platform.size());
        // The two fast devices are identical hardware but distinct
        // noise streams; every model holds every size in order.
        for b in &built {
            let ds: Vec<u64> = b.model.points().iter().map(|p| p.d).collect();
            assert_eq!(ds, vec![64, 256]);
            assert!(b.cost > 0.0);
        }
    }

    /// Kernel whose context fails on the first run — for error-path
    /// parity between serial and parallel builds.
    struct FailingKernel;
    impl Kernel for FailingKernel {
        fn complexity(&self, d: u64) -> f64 {
            d as f64
        }
        fn context(
            &mut self,
            _d: u64,
        ) -> Result<Box<dyn crate::kernel::KernelContext>, CoreError> {
            Err(CoreError::Kernel("device lost".to_owned()))
        }
    }

    #[test]
    fn error_surfaces_in_rank_order_and_drops_later_events() {
        let platform = Platform::two_speed(1, 2, 79);
        let precision = Precision::quick();

        let make_jobs = || -> Vec<Box<dyn Kernel + Send>> {
            let mut jobs = kernels_for(&platform);
            jobs[1] = Box::new(FailingKernel);
            jobs
        };

        let serial_sink = MemorySink::new();
        let serial_err = ModelBuilder::new(&precision)
            .with_trace(&serial_sink)
            .build::<AkimaModel>(make_jobs(), &SIZES)
            .unwrap_err();

        let par_sink = MemorySink::new();
        let par_err = ModelBuilder::new(&precision)
            .with_parallelism(3)
            .with_trace(&par_sink)
            .build::<AkimaModel>(make_jobs(), &SIZES)
            .unwrap_err();

        assert_eq!(format!("{serial_err}"), format!("{par_err}"));
        // Rank 2 may have *run* in the parallel build, but its events
        // must not leak past the rank-1 failure.
        assert_eq!(serial_sink.events(), par_sink.events());
    }

    #[test]
    fn effective_workers_clamps_sensibly() {
        let p = Precision::quick();
        let b = ModelBuilder::new(&p);
        assert_eq!(b.effective_workers(8), 1); // serial default
        assert_eq!(b.with_parallelism(4).effective_workers(2), 2);
        let b = ModelBuilder::new(&p).with_parallelism(0);
        assert!(b.effective_workers(16) >= 1); // auto never zero
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_job_list_is_rejected() {
        let p = Precision::quick();
        let _ = ModelBuilder::new(&p).build::<AkimaModel>(Vec::new(), &SIZES);
    }
}
