//! Statistical parameters of a measurement (the paper's
//! `fupermod_precision`).

use serde::{Deserialize, Serialize};

/// Controls how many times a kernel is repeated and when the
/// measurement is considered statistically reliable.
///
/// The benchmark repeats the kernel at least `reps_min` times and stops
/// as soon as the Student-t confidence interval of the mean, at
/// confidence level `cl`, has a relative half-width below `rel_err` —
/// or when `reps_max` repetitions or `max_seconds` of wall time have
/// been spent, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Precision {
    /// Minimum repetitions before the stopping rule is consulted.
    pub reps_min: u32,
    /// Hard cap on repetitions.
    pub reps_max: u32,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub cl: f64,
    /// Target relative half-width of the confidence interval.
    pub rel_err: f64,
    /// Wall-time budget for one measurement, in seconds.
    pub max_seconds: f64,
}

impl Precision {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `reps_min` is zero, `reps_min > reps_max`, `cl` is not
    /// in `(0, 1)`, or `rel_err`/`max_seconds` are not positive.
    pub fn validate(&self) {
        assert!(self.reps_min >= 1, "reps_min must be at least 1");
        assert!(
            self.reps_min <= self.reps_max,
            "reps_min ({}) exceeds reps_max ({})",
            self.reps_min,
            self.reps_max
        );
        assert!(
            self.cl > 0.0 && self.cl < 1.0,
            "confidence level must be in (0,1)"
        );
        assert!(self.rel_err > 0.0, "rel_err must be positive");
        assert!(self.max_seconds > 0.0, "max_seconds must be positive");
    }

    /// A quick, loose setting for dynamic algorithms that compensate
    /// for noisy points by averaging over iterations.
    pub fn quick() -> Self {
        Self {
            reps_min: 2,
            reps_max: 5,
            cl: 0.9,
            rel_err: 0.1,
            max_seconds: 5.0,
        }
    }

    /// An exhaustive setting for building full models offline.
    pub fn thorough() -> Self {
        Self {
            reps_min: 5,
            reps_max: 100,
            cl: 0.95,
            rel_err: 0.01,
            max_seconds: 60.0,
        }
    }
}

impl Default for Precision {
    fn default() -> Self {
        Self {
            reps_min: 3,
            reps_max: 30,
            cl: 0.95,
            rel_err: 0.025,
            max_seconds: 30.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        Precision::default().validate();
        Precision::quick().validate();
        Precision::thorough().validate();
    }

    #[test]
    #[should_panic(expected = "reps_min")]
    fn rejects_inverted_rep_bounds() {
        Precision {
            reps_min: 10,
            reps_max: 5,
            ..Precision::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn rejects_bad_confidence() {
        Precision {
            cl: 1.5,
            ..Precision::default()
        }
        .validate();
    }
}
