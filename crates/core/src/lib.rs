#![warn(missing_docs)]

//! FuPerMod core: computation performance models and model-based data
//! partitioning for heterogeneous platforms.
//!
//! This crate reproduces the programming interface of the FuPerMod
//! framework (Clarke, Zhong, Rychkov, Lastovetsky — PaCT 2013): given a
//! data-parallel application with a divisible workload measured in
//! *computation units*, it
//!
//! 1. **measures** the performance of each process's computation kernel
//!    with statistically controlled repetitions ([`benchmark`],
//!    mirroring `fupermod_benchmark`),
//! 2. **models** each process's speed as a function of problem size
//!    ([`model`], mirroring `fupermod_model`: constant model,
//!    piecewise-linear FPM with the Lastovetsky–Reddy shape
//!    restrictions, Akima-spline FPM), and
//! 3. **partitions** the total workload so every process finishes at the
//!    same time ([`partition`], mirroring `fupermod_partition`:
//!    proportional, geometrical and numerical algorithms), either
//!    statically from full models or dynamically from partial estimates
//!    refined at run time ([`dynamic`]).
//!
//! The 2D matrix-partitioning algorithm of Beaumont et al., which the
//! paper's matrix-multiplication use case builds on, lives in
//! [`matrix2d`].
//!
//! Every stage can emit structured observability events through the
//! [`trace`] module: benchmark samples and summaries, model updates and
//! dynamic repartitioning steps, recorded as JSONL or CSV with a
//! versioned schema (see `docs/OBSERVABILITY.md` in the repository).
//! The [`telemetry`] module adds the *live* side of the same story: a
//! lock-free registry of labelled counters, gauges and latency
//! histograms, snapshotable at any time and renderable as Prometheus
//! text exposition (the `/metrics` endpoint of `fupermod_served`).
//!
//! # Quick start
//!
//! ```
//! use fupermod_core::benchmark::Benchmark;
//! use fupermod_core::kernel::DeviceKernel;
//! use fupermod_core::model::{AkimaModel, Model};
//! use fupermod_core::partition::{NumericalPartitioner, Partitioner};
//! use fupermod_core::precision::Precision;
//! use fupermod_platform::{cluster, WorkloadProfile};
//!
//! # fn main() -> Result<(), fupermod_core::CoreError> {
//! // Two devices of a simulated heterogeneous platform.
//! let profile = WorkloadProfile::matrix_update(16);
//! let devices = [
//!     cluster::fast_cpu("fast", 1),
//!     cluster::slow_cpu("slow", 2),
//! ];
//!
//! // Benchmark each device's kernel at a few sizes and build models.
//! let precision = Precision::default();
//! let mut models: Vec<AkimaModel> = Vec::new();
//! for dev in &devices {
//!     let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
//!     let mut model = AkimaModel::new();
//!     for d in [50u64, 200, 800, 2000] {
//!         let point = Benchmark::new(&precision).measure(&mut kernel, d)?;
//!         model.update(point)?;
//!     }
//!     models.push(model);
//! }
//!
//! // Partition 4000 units optimally between the two devices.
//! let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
//! let dist = NumericalPartitioner::default().partition(4000, &refs)?;
//! assert_eq!(dist.total_assigned(), 4000);
//! // The fast device gets the larger share.
//! assert!(dist.parts()[0].d > dist.parts()[1].d);
//! # Ok(())
//! # }
//! ```

pub mod benchmark;
pub mod builder;
pub mod dynamic;
pub mod hierarchy;
pub mod kernel;
pub mod matrix2d;
pub mod model;
pub mod partition;
pub mod point;
pub mod precision;
pub mod telemetry;
pub mod trace;

mod error;

pub use error::CoreError;
pub use point::Point;
pub use precision::Precision;
