//! Dynamic data partitioning and load balancing (the paper's
//! `fupermod_dynamic`, `fupermod_partition_iterate` and
//! `fupermod_balance_iterate`).
//!
//! Building a *full* functional performance model is expensive; the
//! dynamic algorithms instead build **partial estimates**: the models
//! only contain points at the sizes that turned out to be relevant,
//! refined iteratively while the distribution converges (\[11\] for
//! dynamic partitioning via kernel benchmarks, \[6\] for load balancing
//! via the application's own iteration times — Fig. 3 and Fig. 4 of the
//! paper).
//!
//! Both algorithms share one engine, [`DynamicContext`]:
//!
//! 1. observe the execution time of every process at its current size,
//! 2. feed the observations into the partial models,
//! 3. re-partition with the configured algorithm,
//! 4. declare convergence when the observed times are balanced within
//!    `eps` (or the distribution stops moving).

use std::sync::Arc;

use crate::model::Model;
use crate::partition::{Distribution, Part, Partitioner};
use crate::trace::{metrics, NullSink, TraceEvent, TraceSink};
use crate::{CoreError, Point};

/// Outcome of one dynamic step.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicStep {
    /// The observations absorbed this step (one per process).
    pub observed: Vec<Point>,
    /// Relative imbalance `(t_max - t_min)/t_max` of the observations.
    pub imbalance: f64,
    /// Whether the loop may stop: balanced within `eps`, or the
    /// distribution did not change.
    pub converged: bool,
    /// Units that changed owner relative to the previous distribution.
    pub units_moved: u64,
}

/// Execution context for dynamic partitioning / load balancing.
pub struct DynamicContext {
    partitioner: Box<dyn Partitioner>,
    models: Vec<Box<dyn Model>>,
    dist: Distribution,
    eps: f64,
    trace: Arc<dyn TraceSink>,
    iter: u64,
    /// Which processes still participate. Deactivated (dead) ranks are
    /// excluded from partitioning and pinned to zero units — the
    /// graceful-degradation hook used by the distributed executor.
    active: Vec<bool>,
}

impl std::fmt::Debug for DynamicContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicContext")
            .field("size", &self.models.len())
            .field("dist", &self.dist)
            .field("eps", &self.eps)
            .field("iter", &self.iter)
            .finish_non_exhaustive()
    }
}

impl DynamicContext {
    /// Creates a context over `total` computation units with empty
    /// partial models and an even initial distribution.
    ///
    /// `eps` is the balance tolerance: the loop is converged when the
    /// relative imbalance of observed times drops below it.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty or `eps` is not positive.
    pub fn new(
        partitioner: Box<dyn Partitioner>,
        models: Vec<Box<dyn Model>>,
        total: u64,
        eps: f64,
    ) -> Self {
        assert!(!models.is_empty(), "need at least one process");
        assert!(eps > 0.0, "eps must be positive");
        let dist = Distribution::even(total, models.len());
        let active = vec![true; models.len()];
        Self {
            partitioner,
            models,
            dist,
            eps,
            trace: Arc::new(NullSink),
            iter: 0,
            active,
        }
    }

    /// Routes structured events ([`TraceEvent::ModelUpdate`],
    /// [`TraceEvent::PartitionStep`], [`TraceEvent::DynamicConverged`])
    /// to `sink`. The default is the no-op [`NullSink`].
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Dynamic-loop iterations absorbed so far.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    /// The current distribution.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// The partial models built so far.
    pub fn models(&self) -> &[Box<dyn Model>] {
        &self.models
    }

    /// Balance tolerance.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Which processes still participate (`active()[rank]`), see
    /// [`DynamicContext::deactivate`].
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Permanently removes a process from the computation — the
    /// graceful-degradation path for a dead rank. From the next
    /// absorb onwards the partitioner only sees the surviving models
    /// and the dead rank is pinned to zero units, so its load is
    /// repartitioned across survivors.
    ///
    /// Deactivating an already-inactive rank is a no-op; out-of-range
    /// ranks are ignored.
    pub fn deactivate(&mut self, rank: usize) {
        if let Some(slot) = self.active.get_mut(rank) {
            *slot = false;
        }
    }

    /// One step of **dynamic data partitioning** \[11\]: benchmark the
    /// kernel of every process at its current size (via `measure`),
    /// refine the partial models, and re-partition.
    ///
    /// `measure(rank, d)` must return the measured point for process
    /// `rank` at size `d`; zero-size shares are probed at one unit so
    /// an idle process still gains a model point.
    ///
    /// # Errors
    ///
    /// Propagates measurement, model and partitioning errors.
    pub fn partition_iterate(
        &mut self,
        mut measure: impl FnMut(usize, u64) -> Result<Point, CoreError>,
    ) -> Result<DynamicStep, CoreError> {
        let sizes = self.dist.sizes();
        let mut observed = Vec::with_capacity(sizes.len());
        for (rank, &d) in sizes.iter().enumerate() {
            if self.active[rank] {
                observed.push(measure(rank, d.max(1))?);
            } else {
                // Dead ranks are not probed; the placeholder is
                // skipped by `absorb` (d == 0 carries no information).
                observed.push(Point::single(0, 0.0));
            }
        }
        self.absorb(observed)
    }

    /// One step of **dynamic load balancing** \[6\]: the application has
    /// just executed one iteration with the current distribution;
    /// `times[i]` is process `i`'s measured compute time. Refines the
    /// models and re-partitions — the paper's `fupermod_balance_iterate`.
    ///
    /// Processes that held zero units this iteration contribute no
    /// model point (a zero-work observation carries no speed
    /// information) and are excluded from the imbalance metric.
    ///
    /// # Errors
    ///
    /// Propagates model and partitioning errors.
    ///
    /// # Panics
    ///
    /// Panics if `times.len()` differs from the process count.
    pub fn balance_iterate(&mut self, times: &[f64]) -> Result<DynamicStep, CoreError> {
        assert_eq!(times.len(), self.models.len(), "one time per process");
        let observed: Vec<Point> = self
            .dist
            .sizes()
            .iter()
            .zip(times)
            .map(|(&d, &t)| {
                if d == 0 {
                    Point::single(0, 0.0)
                } else {
                    Point::single(d, t.max(f64::MIN_POSITIVE))
                }
            })
            .collect();
        self.absorb(observed)
    }

    /// Absorbs one already-measured observation per process and
    /// re-partitions — the distributed executor's entry point, where
    /// each rank measured its own share and the points were gathered
    /// to the root. Identical semantics to one
    /// [`DynamicContext::partition_iterate`] step given the same
    /// observations.
    ///
    /// # Errors
    ///
    /// Propagates model and partitioning errors.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len()` differs from the process count.
    pub fn absorb_observed(&mut self, observed: Vec<Point>) -> Result<DynamicStep, CoreError> {
        assert_eq!(
            observed.len(),
            self.models.len(),
            "one observation per process"
        );
        self.absorb(observed)
    }

    fn absorb(&mut self, observed: Vec<Point>) -> Result<DynamicStep, CoreError> {
        self.iter += 1;
        for (rank, (model, point)) in self.models.iter_mut().zip(&observed).enumerate() {
            // A zero-work observation carries no speed information:
            // `balance_iterate` reports idle ranks as `(0, 0.0)`
            // placeholders. Feeding those into the model would trigger
            // a wasted refresh, emit a spurious ModelUpdate event, and
            // pollute any `Model` implementation that does not itself
            // discard zero-size points.
            if point.d == 0 {
                continue;
            }
            model.update(*point)?;
            self.trace.record(&TraceEvent::ModelUpdate {
                rank,
                d: point.d,
                t: point.t,
                reps: point.reps,
                points: model.points().len(),
            });
        }
        let new_dist = if self.active.iter().all(|&a| a) {
            let refs: Vec<&dyn Model> = self.models.iter().map(|m| m.as_ref()).collect();
            self.partitioner.partition(self.dist.total(), &refs)?
        } else {
            // Graceful degradation: partition over the surviving
            // models only, then expand back to full size with dead
            // ranks pinned to zero units.
            let refs: Vec<&dyn Model> = self
                .models
                .iter()
                .zip(&self.active)
                .filter(|(_, &a)| a)
                .map(|(m, _)| m.as_ref())
                .collect();
            if refs.is_empty() {
                return Err(CoreError::Partition(
                    "no active processes remain".to_owned(),
                ));
            }
            let sub = self.partitioner.partition(self.dist.total(), &refs)?;
            let mut survivors = sub.parts().iter();
            let parts: Vec<Part> = self
                .active
                .iter()
                .map(|&a| {
                    if a {
                        *survivors
                            .next()
                            .expect("partitioner returned one part per model")
                    } else {
                        Part { d: 0, t: 0.0 }
                    }
                })
                .collect();
            Distribution::from_parts(self.dist.total(), parts)
        };

        // Idle (zero-unit) processes don't count towards imbalance.
        let times: Vec<f64> = observed
            .iter()
            .filter(|p| p.d > 0)
            .map(|p| p.t)
            .collect();
        // With fewer than two active processes there is nothing to
        // balance against: a lone process (or an all-idle round) is
        // balanced by definition. `imbalance_of` additionally guards
        // `t_max <= 0`, so degenerate zero-time observations can never
        // produce a NaN/negative imbalance.
        let imbalance = if times.len() < 2 {
            0.0
        } else {
            Distribution::imbalance_of(&times)
        };
        let units_moved: u64 = new_dist
            .sizes()
            .iter()
            .zip(self.dist.sizes())
            .map(|(&n, o)| n.abs_diff(o))
            .sum::<u64>()
            / 2;
        let converged = imbalance <= self.eps || units_moved == 0;
        metrics().add_units_moved(units_moved);
        self.trace.record(&TraceEvent::PartitionStep {
            iter: self.iter,
            dist: new_dist.sizes(),
            imbalance,
            units_moved,
        });
        if converged {
            self.trace.record(&TraceEvent::DynamicConverged {
                steps: self.iter,
                imbalance,
            });
        }
        self.dist = new_dist;
        Ok(DynamicStep {
            observed,
            imbalance,
            converged,
            units_moved,
        })
    }

    /// Runs [`DynamicContext::partition_iterate`] until convergence or
    /// `max_steps`, returning all steps. Convenience driver for the
    /// experiments.
    ///
    /// # Errors
    ///
    /// Propagates the first failing step.
    pub fn run_to_balance(
        &mut self,
        mut measure: impl FnMut(usize, u64) -> Result<Point, CoreError>,
        max_steps: usize,
    ) -> Result<Vec<DynamicStep>, CoreError> {
        let mut steps = Vec::new();
        for _ in 0..max_steps {
            let step = self.partition_iterate(&mut measure)?;
            let done = step.converged;
            steps.push(step);
            if done {
                break;
            }
        }
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PiecewiseModel;
    use crate::partition::GeometricPartitioner;

    /// A two-speed synthetic platform: process 0 runs at `s0` units/s,
    /// process 1 at `s1`.
    fn measure_two(s0: f64, s1: f64) -> impl FnMut(usize, u64) -> Result<Point, CoreError> {
        move |rank, d| {
            let s = if rank == 0 { s0 } else { s1 };
            Ok(Point::single(d, d as f64 / s))
        }
    }

    fn context(total: u64, eps: f64, size: usize) -> DynamicContext {
        let models: Vec<Box<dyn Model>> = (0..size)
            .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
            .collect();
        DynamicContext::new(Box::new(GeometricPartitioner::default()), models, total, eps)
    }

    #[test]
    fn starts_even() {
        let ctx = context(100, 0.05, 4);
        assert_eq!(ctx.dist().sizes(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn converges_in_few_steps_on_constant_speeds() {
        let mut ctx = context(1000, 0.05, 2);
        let steps = ctx.run_to_balance(measure_two(100.0, 25.0), 20).unwrap();
        assert!(steps.len() <= 3, "took {} steps", steps.len());
        assert!(steps.last().unwrap().converged);
        // Optimal split for 4:1 speeds.
        assert_eq!(ctx.dist().sizes(), vec![800, 200]);
    }

    #[test]
    fn first_step_reports_initial_imbalance() {
        let mut ctx = context(1000, 0.01, 2);
        let step = ctx.partition_iterate(measure_two(100.0, 25.0)).unwrap();
        // Even split on a 4:1 platform: times 5 s vs 20 s → imbalance 0.75.
        assert!((step.imbalance - 0.75).abs() < 1e-9);
        assert!(!step.converged);
        assert!(step.units_moved > 0);
    }

    #[test]
    fn balanced_platform_converges_immediately() {
        let mut ctx = context(1000, 0.05, 2);
        let steps = ctx.run_to_balance(measure_two(50.0, 50.0), 20).unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(ctx.dist().sizes(), vec![500, 500]);
    }

    #[test]
    fn balance_iterate_uses_application_times() {
        let mut ctx = context(900, 0.05, 2);
        // The application observed 3:1 times on the even split: process
        // 0 is three times slower.
        let step = ctx.balance_iterate(&[3.0, 1.0]).unwrap();
        assert!(!step.converged);
        let sizes = ctx.dist().sizes();
        assert!(sizes[0] < sizes[1], "slower process must get less");
        // Next iteration with proportional times converges.
        let t0 = sizes[0] as f64 / 150.0;
        let t1 = sizes[1] as f64 / 450.0;
        let step = ctx.balance_iterate(&[t0, t1]).unwrap();
        assert!(step.imbalance < 0.1, "imbalance {}", step.imbalance);
    }

    #[test]
    fn nonlinear_speeds_still_converge() {
        // Process 0 slows down past 600 units (cliff), process 1 steady.
        let mut ctx = context(1500, 0.05, 2);
        let measure = |rank: usize, d: u64| -> Result<Point, CoreError> {
            let t = match rank {
                0 => {
                    let x = d as f64;
                    if x <= 600.0 {
                        x / 100.0
                    } else {
                        6.0 + (x - 600.0) / 10.0
                    }
                }
                _ => d as f64 / 50.0,
            };
            Ok(Point::single(d, t))
        };
        let mut ctx_steps = 0;
        for _ in 0..30 {
            let step = ctx.partition_iterate(measure).unwrap();
            ctx_steps += 1;
            if step.converged {
                break;
            }
        }
        // Converged to a split near the analytic optimum (exactly 700:
        // 6 + (x-600)/10 = (1500-x)/50 → x = 700).
        let sizes = ctx.dist().sizes();
        assert!(
            (600..=730).contains(&sizes[0]),
            "process 0 got {} after {ctx_steps} steps",
            sizes[0]
        );
    }

    #[test]
    fn units_moved_counts_churn() {
        let mut ctx = context(100, 1e-6, 2);
        let step = ctx.partition_iterate(measure_two(300.0, 100.0)).unwrap();
        // 50/50 → 75/25 moves 25 units.
        assert_eq!(step.units_moved, 25);
    }

    #[test]
    fn processes_driven_to_zero_units_do_not_poison_models() {
        // A tiny workload over many processes with a huge speed spread:
        // the slow ones end up with zero units and report zero time.
        // Regression test: such observations must not enter the models
        // (a (1, ~0) point means infinite speed and breaks the
        // geometric bisection).
        let mut ctx = context(16, 0.02, 8);
        // Process 0 is 1000x faster than the rest.
        let speeds: Vec<f64> = (0..8).map(|r| if r == 0 { 1000.0 } else { 1.0 }).collect();
        for _ in 0..10 {
            let times: Vec<f64> = ctx
                .dist()
                .sizes()
                .iter()
                .zip(&speeds)
                .map(|(&d, s)| d as f64 / s)
                .collect();
            let step = ctx.balance_iterate(&times).unwrap();
            if step.converged {
                break;
            }
        }
        // The fast process holds nearly everything; total conserved.
        assert_eq!(ctx.dist().total_assigned(), 16);
        assert!(ctx.dist().sizes()[0] >= 9, "sizes {:?}", ctx.dist().sizes());
    }

    #[test]
    fn zero_work_observations_are_not_absorbed() {
        use crate::trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        // Regression: `balance_iterate` reports idle ranks as
        // `(0, 0.0)` placeholder points. `absorb` used to feed those
        // into `model.update` anyway — a wasted refresh and a spurious
        // ModelUpdate trace event per idle rank per step, and outright
        // model pollution for `Model` impls that accept d == 0.
        let sink = Arc::new(MemorySink::new());
        let models: Vec<Box<dyn Model>> = (0..2)
            .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
            .collect();
        let mut ctx = DynamicContext::new(
            Box::new(GeometricPartitioner::default()),
            models,
            10,
            0.05,
        )
        .with_trace(sink.clone());

        // Drive everything onto process 0, then keep iterating with an
        // idle process 1.
        ctx.balance_iterate(&[0.0001, 1.0]).unwrap();
        for _ in 0..10 {
            if ctx.dist().sizes()[1] == 0 {
                break;
            }
            let times: Vec<f64> = ctx
                .dist()
                .sizes()
                .iter()
                .map(|&d| d as f64 * if d > 5 { 0.0001 } else { 1.0 })
                .collect();
            ctx.balance_iterate(&times).unwrap();
        }
        assert_eq!(ctx.dist().sizes(), vec![10, 0], "setup failed");
        sink.take(); // discard setup events

        let points_before = ctx.models()[1].points().len();
        ctx.balance_iterate(&[0.001, 0.0]).unwrap();

        // The idle rank gained no model point and produced no
        // ModelUpdate event; the active rank still traced one.
        assert_eq!(ctx.models()[1].points().len(), points_before);
        let update_ranks: Vec<usize> = sink
            .take()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ModelUpdate { rank, d, .. } => {
                    assert!(*d > 0, "zero-size update traced for rank {rank}");
                    Some(*rank)
                }
                _ => None,
            })
            .collect();
        assert_eq!(update_ranks, vec![0]);
    }

    #[test]
    fn deactivated_rank_is_rebalanced_away() {
        let mut ctx = context(1000, 0.05, 3);
        let measure = |rank: usize, d: u64| -> Result<Point, CoreError> {
            let s = [100.0, 100.0, 50.0][rank];
            Ok(Point::single(d, d as f64 / s))
        };
        ctx.run_to_balance(measure, 20).unwrap();
        assert!(ctx.dist().sizes().iter().all(|&d| d > 0));
        assert_eq!(ctx.active(), &[true, true, true]);

        // Rank 1 dies: its share must flow to the survivors.
        ctx.deactivate(1);
        ctx.deactivate(1); // idempotent
        ctx.deactivate(99); // out of range: ignored
        assert_eq!(ctx.active(), &[true, false, true]);
        let step = ctx.partition_iterate(measure).unwrap();
        let sizes = ctx.dist().sizes();
        assert_eq!(sizes[1], 0, "dead rank keeps units: {sizes:?}");
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert!(sizes[0] > sizes[2], "2:1 speeds among survivors");
        // The dead rank contributed a skip-placeholder observation.
        assert_eq!(step.observed[1].d, 0);
    }

    #[test]
    fn all_ranks_dead_is_an_error() {
        let mut ctx = context(100, 0.05, 2);
        ctx.deactivate(0);
        ctx.deactivate(1);
        let err = ctx
            .partition_iterate(|_, d| Ok(Point::single(d, 1.0)))
            .unwrap_err();
        assert!(matches!(err, CoreError::Partition(_)));
    }

    #[test]
    fn absorb_observed_matches_partition_iterate() {
        // The distributed executor's entry point must replay the exact
        // serial semantics: same observations in, same distribution out.
        let mut serial = context(1000, 0.05, 2);
        let mut distributed = context(1000, 0.05, 2);
        let mut measure = measure_two(100.0, 25.0);
        for _ in 0..5 {
            let sizes = distributed.dist().sizes();
            let s = serial.partition_iterate(&mut measure).unwrap();
            let observed: Vec<Point> = sizes
                .iter()
                .enumerate()
                .map(|(r, &d)| measure(r, d.max(1)).unwrap())
                .collect();
            let d = distributed.absorb_observed(observed).unwrap();
            assert_eq!(s, d);
            assert_eq!(serial.dist().sizes(), distributed.dist().sizes());
            if s.converged {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "one time per process")]
    fn balance_iterate_checks_arity() {
        let mut ctx = context(100, 0.05, 3);
        let _ = ctx.balance_iterate(&[1.0, 2.0]);
    }

    #[test]
    fn single_process_is_balanced_by_definition() {
        // Regression: one process means nothing to balance against —
        // imbalance must be exactly 0.0 (not NaN from a degenerate
        // spread) and the loop converged on the first step.
        let mut ctx = context(100, 0.05, 1);
        let step = ctx
            .partition_iterate(|_, d| Ok(Point::single(d, d as f64 / 10.0)))
            .unwrap();
        assert_eq!(step.imbalance, 0.0);
        assert!(step.converged);
        assert_eq!(ctx.dist().sizes(), vec![100]);
    }

    #[test]
    fn lone_active_process_reports_zero_imbalance() {
        // Regression: once every unit lives on one process, the other
        // contributes no observation — the single remaining time used
        // to feed `(max - min)/max` with min = max. Must be 0.0 and
        // converged, never NaN.
        let mut ctx = context(10, 0.05, 2);
        // Process 1 is ~10000x slower: everything migrates to 0.
        ctx.balance_iterate(&[0.0001, 1.0]).unwrap();
        for _ in 0..10 {
            if ctx.dist().sizes()[1] == 0 {
                break;
            }
            let times: Vec<f64> = ctx
                .dist()
                .sizes()
                .iter()
                .map(|&d| d as f64 * if d > 5 { 0.0001 } else { 1.0 })
                .collect();
            ctx.balance_iterate(&times).unwrap();
        }
        assert_eq!(ctx.dist().sizes(), vec![10, 0], "setup failed");
        let step = ctx.balance_iterate(&[0.001, 0.0]).unwrap();
        assert_eq!(step.imbalance, 0.0);
        assert!(step.imbalance.is_finite());
        assert!(step.converged);
    }

    #[test]
    fn dynamic_loop_emits_trace_events() {
        use crate::trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let models: Vec<Box<dyn Model>> = (0..2)
            .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
            .collect();
        let mut ctx = DynamicContext::new(
            Box::new(GeometricPartitioner::default()),
            models,
            1000,
            0.05,
        )
        .with_trace(sink.clone());
        let steps = ctx.run_to_balance(measure_two(100.0, 25.0), 20).unwrap();

        let events = sink.take();
        let updates = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ModelUpdate { .. }))
            .count();
        let partitions: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PartitionStep {
                    iter,
                    dist,
                    imbalance,
                    units_moved,
                } => Some((*iter, dist.clone(), *imbalance, *units_moved)),
                _ => None,
            })
            .collect();
        // One ModelUpdate per process per step, one PartitionStep per
        // step, exactly one DynamicConverged at the end.
        assert_eq!(updates, 2 * steps.len());
        assert_eq!(partitions.len(), steps.len());
        for (i, (step, part)) in steps.iter().zip(&partitions).enumerate() {
            assert_eq!(part.0, i as u64 + 1, "iter numbering");
            assert_eq!(part.2, step.imbalance);
            assert_eq!(part.3, step.units_moved);
        }
        let converged: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DynamicConverged { .. }))
            .collect();
        assert_eq!(converged.len(), 1);
        if let TraceEvent::DynamicConverged { steps: n, .. } = converged[0] {
            assert_eq!(*n, steps.len() as u64);
        }
        assert_eq!(ctx.iterations(), steps.len() as u64);
    }
}
