//! The computation-kernel abstraction (the paper's `fupermod_kernel`).
//!
//! An application exposes its core computation as a [`Kernel`]: a
//! serial piece of code whose work is measured in *computation units*
//! and which can be set up for any size `d`, executed, and torn down.
//! The same interface covers both real kernels (the `fupermod-kernels`
//! crate implements GEMM and Jacobi sweeps on the host) and simulated
//! devices ([`DeviceKernel`] wraps a ground-truth device model so the
//! benchmarking machinery can be exercised on synthetic heterogeneous
//! platforms).

use std::time::Duration;

use fupermod_platform::{Device, WorkloadProfile};

use crate::CoreError;

/// A computation kernel: the `complexity`/`initialize`/`execute`/
/// `finalize` quartet of the paper's `fupermod_kernel`, in idiomatic
/// Rust form. `initialize`/`finalize` become the creation and drop of a
/// [`KernelContext`].
pub trait Kernel {
    /// Number of arithmetic operations performed for `d` computation
    /// units, used to convert measured time into flop/s for reporting.
    fn complexity(&self, d: u64) -> f64;

    /// Allocates and initialises the execution context (the data
    /// buffers) for a problem of `d` computation units.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Kernel`] if the problem size is unsupported
    /// or allocation fails.
    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError>;
}

/// Execution context of a kernel at a fixed problem size. Created by
/// [`Kernel::context`]; dropped to free the data.
///
/// Contexts are `Send` so that groups of kernels can be executed on
/// worker threads in lockstep, reproducing the paper's synchronised
/// measurement of resource-sharing processes.
pub trait KernelContext: Send {
    /// Executes the kernel once and reports how long it took.
    ///
    /// Real kernels time themselves with a monotonic clock; simulated
    /// kernels return the device model's (noisy) virtual time without
    /// sleeping.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Kernel`] if execution fails.
    fn run(&mut self) -> Result<Duration, CoreError>;
}

/// A simulated kernel: executing `d` units on a modelled [`Device`]
/// under a given [`WorkloadProfile`].
///
/// Each `run` draws the next noisy measurement from the device's
/// deterministic noise stream, so repeated runs scatter realistically
/// while the whole experiment stays reproducible.
#[derive(Debug, Clone)]
pub struct DeviceKernel {
    device: Device,
    profile: WorkloadProfile,
    runs: u64,
}

impl DeviceKernel {
    /// Wraps a device model and workload profile as a kernel.
    pub fn new(device: Device, profile: WorkloadProfile) -> Self {
        Self {
            device,
            profile,
            runs: 0,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The workload profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl Kernel for DeviceKernel {
    fn complexity(&self, d: u64) -> f64 {
        self.profile.complexity(d)
    }

    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError> {
        // Hand the context its own slice of the noise stream; reserve a
        // generous block so successive contexts never overlap.
        let base = self.runs;
        self.runs += 1 << 20;
        Ok(Box::new(DeviceKernelContext {
            device: self.device.clone(),
            profile: self.profile.clone(),
            d,
            next_run: base,
        }))
    }
}

struct DeviceKernelContext {
    device: Device,
    profile: WorkloadProfile,
    d: u64,
    next_run: u64,
}

impl KernelContext for DeviceKernelContext {
    fn run(&mut self) -> Result<Duration, CoreError> {
        let t = self
            .device
            .measured_time(self.d, &self.profile, self.next_run);
        self.next_run += 1;
        if !t.is_finite() || t < 0.0 {
            return Err(CoreError::Kernel(format!(
                "device '{}' produced invalid time {t} for d={}",
                self.device.name(),
                self.d
            )));
        }
        Ok(Duration::from_secs_f64(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_platform::cluster;

    #[test]
    fn device_kernel_reports_profile_complexity() {
        let dev = cluster::fast_cpu("c", 0);
        let profile = WorkloadProfile::matrix_update(16);
        let k = DeviceKernel::new(dev, profile.clone());
        assert_eq!(k.complexity(10), profile.complexity(10));
    }

    #[test]
    fn runs_scatter_but_stay_near_ideal() {
        let dev = cluster::fast_cpu("c", 3);
        let profile = WorkloadProfile::matrix_update(16);
        let ideal = dev.ideal_time(500, &profile);
        let mut k = DeviceKernel::new(dev, profile);
        let mut ctx = k.context(500).unwrap();
        let mut times = Vec::new();
        for _ in 0..50 {
            times.push(ctx.run().unwrap().as_secs_f64());
        }
        let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
        assert!((mean / ideal - 1.0).abs() < 0.05);
        // Noise actually present.
        assert!(times.iter().any(|t| (t - times[0]).abs() > 0.0));
    }

    #[test]
    fn separate_contexts_use_disjoint_noise_streams() {
        let dev = cluster::fast_cpu("c", 3);
        let profile = WorkloadProfile::matrix_update(16);
        let mut k = DeviceKernel::new(dev, profile);
        let mut a = k.context(100).unwrap();
        let mut b = k.context(100).unwrap();
        // Different streams → first samples differ (same device, size).
        let ta = a.run().unwrap();
        let tb = b.run().unwrap();
        assert_ne!(ta, tb);
    }

    #[test]
    fn contexts_are_send() {
        fn assert_send<T: Send>(_: T) {}
        let mut k = DeviceKernel::new(
            cluster::fast_cpu("c", 0),
            WorkloadProfile::matrix_update(16),
        );
        assert_send(k.context(10).unwrap());
    }
}
