//! Hierarchical (two-level) data partitioning.
//!
//! The paper's target platform is "a hierarchical heterogeneous
//! distributed-memory system": clusters of nodes, nodes of cores and
//! accelerators. FuPerMod models this by *aggregating*: the experimental
//! points can describe "the performance of CPU core(s), or the bundled
//! performance of a GPU and its dedicated CPU core, or the total
//! performance of a multi-CPU/GPU node" (§4.1). This module implements
//! the aggregation step in model space:
//!
//! * [`AggregateModel`] — a [`Model`] describing a *group* of processes
//!   as one super-process: its time function `T(x)` is the optimally
//!   load-balanced makespan of the group for `x` units (computed with
//!   an inner partitioner), so `x / T(x)` is the group's combined
//!   speed.
//! * [`partition_hierarchical`] — partitions a workload across groups
//!   using their aggregate models, then splits each group's share
//!   between its members — e.g. across nodes first, then within each
//!   node.

use crate::model::Model;
use crate::partition::{Distribution, GeometricPartitioner, Partitioner};
use crate::{CoreError, Point};

/// A group of process models viewed as a single super-process.
///
/// The aggregate's time function is evaluated lazily: `time(x)` runs
/// the inner partitioner over the members for `⌈x⌉` units and returns
/// the predicted makespan. The derivative is obtained by a central
/// difference, which is smooth enough for the outer numerical
/// partitioner because the balanced makespan varies smoothly with the
/// total.
pub struct AggregateModel<'a> {
    members: Vec<&'a dyn Model>,
    inner: GeometricPartitioner,
    /// Representative points (the union of member points, re-expressed
    /// at group level), used only for reporting.
    points: Vec<Point>,
}

impl<'a> AggregateModel<'a> {
    /// Aggregates a non-empty group of member models.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if the group is empty or any member
    /// has no data.
    pub fn new(members: Vec<&'a dyn Model>) -> Result<Self, CoreError> {
        if members.is_empty() {
            return Err(CoreError::Model("aggregate of zero members".to_owned()));
        }
        for (i, m) in members.iter().enumerate() {
            if !m.is_ready() {
                return Err(CoreError::Model(format!(
                    "aggregate member {i} has no experimental points"
                )));
            }
        }
        // Group-level representative points: for each distinct member
        // point size (scaled by the member count, approximating "all
        // members loaded alike"), record the balanced group time.
        let mut sizes: Vec<u64> = members
            .iter()
            .flat_map(|m| m.points().iter().map(|p| p.d * members.len() as u64))
            .collect();
        sizes.sort_unstable();
        sizes.dedup();
        let inner = GeometricPartitioner::default();
        let mut points = Vec::with_capacity(sizes.len());
        for &d in &sizes {
            if let Ok(dist) = inner.partition(d, &members) {
                points.push(Point::single(d, dist.predicted_makespan()));
            }
        }
        Ok(Self {
            members,
            inner,
            points,
        })
    }

    /// The member models.
    pub fn members(&self) -> &[&'a dyn Model] {
        &self.members
    }

    fn balanced_makespan(&self, x: f64) -> Option<f64> {
        if x <= 0.0 {
            return Some(0.0);
        }
        self.inner
            .partition(x.round().max(1.0) as u64, &self.members)
            .ok()
            .map(|d| d.predicted_makespan())
    }
}

impl std::fmt::Debug for AggregateModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregateModel")
            .field("members", &self.members.len())
            .field("points", &self.points.len())
            .finish_non_exhaustive()
    }
}

impl Model for AggregateModel<'_> {
    fn points(&self) -> &[Point] {
        &self.points
    }

    fn update(&mut self, _point: Point) -> Result<(), CoreError> {
        Err(CoreError::Model(
            "aggregate models are derived; update the member models instead".to_owned(),
        ))
    }

    fn time(&self, x: f64) -> Option<f64> {
        self.balanced_makespan(x)
    }

    fn time_derivative(&self, x: f64) -> Option<f64> {
        let h = (x.abs() * 1e-3).max(1.0);
        let hi = self.time(x + h)?;
        let lo = self.time((x - h).max(0.0))?;
        Some((hi - lo) / (x + h - (x - h).max(0.0)))
    }

    fn speed(&self, x: f64) -> Option<f64> {
        if x <= 0.0 {
            // Sum of member speeds at zero: the group's peak rate.
            let mut sum = 0.0;
            for m in &self.members {
                sum += m.speed(0.0)?;
            }
            return Some(sum);
        }
        let t = self.time(x)?;
        if t <= 0.0 {
            None
        } else {
            Some(x / t)
        }
    }
}

/// A two-level distribution: the per-group split and the per-member
/// split within each group.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalDistribution {
    /// Units per group, in group order.
    pub group_shares: Vec<u64>,
    /// Per-group member distributions (same order as the input groups).
    pub group_dists: Vec<Distribution>,
}

impl HierarchicalDistribution {
    /// Flattened member sizes in group-major order.
    pub fn flat_sizes(&self) -> Vec<u64> {
        self.group_dists
            .iter()
            .flat_map(|d| d.sizes())
            .collect()
    }

    /// Total units assigned across all members.
    pub fn total_assigned(&self) -> u64 {
        self.group_dists.iter().map(|d| d.total_assigned()).sum()
    }

    /// The predicted makespan: the slowest member anywhere.
    pub fn predicted_makespan(&self) -> f64 {
        self.group_dists
            .iter()
            .map(|d| d.predicted_makespan())
            .fold(0.0, f64::max)
    }
}

/// Partitions `total` units over `groups` of process models in two
/// levels: first across groups (via their [`AggregateModel`]s, with
/// `outer`), then within each group (with `inner`).
///
/// # Errors
///
/// Propagates aggregation and partitioning errors.
pub fn partition_hierarchical(
    total: u64,
    groups: &[Vec<&dyn Model>],
    outer: &dyn Partitioner,
    inner: &dyn Partitioner,
) -> Result<HierarchicalDistribution, CoreError> {
    if groups.is_empty() {
        return Err(CoreError::Partition("no groups to partition over".to_owned()));
    }
    let aggregates: Vec<AggregateModel<'_>> = groups
        .iter()
        .map(|g| AggregateModel::new(g.clone()))
        .collect::<Result<_, _>>()?;
    let agg_refs: Vec<&dyn Model> = aggregates.iter().map(|a| a as &dyn Model).collect();
    let across = outer.partition(total, &agg_refs)?;

    let mut group_dists = Vec::with_capacity(groups.len());
    for (group, part) in groups.iter().zip(across.parts()) {
        group_dists.push(inner.partition(part.d, group)?);
    }
    Ok(HierarchicalDistribution {
        group_shares: across.sizes(),
        group_dists,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PiecewiseModel;
    use crate::partition::GeometricPartitioner;

    fn model(speed: f64) -> PiecewiseModel {
        let mut m = PiecewiseModel::new();
        for d in [100u64, 1000, 10000] {
            m.update(Point::single(d, d as f64 / speed)).unwrap();
        }
        m
    }

    #[test]
    fn aggregate_speed_is_the_sum_of_member_speeds() {
        let m1 = model(100.0);
        let m2 = model(300.0);
        let agg = AggregateModel::new(vec![&m1, &m2]).unwrap();
        // 400 u/s combined: 4000 units in ~10 s.
        let t = agg.time(4000.0).unwrap();
        assert!((t - 10.0).abs() < 0.05, "t = {t}");
        let s = agg.speed(4000.0).unwrap();
        assert!((s - 400.0).abs() < 2.0, "s = {s}");
    }

    #[test]
    fn aggregate_rejects_updates_and_empty_groups() {
        let m1 = model(100.0);
        let mut agg = AggregateModel::new(vec![&m1]).unwrap();
        assert!(agg.update(Point::single(10, 1.0)).is_err());
        assert!(AggregateModel::new(vec![]).is_err());
        let empty = PiecewiseModel::new();
        assert!(AggregateModel::new(vec![&empty]).is_err());
    }

    #[test]
    fn two_level_partition_conserves_and_balances() {
        // Node A: 100 + 300 u/s; node B: 50 + 50 u/s. Combined 400 vs
        // 100 → A should take ~80%.
        let a1 = model(100.0);
        let a2 = model(300.0);
        let b1 = model(50.0);
        let b2 = model(50.0);
        let groups: Vec<Vec<&dyn Model>> = vec![vec![&a1, &a2], vec![&b1, &b2]];
        let part = partition_hierarchical(
            10_000,
            &groups,
            &GeometricPartitioner::default(),
            &GeometricPartitioner::default(),
        )
        .unwrap();
        assert_eq!(part.total_assigned(), 10_000);
        let shares = &part.group_shares;
        assert!(
            (7600..=8400).contains(&shares[0]),
            "group A got {}",
            shares[0]
        );
        // Inner splits proportional too: a2 gets ~3x a1.
        let a_sizes = part.group_dists[0].sizes();
        let ratio = a_sizes[1] as f64 / a_sizes[0] as f64;
        assert!((2.5..=3.5).contains(&ratio), "intra ratio {ratio}");
    }

    #[test]
    fn hierarchical_matches_flat_quality_on_uniform_members() {
        // With identical members everywhere, two-level and flat both
        // produce the even split.
        let ms: Vec<PiecewiseModel> = (0..4).map(|_| model(100.0)).collect();
        let groups: Vec<Vec<&dyn Model>> = vec![
            vec![&ms[0], &ms[1]],
            vec![&ms[2], &ms[3]],
        ];
        let part = partition_hierarchical(
            4000,
            &groups,
            &GeometricPartitioner::default(),
            &GeometricPartitioner::default(),
        )
        .unwrap();
        assert_eq!(part.flat_sizes(), vec![1000, 1000, 1000, 1000]);
    }

    #[test]
    fn predicted_makespan_covers_all_members() {
        let a1 = model(10.0);
        let b1 = model(1000.0);
        let groups: Vec<Vec<&dyn Model>> = vec![vec![&a1], vec![&b1]];
        let part = partition_hierarchical(
            5000,
            &groups,
            &GeometricPartitioner::default(),
            &GeometricPartitioner::default(),
        )
        .unwrap();
        // Both members should finish at roughly the same time.
        let t0 = part.group_dists[0].predicted_makespan();
        let t1 = part.group_dists[1].predicted_makespan();
        assert!((t0 - t1).abs() / t0.max(t1) < 0.1, "{t0} vs {t1}");
    }
}
