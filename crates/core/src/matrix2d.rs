//! Column-based two-dimensional matrix partitioning (Beaumont, Boudet,
//! Rastello, Robert \[2\]).
//!
//! The paper's matrix-multiplication use case partitions the matrices
//! "over a 2D arrangement of heterogeneous processors so that the area
//! of each rectangle is proportional to the speed of the processor",
//! arranging the submatrices "to be as square as possible, minimising
//! the total volume of communications". This module implements that
//! arrangement:
//!
//! * processors are sorted by area and grouped into *columns* of the
//!   unit square (a dynamic program finds the grouping that minimises
//!   the sum of half-perimeters — the communication volume of one
//!   matmul iteration);
//! * the continuous layout is then rounded to an exact tiling of the
//!   `n × n` block grid (no block lost, none covered twice).

use serde::{Deserialize, Serialize};

use fupermod_num::apportion::largest_remainder;

use crate::CoreError;

/// An axis-aligned rectangle of blocks assigned to one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rect {
    /// Owning process (index into the original `areas` slice).
    pub owner: usize,
    /// Left column of the rectangle, in blocks.
    pub x: u64,
    /// Top row of the rectangle, in blocks.
    pub y: u64,
    /// Width in blocks.
    pub w: u64,
    /// Height in blocks.
    pub h: u64,
}

impl Rect {
    /// Area in blocks.
    pub fn area(&self) -> u64 {
        self.w * self.h
    }

    /// Half-perimeter in blocks — proportional to the data this process
    /// sends/receives per iteration of the paper's matmul.
    pub fn half_perimeter(&self) -> u64 {
        self.w + self.h
    }
}

/// A column-based 2D partition of an `n × n` block grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnPartition {
    n: u64,
    /// Process indices per column, in layout order.
    columns: Vec<Vec<usize>>,
    /// One rectangle per process, indexed by process.
    rects: Vec<Rect>,
}

impl ColumnPartition {
    /// Grid dimension in blocks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The column structure: process indices per column.
    pub fn columns(&self) -> &[Vec<usize>] {
        &self.columns
    }

    /// Rectangles indexed by process.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Sum of half-perimeters over all rectangles — the communication
    /// metric of Beaumont et al.
    pub fn sum_half_perimeters(&self) -> u64 {
        self.rects.iter().map(Rect::half_perimeter).sum()
    }
}

/// Partitions the `n × n` block grid into one rectangle per process
/// with areas proportional to `areas`, using the column-based
/// arrangement that minimises the sum of half-perimeters.
///
/// `areas` are relative (typically the `d` values of a 1D partition of
/// `n²` units); zero areas are allowed and receive empty rectangles.
///
/// # Errors
///
/// Returns [`CoreError::Partition`] if `areas` is empty, all areas are
/// zero, or `n` is zero.
pub fn column_partition(n: u64, areas: &[u64]) -> Result<ColumnPartition, CoreError> {
    if areas.is_empty() {
        return Err(CoreError::Partition(
            "2D partition needs at least one process".to_owned(),
        ));
    }
    if n == 0 {
        return Err(CoreError::Partition("grid dimension must be positive".to_owned()));
    }
    let total: u64 = areas.iter().sum();
    if total == 0 {
        return Err(CoreError::Partition("all areas are zero".to_owned()));
    }

    // Processes with positive area, sorted by area descending (ties by
    // index for determinism). The Beaumont DP assumes this order.
    let mut order: Vec<usize> = (0..areas.len()).filter(|&i| areas[i] > 0).collect();
    order.sort_by(|&a, &b| areas[b].cmp(&areas[a]).then(a.cmp(&b)));
    let fractions: Vec<f64> = order.iter().map(|&i| areas[i] as f64 / total as f64).collect();

    let groups = optimal_columns(&fractions);

    // Integer column widths proportional to column areas.
    let col_areas: Vec<f64> = groups
        .iter()
        .map(|g| g.iter().map(|&k| fractions[k]).sum())
        .collect();
    let widths = largest_remainder(&col_areas, n).map_err(CoreError::from)?;

    let mut rects = vec![
        Rect {
            owner: 0,
            x: 0,
            y: 0,
            w: 0,
            h: 0,
        };
        areas.len()
    ];
    // Give every process its owner id even if its rectangle is empty.
    for (owner, r) in rects.iter_mut().enumerate() {
        r.owner = owner;
    }

    let mut x = 0u64;
    let mut columns = Vec::with_capacity(groups.len());
    for (group, &w) in groups.iter().zip(&widths) {
        // Heights within the column proportional to member areas.
        let member_areas: Vec<f64> = group.iter().map(|&k| fractions[k]).collect();
        let heights = largest_remainder(&member_areas, n).map_err(CoreError::from)?;
        let mut y = 0u64;
        let mut col_members = Vec::with_capacity(group.len());
        for (&k, &h) in group.iter().zip(&heights) {
            let owner = order[k];
            rects[owner] = Rect { owner, x, y, w, h };
            y += h;
            col_members.push(owner);
        }
        columns.push(col_members);
        x += w;
    }

    Ok(ColumnPartition { n, columns, rects })
}

/// Sum of half-perimeters of the trivial 1D row-strip partition of the
/// same grid — the baseline the column arrangement is compared against
/// (EXP4).
pub fn row_strip_half_perimeters(n: u64, areas: &[u64]) -> Result<u64, CoreError> {
    let total: u64 = areas.iter().sum();
    if areas.is_empty() || total == 0 || n == 0 {
        return Err(CoreError::Partition("invalid strip partition input".to_owned()));
    }
    let weights: Vec<f64> = areas.iter().map(|&a| a as f64).collect();
    let heights = largest_remainder(&weights, n).map_err(CoreError::from)?;
    Ok(heights
        .iter()
        .filter(|&&h| h > 0)
        .map(|&h| n + h)
        .sum())
}

/// Finds the column grouping (contiguous in sorted order) minimising
/// `Σ_j n_j · A_j + c` over the normalised areas, by dynamic
/// programming over (processes used, columns formed).
///
/// Returns index groups into the sorted order.
#[allow(clippy::needless_range_loop)] // DP index arithmetic is clearer explicit
fn optimal_columns(fractions: &[f64]) -> Vec<Vec<usize>> {
    let p = fractions.len();
    let mut prefix = vec![0.0; p + 1];
    for (i, f) in fractions.iter().enumerate() {
        prefix[i + 1] = prefix[i] + f;
    }
    let col_cost = |i: usize, j: usize| (j - i) as f64 * (prefix[j] - prefix[i]);

    // dp[c][i]: best cost of packing the first i processes into c columns.
    let mut dp = vec![vec![f64::INFINITY; p + 1]; p + 1];
    let mut back = vec![vec![0usize; p + 1]; p + 1];
    dp[0][0] = 0.0;
    for c in 1..=p {
        for i in c..=p {
            for k in (c - 1)..i {
                let cost = dp[c - 1][k] + col_cost(k, i);
                if cost < dp[c][i] {
                    dp[c][i] = cost;
                    back[c][i] = k;
                }
            }
        }
    }

    // Total metric includes +1 per column (the heights of a column sum
    // to the full edge).
    let mut best_c = 1;
    let mut best = f64::INFINITY;
    for c in 1..=p {
        let cost = dp[c][p] + c as f64;
        if cost < best - 1e-15 {
            best = cost;
            best_c = c;
        }
    }

    let mut groups = Vec::with_capacity(best_c);
    let mut i = p;
    let mut c = best_c;
    while c > 0 {
        let k = back[c][i];
        groups.push((k..i).collect::<Vec<usize>>());
        i = k;
        c -= 1;
    }
    groups.reverse();
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_exact_tiling(part: &ColumnPartition) {
        let n = part.n();
        // Total area covers the grid.
        let covered: u64 = part.rects().iter().map(Rect::area).sum();
        assert_eq!(covered, n * n, "tiling does not cover the grid");
        // No overlaps: paint the grid.
        let mut grid = vec![false; (n * n) as usize];
        for r in part.rects() {
            for yy in r.y..r.y + r.h {
                for xx in r.x..r.x + r.w {
                    let idx = (yy * n + xx) as usize;
                    assert!(!grid[idx], "overlap at ({xx},{yy})");
                    grid[idx] = true;
                }
            }
        }
        assert!(grid.iter().all(|&b| b), "hole in tiling");
    }

    #[test]
    fn four_equal_processes_tile_two_by_two() {
        let part = column_partition(8, &[16, 16, 16, 16]).unwrap();
        assert_exact_tiling(&part);
        assert_eq!(part.columns().len(), 2);
        // Each rectangle is 4×4 → half-perimeter 8, total 32.
        assert_eq!(part.sum_half_perimeters(), 32);
    }

    #[test]
    fn single_process_takes_whole_grid() {
        let part = column_partition(10, &[100]).unwrap();
        assert_exact_tiling(&part);
        assert_eq!(part.rects()[0].w, 10);
        assert_eq!(part.rects()[0].h, 10);
    }

    #[test]
    fn heterogeneous_areas_are_respected_approximately() {
        // Process 0 has 3/4 of the area.
        let part = column_partition(16, &[192, 32, 32]).unwrap();
        assert_exact_tiling(&part);
        let a0 = part.rects()[0].area() as f64;
        assert!((a0 / 256.0 - 0.75).abs() < 0.1, "area {a0}");
    }

    #[test]
    fn zero_area_processes_get_empty_rectangles() {
        let part = column_partition(8, &[32, 0, 32]).unwrap();
        assert_exact_tiling(&part);
        assert_eq!(part.rects()[1].area(), 0);
        assert_eq!(part.rects()[1].owner, 1);
    }

    #[test]
    fn beats_row_strips_for_many_processes() {
        let areas = vec![10u64; 16];
        let n = 40;
        let part = column_partition(n, &areas.iter().map(|a| a * 10).collect::<Vec<_>>()).unwrap();
        let strips = row_strip_half_perimeters(n, &areas).unwrap();
        assert!(
            part.sum_half_perimeters() < strips,
            "columns {} vs strips {strips}",
            part.sum_half_perimeters()
        );
    }

    #[test]
    fn dp_matches_brute_force_on_small_inputs() {
        // Brute-force over all contiguous groupings for p = 5.
        let fracs = [0.35, 0.25, 0.2, 0.12, 0.08];
        let groups = optimal_columns(&fracs);
        let dp_cost: f64 = groups
            .iter()
            .map(|g| {
                let a: f64 = g.iter().map(|&k| fracs[k]).sum();
                g.len() as f64 * a
            })
            .sum::<f64>()
            + groups.len() as f64;

        // Enumerate all compositions of 5 into contiguous groups.
        let mut best = f64::INFINITY;
        let p = fracs.len();
        for mask in 0..(1u32 << (p - 1)) {
            let mut cost = 0.0;
            let mut cols = 0;
            let mut start = 0;
            for i in 0..p {
                let boundary = i == p - 1 || (mask >> i) & 1 == 1;
                if boundary {
                    let a: f64 = fracs[start..=i].iter().sum();
                    cost += (i - start + 1) as f64 * a;
                    cols += 1;
                    start = i + 1;
                }
            }
            best = best.min(cost + cols as f64);
        }
        assert!(
            (dp_cost - best).abs() < 1e-12,
            "dp {dp_cost} vs brute force {best}"
        );
    }

    #[test]
    fn tiling_is_exact_for_awkward_sizes() {
        // Prime grid, uneven areas.
        let part = column_partition(13, &[70, 45, 30, 15, 9]).unwrap();
        assert_exact_tiling(&part);
        assert_eq!(part.rects().len(), 5);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(column_partition(8, &[]).is_err());
        assert!(column_partition(8, &[0, 0]).is_err());
        assert!(column_partition(0, &[1]).is_err());
    }
}
