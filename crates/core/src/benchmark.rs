//! Statistically controlled performance measurement (the paper's
//! `fupermod_benchmark`).
//!
//! A measurement repeats a kernel until the Student-t confidence
//! interval of the mean time is tight enough (per [`Precision`]), then
//! reports a [`Point`]. Two modes are provided:
//!
//! * [`Benchmark::measure`] — a single process benchmarking its kernel.
//! * [`Benchmark::measure_group`] — several processes that *share
//!   resources* benchmarking in lockstep on worker threads with a
//!   barrier before every repetition. This reproduces the paper's
//!   measurement technique for multicore nodes \[18\]: processes are
//!   synchronised so resources are shared between the maximum number of
//!   processes, and processes that finish early keep executing so the
//!   contention level stays constant until everyone is done.

use std::fmt;
use std::sync::{Barrier, Mutex};

use fupermod_num::stats::{IncrementalStats, OnlineStats};

use crate::kernel::{Kernel, KernelContext};
use crate::trace::{metrics, null_sink, TraceEvent, TraceSink};
use crate::{CoreError, Point, Precision};

/// Benchmark runner parameterised by a [`Precision`].
#[derive(Clone, Copy)]
pub struct Benchmark<'a> {
    precision: &'a Precision,
    /// Optional MAD-based outlier rejection threshold.
    outlier_k: Option<f64>,
    /// Structured-event sink; [`crate::trace::NullSink`] by default.
    trace: &'a dyn TraceSink,
}

impl fmt::Debug for Benchmark<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Benchmark")
            .field("precision", &self.precision)
            .field("outlier_k", &self.outlier_k)
            .finish_non_exhaustive()
    }
}

impl<'a> Benchmark<'a> {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the precision parameters are invalid
    /// (see [`Precision::validate`]).
    pub fn new(precision: &'a Precision) -> Self {
        precision.validate();
        Self {
            precision,
            outlier_k: None,
            trace: null_sink(),
        }
    }

    /// Routes structured measurement events ([`TraceEvent::BenchmarkSample`],
    /// [`TraceEvent::BenchmarkDone`]) to `sink`. The default is the
    /// no-op [`crate::trace::NullSink`], which costs nothing.
    pub fn with_trace(mut self, sink: &'a dyn TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Enables robust outlier rejection: samples farther than `k`
    /// median absolute deviations from the median are dropped before
    /// the confidence interval is computed. `k = 5` is a common
    /// choice; one-off events (daemon wakeups, first-touch page
    /// faults) then cannot stall the stopping rule or skew the mean.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    pub fn with_outlier_rejection(mut self, k: f64) -> Self {
        assert!(k > 0.0, "rejection threshold must be positive");
        self.outlier_k = Some(k);
        self
    }

    /// Summary statistics of the samples after the configured outlier
    /// filter (if any).
    ///
    /// Runs off the incrementally maintained sorted sample, so the
    /// per-repetition cost is O(log n) amortised (the running Welford
    /// accumulator is returned directly when no outlier is present or
    /// no filter is configured) instead of the former
    /// sort-and-reallocate recomputation on every repetition.
    fn effective_stats(&self, samples: &IncrementalStats) -> OnlineStats {
        match self.outlier_k {
            Some(k) => samples.filtered(k).0,
            None => samples.all(),
        }
    }

    /// Measures one kernel at size `d`.
    ///
    /// # Errors
    ///
    /// Propagates kernel initialisation/execution failures.
    pub fn measure(&self, kernel: &mut dyn Kernel, d: u64) -> Result<Point, CoreError> {
        let mut ctx = kernel.context(d)?;
        metrics().add_kernel();
        let mut samples = IncrementalStats::new();
        let mut spent = 0.0;
        let p = self.precision;

        let mut stats = OnlineStats::new();
        for rep in 0..p.reps_max {
            let t = ctx.run()?.as_secs_f64();
            samples.push(t);
            spent += t;
            metrics().record_bench_rep(t);
            stats = self.effective_stats(&samples);
            self.trace.record(&TraceEvent::BenchmarkSample {
                rank: 0,
                d,
                rep,
                time: t,
                ci_rel: relative_ci(&stats, p),
            });
            if rep + 1 >= p.reps_min && reliable(&stats, p, spent) {
                break;
            }
        }
        let outliers = samples.count() - stats.count();
        metrics().add_reps(samples.count());
        metrics().add_outliers(outliers);
        let point = point_from_stats(d, &stats, p);
        self.trace.record(&TraceEvent::BenchmarkDone {
            rank: 0,
            d,
            reps: point.reps,
            mean: point.t,
            stderr: stats.std_error(),
            elapsed: spent,
            outliers_rejected: outliers as u32,
        });
        Ok(point)
    }

    /// Measures a group of resource-sharing kernels in lockstep, one
    /// worker thread per kernel, with a barrier before every
    /// repetition. All members run the same number of repetitions; the
    /// group stops once *every* member satisfies the stopping rule (or
    /// the caps are hit).
    ///
    /// Returns one [`Point`] per kernel, in input order.
    ///
    /// # Errors
    ///
    /// Returns the first kernel error encountered; remaining workers
    /// finish their current repetition and stop.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` and `sizes` have different lengths or are
    /// empty.
    pub fn measure_group(
        &self,
        kernels: &mut [&mut dyn Kernel],
        sizes: &[u64],
    ) -> Result<Vec<Point>, CoreError> {
        assert_eq!(
            kernels.len(),
            sizes.len(),
            "one problem size per group member"
        );
        assert!(!kernels.is_empty(), "group must not be empty");
        let n = kernels.len();
        let p = self.precision;

        // Contexts are created up front (the paper's `initialize`), so
        // every member's memory is resident before anyone starts timing.
        let mut contexts: Vec<Box<dyn KernelContext>> = Vec::with_capacity(n);
        for (k, &d) in kernels.iter_mut().zip(sizes) {
            contexts.push(k.context(d)?);
            metrics().add_kernel();
        }

        let barrier = Barrier::new(n);
        let done = Mutex::new(vec![false; n]);
        let error: Mutex<Option<CoreError>> = Mutex::new(None);

        let this = *self;
        let results: Vec<OnlineStats> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, mut ctx) in contexts.into_iter().enumerate() {
                let barrier = &barrier;
                let done = &done;
                let error = &error;
                let d = sizes[rank];
                handles.push(scope.spawn(move || {
                    let mut samples = IncrementalStats::new();
                    let mut stats = OnlineStats::new();
                    let mut spent = 0.0;
                    for rep in 0..p.reps_max {
                        // Synchronised start: maximum resource sharing.
                        barrier.wait();
                        let mut rep_time = None;
                        match ctx.run() {
                            Ok(t) => {
                                let t = t.as_secs_f64();
                                samples.push(t);
                                spent += t;
                                rep_time = Some(t);
                            }
                            Err(e) => {
                                let mut slot = error.lock().expect("poisoned");
                                slot.get_or_insert(e);
                            }
                        }
                        stats = this.effective_stats(&samples);
                        if let Some(t) = rep_time {
                            metrics().record_bench_rep(t);
                            this.trace.record(&TraceEvent::BenchmarkSample {
                                rank,
                                d,
                                rep,
                                time: t,
                                ci_rel: relative_ci(&stats, p),
                            });
                        }
                        // Publish own verdict, then synchronise so every
                        // worker reads the *same* set of flags and takes
                        // the same stop decision (a diverging decision
                        // would deadlock the next repetition's barrier).
                        {
                            let mut flags = done.lock().expect("poisoned");
                            flags[rank] =
                                rep + 1 >= p.reps_min && reliable(&stats, p, spent);
                        }
                        barrier.wait();
                        let all_done = done.lock().expect("poisoned").iter().all(|f| *f);
                        let failed = error.lock().expect("poisoned").is_some();
                        if all_done || failed {
                            break;
                        }
                    }
                    let outliers = samples.count() - stats.count();
                    metrics().add_reps(samples.count());
                    metrics().add_outliers(outliers);
                    if error.lock().expect("poisoned").is_none() {
                        this.trace.record(&TraceEvent::BenchmarkDone {
                            rank,
                            d,
                            reps: stats.count() as u32,
                            mean: stats.mean(),
                            stderr: stats.std_error(),
                            elapsed: spent,
                            outliers_rejected: outliers as u32,
                        });
                    }
                    stats
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("benchmark worker panicked"))
                .collect()
        });

        if let Some(e) = error.into_inner().expect("poisoned") {
            return Err(e);
        }
        Ok(results
            .iter()
            .zip(sizes)
            .map(|(stats, &d)| point_from_stats(d, stats, p))
            .collect())
    }
}

/// Relative confidence-interval half-width of the mean, or `inf`
/// before enough samples exist to compute one.
fn relative_ci(stats: &OnlineStats, p: &Precision) -> f64 {
    stats
        .confidence_interval(p.cl)
        .map(|ci| ci.relative_error())
        .unwrap_or(f64::INFINITY)
}

/// Stopping rule: the confidence interval is tight enough, the data is
/// degenerate-but-stable (zero variance), or the time budget ran out.
fn reliable(stats: &OnlineStats, p: &Precision, spent: f64) -> bool {
    if spent >= p.max_seconds {
        return true;
    }
    match stats.confidence_interval(p.cl) {
        Some(ci) => ci.relative_error() <= p.rel_err,
        None => false,
    }
}

fn point_from_stats(d: u64, stats: &OnlineStats, p: &Precision) -> Point {
    let ci = stats
        .confidence_interval(p.cl)
        .map(|ci| ci.half_width)
        .unwrap_or(0.0);
    Point {
        d,
        t: stats.mean(),
        reps: stats.count() as u32,
        ci,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::DeviceKernel;
    use fupermod_platform::{cluster, Device, WorkloadProfile};

    fn noisy_kernel(noise: f64, seed: u64) -> DeviceKernel {
        let base = cluster::fast_cpu("c", seed);
        let dev = Device::new("c", base.spec().clone(), noise, seed);
        DeviceKernel::new(dev, WorkloadProfile::matrix_update(16))
    }

    #[test]
    fn noiseless_kernel_stops_at_reps_min() {
        let mut k = noisy_kernel(0.0, 1);
        let p = Precision::default();
        let point = Benchmark::new(&p).measure(&mut k, 100).unwrap();
        assert_eq!(point.reps, p.reps_min);
        assert!(point.ci < 1e-12);
        assert_eq!(point.d, 100);
    }

    #[test]
    fn noisy_kernel_repeats_until_tight() {
        let mut k = noisy_kernel(0.10, 2);
        let p = Precision {
            reps_min: 3,
            reps_max: 200,
            cl: 0.95,
            rel_err: 0.02,
            max_seconds: 1e9,
        };
        let point = Benchmark::new(&p).measure(&mut k, 100).unwrap();
        assert!(point.reps > 3, "took only {} reps", point.reps);
        assert!(point.ci / point.t <= 0.02 * 1.01);
    }

    #[test]
    fn reps_max_caps_stubborn_noise() {
        let mut k = noisy_kernel(0.5, 3);
        let p = Precision {
            reps_min: 2,
            reps_max: 5,
            cl: 0.99,
            rel_err: 1e-6,
            max_seconds: 1e9,
        };
        let point = Benchmark::new(&p).measure(&mut k, 100).unwrap();
        assert_eq!(point.reps, 5);
    }

    #[test]
    fn time_budget_stops_long_measurements() {
        // Device takes ~seconds per run at this size; budget of one run.
        let mut k = noisy_kernel(0.1, 4);
        let one_run = k.device().ideal_time(200_000, k.profile());
        let p = Precision {
            reps_min: 2,
            reps_max: 1000,
            cl: 0.95,
            rel_err: 1e-9,
            max_seconds: one_run * 2.5,
        };
        let point = Benchmark::new(&p).measure(&mut k, 200_000).unwrap();
        assert!(point.reps <= 4, "budget ignored: {} reps", point.reps);
    }

    #[test]
    fn measured_mean_tracks_ideal_time() {
        let mut k = noisy_kernel(0.05, 5);
        let ideal = k.device().ideal_time(1000, k.profile());
        let p = Precision {
            reps_min: 20,
            reps_max: 100,
            cl: 0.95,
            rel_err: 0.005,
            max_seconds: 1e9,
        };
        let point = Benchmark::new(&p).measure(&mut k, 1000).unwrap();
        assert!((point.t / ideal - 1.0).abs() < 0.05);
    }

    #[test]
    fn group_measurement_returns_point_per_member() {
        let mut ks: Vec<DeviceKernel> = (0..4).map(|i| noisy_kernel(0.03, 10 + i)).collect();
        let mut refs: Vec<&mut dyn Kernel> =
            ks.iter_mut().map(|k| k as &mut dyn Kernel).collect();
        let p = Precision::default();
        let points = Benchmark::new(&p)
            .measure_group(&mut refs, &[100, 200, 300, 400])
            .unwrap();
        assert_eq!(points.len(), 4);
        for (i, pt) in points.iter().enumerate() {
            assert_eq!(pt.d, 100 * (i as u64 + 1));
            assert!(pt.t > 0.0);
        }
    }

    #[test]
    fn group_members_run_identical_rep_counts() {
        // One noisy member forces extra reps; all members must match,
        // since the group is barrier-synchronised every repetition.
        let mut quiet1 = noisy_kernel(0.0, 20);
        let mut noisy = noisy_kernel(0.2, 21);
        let mut quiet2 = noisy_kernel(0.0, 22);
        let mut refs: Vec<&mut dyn Kernel> = vec![&mut quiet1, &mut noisy, &mut quiet2];
        let p = Precision {
            reps_min: 3,
            reps_max: 50,
            cl: 0.95,
            rel_err: 0.02,
            max_seconds: 1e9,
        };
        let points = Benchmark::new(&p).measure_group(&mut refs, &[100, 100, 100]).unwrap();
        assert_eq!(points[0].reps, points[1].reps);
        assert_eq!(points[1].reps, points[2].reps);
        assert!(points[1].reps > 3);
    }

    /// A kernel that fails either at context creation or on the n-th
    /// execution — used to exercise the error paths.
    struct FailingKernel {
        fail_context: bool,
        fail_on_run: u32,
    }

    struct FailingContext {
        fail_on_run: u32,
        runs: u32,
    }

    impl Kernel for FailingKernel {
        fn complexity(&self, d: u64) -> f64 {
            d as f64
        }
        fn context(
            &mut self,
            _d: u64,
        ) -> Result<Box<dyn crate::kernel::KernelContext>, CoreError> {
            if self.fail_context {
                return Err(CoreError::Kernel("allocation refused".to_owned()));
            }
            Ok(Box::new(FailingContext {
                fail_on_run: self.fail_on_run,
                runs: 0,
            }))
        }
    }

    impl crate::kernel::KernelContext for FailingContext {
        fn run(&mut self) -> Result<std::time::Duration, CoreError> {
            self.runs += 1;
            if self.runs >= self.fail_on_run {
                Err(CoreError::Kernel("device lost".to_owned()))
            } else {
                Ok(std::time::Duration::from_millis(1))
            }
        }
    }

    /// A kernel with a stable 1 ms time plus a large spike every
    /// `spike_every`-th run — the daemon-wakeup scenario.
    struct SpikyKernel {
        spike_every: u32,
    }

    struct SpikyContext {
        spike_every: u32,
        runs: u32,
    }

    impl Kernel for SpikyKernel {
        fn complexity(&self, d: u64) -> f64 {
            d as f64
        }
        fn context(
            &mut self,
            _d: u64,
        ) -> Result<Box<dyn crate::kernel::KernelContext>, CoreError> {
            Ok(Box::new(SpikyContext {
                spike_every: self.spike_every,
                runs: 0,
            }))
        }
    }

    impl crate::kernel::KernelContext for SpikyContext {
        fn run(&mut self) -> Result<std::time::Duration, CoreError> {
            self.runs += 1;
            let ms = if self.runs.is_multiple_of(self.spike_every) {
                100.0
            } else {
                1.0 + 0.001 * f64::from(self.runs % 3)
            };
            Ok(std::time::Duration::from_secs_f64(ms * 1e-3))
        }
    }

    #[test]
    fn outlier_rejection_recovers_the_clean_mean() {
        let p = Precision {
            reps_min: 10,
            reps_max: 40,
            cl: 0.95,
            rel_err: 0.01,
            max_seconds: 1e9,
        };
        let mut spiky = SpikyKernel { spike_every: 7 };
        let robust = Benchmark::new(&p)
            .with_outlier_rejection(5.0)
            .measure(&mut spiky, 10)
            .unwrap();
        let mut spiky = SpikyKernel { spike_every: 7 };
        let naive = Benchmark::new(&p).measure(&mut spiky, 10).unwrap();
        // Robust mean ~1 ms; the naive mean is dragged up by the
        // 100 ms spikes.
        assert!(
            (robust.t - 1e-3).abs() < 1e-4,
            "robust mean {} not ~1 ms",
            robust.t
        );
        assert!(naive.t > 3.0 * robust.t, "naive {} vs robust {}", naive.t, robust.t);
    }

    #[test]
    fn outlier_rejection_converges_where_naive_stalls() {
        let p = Precision {
            reps_min: 5,
            reps_max: 60,
            cl: 0.95,
            rel_err: 0.02,
            max_seconds: 1e9,
        };
        // Spikes land inside the first reps_min window (runs 3, 6, ...),
        // so the naive stopping rule cannot converge early.
        let mut spiky = SpikyKernel { spike_every: 3 };
        let robust = Benchmark::new(&p)
            .with_outlier_rejection(5.0)
            .measure(&mut spiky, 10)
            .unwrap();
        let mut spiky = SpikyKernel { spike_every: 3 };
        let naive = Benchmark::new(&p).measure(&mut spiky, 10).unwrap();
        assert!(
            robust.reps < naive.reps,
            "robust {} reps vs naive {}",
            robust.reps,
            naive.reps
        );
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_nonpositive_outlier_threshold() {
        let p = Precision::default();
        let _ = Benchmark::new(&p).with_outlier_rejection(0.0);
    }

    #[test]
    fn measure_propagates_context_failure() {
        let mut k = FailingKernel {
            fail_context: true,
            fail_on_run: 0,
        };
        let err = Benchmark::new(&Precision::default())
            .measure(&mut k, 10)
            .unwrap_err();
        assert!(matches!(err, CoreError::Kernel(_)));
    }

    #[test]
    fn measure_propagates_mid_run_failure() {
        let mut k = FailingKernel {
            fail_context: false,
            fail_on_run: 2,
        };
        let err = Benchmark::new(&Precision::default())
            .measure(&mut k, 10)
            .unwrap_err();
        assert!(matches!(err, CoreError::Kernel(_)));
    }

    #[test]
    fn group_with_failing_member_errors_without_hanging() {
        let mut good1 = noisy_kernel(0.0, 30);
        let mut bad = FailingKernel {
            fail_context: false,
            fail_on_run: 3,
        };
        let mut good2 = noisy_kernel(0.0, 31);
        let mut refs: Vec<&mut dyn Kernel> = vec![&mut good1, &mut bad, &mut good2];
        let p = Precision {
            reps_min: 5,
            reps_max: 50,
            cl: 0.95,
            rel_err: 1e-9,
            max_seconds: 1e9,
        };
        let err = Benchmark::new(&p)
            .measure_group(&mut refs, &[10, 10, 10])
            .unwrap_err();
        assert!(matches!(err, CoreError::Kernel(_)));
    }

    #[test]
    fn group_context_failure_surfaces_before_threads_spawn() {
        let mut good = noisy_kernel(0.0, 32);
        let mut bad = FailingKernel {
            fail_context: true,
            fail_on_run: 0,
        };
        let mut refs: Vec<&mut dyn Kernel> = vec![&mut good, &mut bad];
        let err = Benchmark::new(&Precision::default())
            .measure_group(&mut refs, &[10, 10])
            .unwrap_err();
        assert!(matches!(err, CoreError::Kernel(_)));
    }

    #[test]
    #[should_panic(expected = "one problem size")]
    fn group_rejects_mismatched_sizes() {
        let mut k = noisy_kernel(0.0, 1);
        let mut refs: Vec<&mut dyn Kernel> = vec![&mut k];
        let _ = Benchmark::new(&Precision::default()).measure_group(&mut refs, &[1, 2]);
    }

    #[test]
    fn measure_emits_one_sample_per_rep_and_a_summary() {
        use crate::trace::{MemorySink, TraceEvent};
        let sink = MemorySink::new();
        let mut k = noisy_kernel(0.0, 7);
        let p = Precision::default();
        let point = Benchmark::new(&p)
            .with_trace(&sink)
            .measure(&mut k, 50)
            .unwrap();
        let events = sink.take();
        let samples = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BenchmarkSample { .. }))
            .count();
        // No outlier filter configured: every repetition survives.
        assert_eq!(samples as u32, point.reps);
        match events.last().unwrap() {
            TraceEvent::BenchmarkDone {
                rank,
                d,
                reps,
                mean,
                outliers_rejected,
                ..
            } => {
                assert_eq!(*rank, 0);
                assert_eq!(*d, 50);
                assert_eq!(*reps, point.reps);
                assert!((mean - point.t).abs() < 1e-15);
                assert_eq!(*outliers_rejected, 0);
            }
            other => panic!("last event should be BenchmarkDone, got {other:?}"),
        }
    }

    #[test]
    fn group_trace_reports_every_rank() {
        use crate::trace::{MemorySink, TraceEvent};
        let sink = MemorySink::new();
        let mut ks: Vec<DeviceKernel> = (0..3).map(|i| noisy_kernel(0.0, 40 + i)).collect();
        let mut refs: Vec<&mut dyn Kernel> =
            ks.iter_mut().map(|k| k as &mut dyn Kernel).collect();
        let p = Precision::default();
        let points = Benchmark::new(&p)
            .with_trace(&sink)
            .measure_group(&mut refs, &[100, 200, 300])
            .unwrap();
        let events = sink.take();
        let mut done_ranks: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BenchmarkDone { rank, d, reps, .. } => {
                    assert_eq!(*d, 100 * (*rank as u64 + 1));
                    assert_eq!(*reps, points[*rank].reps);
                    Some(*rank)
                }
                _ => None,
            })
            .collect();
        done_ranks.sort_unstable();
        assert_eq!(done_ranks, vec![0, 1, 2]);
    }
}
