//! Structured observability for benchmarking and dynamic partitioning.
//!
//! The paper's value proposition is *visibility into measured
//! performance*: `fupermod_benchmark` stops on statistical confidence
//! and `fupermod_dynamic` iterates partition → measure until balanced.
//! This module makes those loops observable as a stream of typed
//! [`TraceEvent`]s emitted through a [`TraceSink`]:
//!
//! * [`Benchmark`](crate::benchmark::Benchmark) emits one
//!   [`TraceEvent::BenchmarkSample`] per repetition and a
//!   [`TraceEvent::BenchmarkDone`] per measurement;
//! * [`DynamicContext`](crate::dynamic::DynamicContext) emits
//!   [`TraceEvent::ModelUpdate`] per absorbed observation,
//!   [`TraceEvent::PartitionStep`] per re-partition, and
//!   [`TraceEvent::DynamicConverged`] once balanced;
//! * [`Partitioner::partition_traced`](crate::partition::Partitioner::partition_traced)
//!   emits a single [`TraceEvent::PartitionStep`] for static partitioning;
//! * the `fupermod-runtime` message-passing layer emits
//!   [`TraceEvent::Comm`] per communication operation and
//!   [`TraceEvent::Fault`] per injected or observed fault
//!   (schema v2 additions).
//!
//! Four sinks are provided: [`NullSink`] (the default — zero work),
//! [`MemorySink`] (in-process inspection and tests), [`JsonlSink`]
//! (one JSON object per line) and [`CsvSink`] (fixed wide columns).
//! Both file encodings are **schema-versioned** ([`SCHEMA_VERSION`])
//! and specified field-by-field in `docs/OBSERVABILITY.md`; the JSONL
//! form round-trips through [`TraceEvent::from_jsonl`] so a recorded
//! trace can be replayed into fresh models ([`replay_into_models`]),
//! giving simulation/prediction work machine-readable ground truth.
//!
//! Everything here is `std`-only and thread-safe: sinks take `&self`
//! and are `Send + Sync`, so the group benchmark's worker threads can
//! share one sink. A process-wide counters facade ([`metrics`])
//! aggregates totals (kernels, repetitions, outliers, repartitions,
//! units moved) for an at-exit summary.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::model::Model;
use crate::{CoreError, Point};

/// Version of the trace schema this build writes (see
/// `docs/OBSERVABILITY.md` for the field-by-field specification).
///
/// v2 added the `comm` and `fault` event kinds emitted by the
/// `fupermod-runtime` message-passing layer. v3 adds the causal
/// `lamport`/`gen` stamps on `comm` events (which make per-rank
/// traces mergeable into one globally ordered timeline — see
/// `fupermod-trace` and `fupermod_tracetool merge`) and the
/// `metrics` event carrying latency-histogram snapshots. v4 adds the
/// `kind`/`labels` fields on `metrics` events so the live telemetry
/// registry (`telemetry` module) can export labelled counters and
/// gauges alongside histograms. Every addition is additive: v1–v3
/// traces remain readable, with the missing fields defaulting.
pub const SCHEMA_VERSION: u32 = 4;

/// A typed observability event emitted by the measurement and
/// partitioning machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One benchmark repetition finished.
    BenchmarkSample {
        /// Process rank within its measurement group (0 for single).
        rank: usize,
        /// Problem size being measured, in computation units.
        d: u64,
        /// Repetition index (0-based).
        rep: u32,
        /// Execution time of this repetition, seconds.
        time: f64,
        /// Relative confidence-interval half-width of the mean after
        /// this repetition (`inf` until two samples exist).
        ci_rel: f64,
    },
    /// One statistically controlled measurement finished.
    BenchmarkDone {
        /// Process rank within its measurement group (0 for single).
        rank: usize,
        /// Problem size measured, in computation units.
        d: u64,
        /// Repetitions that survived the outlier filter.
        reps: u32,
        /// Mean execution time over the surviving repetitions, seconds.
        mean: f64,
        /// Standard error of the mean, seconds.
        stderr: f64,
        /// Total wall time spent measuring (all repetitions), seconds.
        elapsed: f64,
        /// Samples rejected by the MAD outlier filter.
        outliers_rejected: u32,
    },
    /// A performance model absorbed an experimental point.
    ModelUpdate {
        /// Process rank owning the model.
        rank: usize,
        /// Problem size of the absorbed point.
        d: u64,
        /// Mean time of the absorbed point, seconds.
        t: f64,
        /// Repetitions behind the absorbed point.
        reps: u32,
        /// Points in the model after the update.
        points: usize,
    },
    /// The partitioner produced a (new) distribution.
    PartitionStep {
        /// 1-based iteration of the dynamic loop (0 for a static,
        /// one-shot partitioning).
        iter: u64,
        /// Assigned computation units per process.
        dist: Vec<u64>,
        /// Relative imbalance `(t_max - t_min)/t_max` of the observed
        /// times that drove this step (predicted imbalance for static
        /// partitioning).
        imbalance: f64,
        /// Computation units that changed owner relative to the
        /// previous distribution.
        units_moved: u64,
    },
    /// The dynamic loop reached its balance tolerance (or the
    /// distribution stopped moving).
    DynamicConverged {
        /// Dynamic-loop iterations it took.
        steps: u64,
        /// Final relative imbalance.
        imbalance: f64,
    },
    /// A runtime communication operation completed (schema v2).
    Comm {
        /// Rank that performed the operation.
        rank: usize,
        /// Operation tag: `send`, `recv`, `barrier`, `bcast`,
        /// `scatterv`, `gatherv`, `allgatherv`, `allreduce`.
        op: String,
        /// Peer rank (or collective root); `-1` when not applicable.
        peer: i64,
        /// Payload bytes moved by this rank in the operation.
        bytes: u64,
        /// Wall (or virtual) seconds the operation took on this rank.
        seconds: f64,
        /// Collective schedule that carried the operation: `hub`,
        /// `ring`, `tree`, or `direct` for point-to-point traffic.
        /// Empty string when unknown (pre-addendum traces).
        algorithm: String,
        /// Communication rounds the schedule used (`1` for
        /// point-to-point, `0` for degenerate single-rank
        /// collectives or unknown/pre-addendum traces).
        rounds: u64,
        /// Lamport timestamp of the operation on this rank at
        /// completion (schema v3): every operation ticks its rank's
        /// clock, message receipt merges the sender's stamp, and a
        /// barrier generation joins all live clocks — so sorting
        /// events by `(lamport, gen, rank)` yields a causally
        /// consistent cross-rank order. `0` in pre-v3 traces.
        lamport: u64,
        /// Barrier generation the operation belongs to (schema v3):
        /// the generation a collective's closing barrier completed,
        /// or the generation current when a point-to-point operation
        /// began. All ranks of one collective record the same `gen`.
        /// `0` in pre-v3 traces.
        gen: u64,
    },
    /// A fault was injected or observed by the runtime (schema v2).
    Fault {
        /// Rank where the fault manifested.
        rank: usize,
        /// Fault tag: `delay`, `drop`, `retry`, `straggler`, `death`,
        /// `timeout`, `degraded`.
        kind: String,
        /// Peer rank involved; `-1` when not applicable.
        peer: i64,
        /// Retry attempt number (0 for non-retry faults).
        attempt: u32,
        /// Seconds of delay/backoff attributable to the fault
        /// (0 when not applicable).
        seconds: f64,
    },
    /// A metric sample (schema v3; `kind`/`labels` are the schema-v4
    /// addendum): a latency-histogram snapshot exported by
    /// [`Metrics::export_histogram_events`], or a labelled counter /
    /// gauge / histogram exported by the live telemetry registry
    /// (`telemetry` module).
    Metrics {
        /// Rank the sample describes (`0` for process-wide
        /// metrics, which is what the built-in facades export).
        rank: usize,
        /// Metric scope tag: `comm.<op>` (per-operation
        /// communication latency), `bench.rep` (benchmark repetition
        /// time), or a registry metric name such as
        /// `served_requests_total`.
        scope: String,
        /// Samples recorded (histograms), or the counter value.
        /// `0` for gauges, whose value rides in `sum`.
        count: u64,
        /// Sum of recorded latencies in seconds (histograms), the
        /// gauge value, or `0` for counters.
        sum: f64,
        /// Log-bucketed counts, length
        /// [`HISTOGRAM_BUCKETS`]` + 2`: `buckets[0]` is the
        /// underflow bin (`< 1 ns`), `buckets[1 + k]` covers
        /// `[2^k, 2^(k+1))` nanoseconds, and the last bin is the
        /// overflow (`>= 2^HISTOGRAM_BUCKETS` ns). Empty for
        /// counters and gauges.
        buckets: Vec<u64>,
        /// Metric kind (schema v4): `counter`, `gauge`, or
        /// `histogram`. Empty in pre-v4 traces, which carried only
        /// histogram snapshots (and unlabeled store counters whose
        /// empty `buckets` distinguish them).
        kind: String,
        /// Label set (schema v4): `;`-separated `key=value` pairs in
        /// sorted key order (e.g. `op=ingest;outcome=ok`), restricted
        /// to escape-free tags without `,`/`;`/`=` in the values.
        /// Empty when the metric carries no labels (all pre-v4
        /// traces).
        labels: String,
    },
}

impl TraceEvent {
    /// Stable, lowercase event tag used by both encodings.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::BenchmarkSample { .. } => "benchmark_sample",
            TraceEvent::BenchmarkDone { .. } => "benchmark_done",
            TraceEvent::ModelUpdate { .. } => "model_update",
            TraceEvent::PartitionStep { .. } => "partition_step",
            TraceEvent::DynamicConverged { .. } => "dynamic_converged",
            TraceEvent::Comm { .. } => "comm",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Metrics { .. } => "metrics",
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline),
    /// schema version [`SCHEMA_VERSION`].
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            TraceEvent::BenchmarkSample {
                rank,
                d,
                rep,
                time,
                ci_rel,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_num(&mut s, "d", *d as f64);
                push_num(&mut s, "rep", f64::from(*rep));
                push_float(&mut s, "time", *time);
                push_float(&mut s, "ci_rel", *ci_rel);
            }
            TraceEvent::BenchmarkDone {
                rank,
                d,
                reps,
                mean,
                stderr,
                elapsed,
                outliers_rejected,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_num(&mut s, "d", *d as f64);
                push_num(&mut s, "reps", f64::from(*reps));
                push_float(&mut s, "mean", *mean);
                push_float(&mut s, "stderr", *stderr);
                push_float(&mut s, "elapsed", *elapsed);
                push_num(&mut s, "outliers_rejected", f64::from(*outliers_rejected));
            }
            TraceEvent::ModelUpdate {
                rank,
                d,
                t,
                reps,
                points,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_num(&mut s, "d", *d as f64);
                push_float(&mut s, "t", *t);
                push_num(&mut s, "reps", f64::from(*reps));
                push_num(&mut s, "points", *points as f64);
            }
            TraceEvent::PartitionStep {
                iter,
                dist,
                imbalance,
                units_moved,
            } => {
                push_num(&mut s, "iter", *iter as f64);
                s.push_str(",\"dist\":[");
                for (i, d) in dist.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{d}");
                }
                s.push(']');
                push_float(&mut s, "imbalance", *imbalance);
                push_num(&mut s, "units_moved", *units_moved as f64);
            }
            TraceEvent::DynamicConverged { steps, imbalance } => {
                push_num(&mut s, "steps", *steps as f64);
                push_float(&mut s, "imbalance", *imbalance);
            }
            TraceEvent::Comm {
                rank,
                op,
                peer,
                bytes,
                seconds,
                algorithm,
                rounds,
                lamport,
                gen,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_str(&mut s, "op", op);
                push_num(&mut s, "peer", *peer as f64);
                push_num(&mut s, "bytes", *bytes as f64);
                push_float(&mut s, "seconds", *seconds);
                push_str(&mut s, "algorithm", algorithm);
                push_num(&mut s, "rounds", *rounds as f64);
                push_int(&mut s, "lamport", *lamport);
                push_int(&mut s, "gen", *gen);
            }
            TraceEvent::Fault {
                rank,
                kind,
                peer,
                attempt,
                seconds,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_str(&mut s, "kind", kind);
                push_num(&mut s, "peer", *peer as f64);
                push_num(&mut s, "attempt", f64::from(*attempt));
                push_float(&mut s, "seconds", *seconds);
            }
            TraceEvent::Metrics {
                rank,
                scope,
                count,
                sum,
                buckets,
                kind,
                labels,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_str(&mut s, "scope", scope);
                push_int(&mut s, "count", *count);
                push_float(&mut s, "sum", *sum);
                push_str(&mut s, "kind", kind);
                push_str(&mut s, "labels", labels);
                s.push_str(",\"buckets\":[");
                for (i, b) in buckets.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{b}");
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL event line produced by [`TraceEvent::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] on malformed JSON, an unknown event
    /// tag, or missing fields.
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, CoreError> {
        let fields = json::parse_flat_object(line)?;
        let tag = fields
            .iter()
            .find(|(k, _)| k == "event")
            .and_then(|(_, v)| v.as_str())
            .ok_or_else(|| CoreError::Trace("missing \"event\" tag".to_owned()))?
            .to_owned();
        let num = |key: &str| -> Result<f64, CoreError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .ok_or_else(|| {
                    CoreError::Trace(format!("event '{tag}': missing numeric field '{key}'"))
                })
        };
        let text = |key: &str| -> Result<String, CoreError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| {
                    CoreError::Trace(format!("event '{tag}': missing string field '{key}'"))
                })
        };
        match tag.as_str() {
            "benchmark_sample" => Ok(TraceEvent::BenchmarkSample {
                rank: num("rank")? as usize,
                d: num("d")? as u64,
                rep: num("rep")? as u32,
                time: num("time")?,
                ci_rel: num("ci_rel")?,
            }),
            "benchmark_done" => Ok(TraceEvent::BenchmarkDone {
                rank: num("rank")? as usize,
                d: num("d")? as u64,
                reps: num("reps")? as u32,
                mean: num("mean")?,
                stderr: num("stderr")?,
                elapsed: num("elapsed")?,
                outliers_rejected: num("outliers_rejected")? as u32,
            }),
            "model_update" => Ok(TraceEvent::ModelUpdate {
                rank: num("rank")? as usize,
                d: num("d")? as u64,
                t: num("t")?,
                reps: num("reps")? as u32,
                points: num("points")? as usize,
            }),
            "partition_step" => {
                let dist = fields
                    .iter()
                    .find(|(k, _)| k == "dist")
                    .and_then(|(_, v)| v.as_array())
                    .ok_or_else(|| {
                        CoreError::Trace("partition_step: missing 'dist' array".to_owned())
                    })?
                    .iter()
                    .map(|x| *x as u64)
                    .collect();
                Ok(TraceEvent::PartitionStep {
                    iter: num("iter")? as u64,
                    dist,
                    imbalance: num("imbalance")?,
                    units_moved: num("units_moved")? as u64,
                })
            }
            "dynamic_converged" => Ok(TraceEvent::DynamicConverged {
                steps: num("steps")? as u64,
                imbalance: num("imbalance")?,
            }),
            "comm" => Ok(TraceEvent::Comm {
                rank: num("rank")? as usize,
                op: text("op")?,
                peer: num("peer")? as i64,
                bytes: num("bytes")? as u64,
                seconds: num("seconds")?,
                // The `algorithm`/`rounds` fields are a schema-v2
                // addendum (PR 4) and `lamport`/`gen` are the schema
                // v3 causal stamps; traces written before them simply
                // lack the fields. Decode those as "unknown"/0 rather
                // than rejecting the line.
                algorithm: text("algorithm").unwrap_or_default(),
                rounds: num("rounds").map(|r| r as u64).unwrap_or(0),
                lamport: num("lamport").map(|l| l as u64).unwrap_or(0),
                gen: num("gen").map(|g| g as u64).unwrap_or(0),
            }),
            "fault" => Ok(TraceEvent::Fault {
                rank: num("rank")? as usize,
                kind: text("kind")?,
                peer: num("peer")? as i64,
                attempt: num("attempt")? as u32,
                seconds: num("seconds")?,
            }),
            "metrics" => {
                let buckets = fields
                    .iter()
                    .find(|(k, _)| k == "buckets")
                    .and_then(|(_, v)| v.as_array())
                    .ok_or_else(|| {
                        CoreError::Trace("metrics: missing 'buckets' array".to_owned())
                    })?
                    .iter()
                    .map(|x| *x as u64)
                    .collect();
                Ok(TraceEvent::Metrics {
                    rank: num("rank")? as usize,
                    scope: text("scope")?,
                    count: num("count")? as u64,
                    sum: num("sum")?,
                    buckets,
                    // `kind`/`labels` are the schema-v4 addendum;
                    // pre-v4 traces lack them — decode as empty.
                    kind: text("kind").unwrap_or_default(),
                    labels: text("labels").unwrap_or_default(),
                })
            }
            other => Err(CoreError::Trace(format!("unknown event tag '{other}'"))),
        }
    }

    /// Encodes the event as one CSV data row matching [`CSV_HEADER`].
    pub fn to_csv_row(&self) -> String {
        // Columns: event,iter,rank,d,rep,reps,time,mean,stderr,ci_rel,
        //          elapsed,outliers_rejected,t,points,imbalance,
        //          units_moved,steps,dist,op,kind,peer,bytes,seconds,
        //          attempt,algorithm,rounds,lamport,gen,scope,count,
        //          sum,buckets,labels
        // (`kind` — column 19 — is shared by fault and metrics rows,
        // like rank/peer/seconds are shared across variants.)
        let mut c: [String; CSV_COLUMNS] = std::array::from_fn(|_| String::new());
        c[0] = self.name().to_owned();
        match self {
            TraceEvent::BenchmarkSample {
                rank,
                d,
                rep,
                time,
                ci_rel,
            } => {
                c[2] = rank.to_string();
                c[3] = d.to_string();
                c[4] = rep.to_string();
                c[6] = fmt_float(*time);
                c[9] = fmt_float(*ci_rel);
            }
            TraceEvent::BenchmarkDone {
                rank,
                d,
                reps,
                mean,
                stderr,
                elapsed,
                outliers_rejected,
            } => {
                c[2] = rank.to_string();
                c[3] = d.to_string();
                c[5] = reps.to_string();
                c[7] = fmt_float(*mean);
                c[8] = fmt_float(*stderr);
                c[10] = fmt_float(*elapsed);
                c[11] = outliers_rejected.to_string();
            }
            TraceEvent::ModelUpdate {
                rank,
                d,
                t,
                reps,
                points,
            } => {
                c[2] = rank.to_string();
                c[3] = d.to_string();
                c[5] = reps.to_string();
                c[12] = fmt_float(*t);
                c[13] = points.to_string();
            }
            TraceEvent::PartitionStep {
                iter,
                dist,
                imbalance,
                units_moved,
            } => {
                c[1] = iter.to_string();
                c[14] = fmt_float(*imbalance);
                c[15] = units_moved.to_string();
                c[17] = dist
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(";");
            }
            TraceEvent::DynamicConverged { steps, imbalance } => {
                c[14] = fmt_float(*imbalance);
                c[16] = steps.to_string();
            }
            TraceEvent::Comm {
                rank,
                op,
                peer,
                bytes,
                seconds,
                algorithm,
                rounds,
                lamport,
                gen,
            } => {
                c[2] = rank.to_string();
                c[18] = op.clone();
                c[20] = peer.to_string();
                c[21] = bytes.to_string();
                c[22] = fmt_float(*seconds);
                c[24] = algorithm.clone();
                c[25] = rounds.to_string();
                c[26] = lamport.to_string();
                c[27] = gen.to_string();
            }
            TraceEvent::Fault {
                rank,
                kind,
                peer,
                attempt,
                seconds,
            } => {
                c[2] = rank.to_string();
                c[19] = kind.clone();
                c[20] = peer.to_string();
                c[22] = fmt_float(*seconds);
                c[23] = attempt.to_string();
            }
            TraceEvent::Metrics {
                rank,
                scope,
                count,
                sum,
                buckets,
                kind,
                labels,
            } => {
                c[2] = rank.to_string();
                c[19] = kind.clone();
                c[28] = scope.clone();
                c[29] = count.to_string();
                c[30] = fmt_float(*sum);
                c[31] = buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(";");
                c[32] = labels.clone();
            }
        }
        c.join(",")
    }

    /// Decodes one CSV data row produced by [`TraceEvent::to_csv_row`]
    /// (the exact inverse over the canonical [`CSV_HEADER`] column
    /// layout). Rows from older layouts — 24 columns (pre-addendum
    /// v2), 26 columns (v2 + `algorithm`/`rounds`) — decode with the
    /// same defaults the JSONL reader applies (empty algorithm,
    /// zero rounds/lamport/gen).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] on an unknown event tag, a missing
    /// or malformed required column, or a row with fewer than 24
    /// columns.
    pub fn from_csv_row(row: &str) -> Result<TraceEvent, CoreError> {
        let cols: Vec<&str> = row.split(',').collect();
        if cols.len() < 24 {
            return Err(CoreError::Trace(format!(
                "CSV row has {} columns, expected at least 24",
                cols.len()
            )));
        }
        let tag = cols[0];
        let cell = |i: usize| -> &str { cols.get(i).copied().unwrap_or("") };
        let req_f64 = |i: usize, name: &str| -> Result<f64, CoreError> {
            parse_csv_float(cell(i)).ok_or_else(|| {
                CoreError::Trace(format!("event '{tag}': missing numeric column '{name}'"))
            })
        };
        let req_u64 = |i: usize, name: &str| -> Result<u64, CoreError> {
            cell(i).parse::<u64>().map_err(|_| {
                CoreError::Trace(format!("event '{tag}': missing integer column '{name}'"))
            })
        };
        let req_i64 = |i: usize, name: &str| -> Result<i64, CoreError> {
            cell(i).parse::<i64>().map_err(|_| {
                CoreError::Trace(format!("event '{tag}': missing integer column '{name}'"))
            })
        };
        let opt_u64 = |i: usize| -> u64 { cell(i).parse::<u64>().unwrap_or(0) };
        let semis = |i: usize, name: &str| -> Result<Vec<u64>, CoreError> {
            let raw = cell(i);
            if raw.is_empty() {
                return Ok(Vec::new());
            }
            raw.split(';')
                .map(|x| {
                    x.parse::<u64>().map_err(|_| {
                        CoreError::Trace(format!(
                            "event '{tag}': malformed '{name}' entry '{x}'"
                        ))
                    })
                })
                .collect()
        };
        match tag {
            "benchmark_sample" => Ok(TraceEvent::BenchmarkSample {
                rank: req_u64(2, "rank")? as usize,
                d: req_u64(3, "d")?,
                rep: req_u64(4, "rep")? as u32,
                time: req_f64(6, "time")?,
                ci_rel: req_f64(9, "ci_rel")?,
            }),
            "benchmark_done" => Ok(TraceEvent::BenchmarkDone {
                rank: req_u64(2, "rank")? as usize,
                d: req_u64(3, "d")?,
                reps: req_u64(5, "reps")? as u32,
                mean: req_f64(7, "mean")?,
                stderr: req_f64(8, "stderr")?,
                elapsed: req_f64(10, "elapsed")?,
                outliers_rejected: req_u64(11, "outliers_rejected")? as u32,
            }),
            "model_update" => Ok(TraceEvent::ModelUpdate {
                rank: req_u64(2, "rank")? as usize,
                d: req_u64(3, "d")?,
                t: req_f64(12, "t")?,
                reps: req_u64(5, "reps")? as u32,
                points: req_u64(13, "points")? as usize,
            }),
            "partition_step" => Ok(TraceEvent::PartitionStep {
                iter: req_u64(1, "iter")?,
                dist: semis(17, "dist")?,
                imbalance: req_f64(14, "imbalance")?,
                units_moved: req_u64(15, "units_moved")?,
            }),
            "dynamic_converged" => Ok(TraceEvent::DynamicConverged {
                steps: req_u64(16, "steps")?,
                imbalance: req_f64(14, "imbalance")?,
            }),
            "comm" => Ok(TraceEvent::Comm {
                rank: req_u64(2, "rank")? as usize,
                op: cell(18).to_owned(),
                peer: req_i64(20, "peer")?,
                bytes: req_u64(21, "bytes")?,
                seconds: req_f64(22, "seconds")?,
                algorithm: cell(24).to_owned(),
                rounds: opt_u64(25),
                lamport: opt_u64(26),
                gen: opt_u64(27),
            }),
            "fault" => Ok(TraceEvent::Fault {
                rank: req_u64(2, "rank")? as usize,
                kind: cell(19).to_owned(),
                peer: req_i64(20, "peer")?,
                attempt: req_u64(23, "attempt")? as u32,
                seconds: req_f64(22, "seconds")?,
            }),
            "metrics" => Ok(TraceEvent::Metrics {
                rank: req_u64(2, "rank")? as usize,
                scope: cell(28).to_owned(),
                count: req_u64(29, "count")?,
                sum: req_f64(30, "sum")?,
                buckets: semis(31, "buckets")?,
                kind: cell(19).to_owned(),
                labels: cell(32).to_owned(),
            }),
            other => Err(CoreError::Trace(format!("unknown event tag '{other}'"))),
        }
    }
}

/// Parses a CSV float cell: empty → `None`, `null` → NaN, otherwise
/// IEEE-754 parse (so `1e9999`/`-1e9999` overflow to infinities, the
/// exact inverse of [`fmt_float`]).
fn parse_csv_float(cell: &str) -> Option<f64> {
    match cell {
        "" => None,
        "null" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Number of columns in the canonical CSV layout ([`CSV_HEADER`]).
pub const CSV_COLUMNS: usize = 33;

/// Column header row of the CSV encoding (preceded in files by the
/// `# fupermod-trace schema=4` comment line). The six columns
/// starting at `op` (`op..attempt`) are the schema-v2 additions for
/// the `comm`/`fault` events; `algorithm,rounds` are the schema-v2
/// *addendum* columns describing the collective schedule a `comm`
/// event used; `lamport,gen` are the schema-v3 causal stamps on
/// `comm` rows, and `scope,count,sum,buckets` carry the schema-v3
/// `metrics` event (histogram snapshots — `buckets` is
/// `;`-separated like `dist`). Schema v4 adds `labels` (the metric
/// label set, `;`-separated `key=value` pairs) and reuses `kind` for
/// the metric kind tag on `metrics` rows. Absent columns are
/// empty/`0` for older rows and non-applicable events.
pub const CSV_HEADER: &str = "event,iter,rank,d,rep,reps,time,mean,stderr,ci_rel,\
elapsed,outliers_rejected,t,points,imbalance,units_moved,steps,dist,\
op,kind,peer,bytes,seconds,attempt,algorithm,rounds,lamport,gen,\
scope,count,sum,buckets,labels";

/// Formats a float for both encodings: shortest round-trip via Rust's
/// `Display`, with non-finite values mapped to `null`-compatible text
/// (`null` for NaN, `±1e9999` for the infinities, which parse back to
/// `±inf`). Public so downstream consumers (`fupermod-trace`'s
/// report) can reproduce trace values **bit-for-bit**.
pub fn fmt_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "null".to_owned()
    } else if v > 0.0 {
        "1e9999".to_owned() // parses back to +inf
    } else {
        "-1e9999".to_owned()
    }
}

fn push_float(s: &mut String, key: &str, v: f64) {
    let _ = write!(s, ",\"{key}\":{}", fmt_float(v));
}

fn push_num(s: &mut String, key: &str, v: f64) {
    let _ = write!(s, ",\"{key}\":{v}");
}

/// Pushes an unsigned integer field without a float round-trip (exact
/// for the full `u64` range, unlike [`push_num`]).
fn push_int(s: &mut String, key: &str, v: u64) {
    let _ = write!(s, ",\"{key}\":{v}");
}

/// Pushes a string field. Trace string fields are restricted to the
/// fixed ASCII tags listed on [`TraceEvent`] (no quotes or escapes),
/// matching the escape-free flat-JSON parser.
fn push_str(s: &mut String, key: &str, v: &str) {
    debug_assert!(
        !v.contains(['"', '\\', '\n']),
        "trace string fields must be escape-free tags"
    );
    let _ = write!(s, ",\"{key}\":\"{v}\"");
}

/// Minimal flat-JSON machinery for the trace subsystem (std-only; the
/// build environment is offline, so no serde_json).
mod json {
    use crate::CoreError;

    /// A parsed JSON value restricted to what trace lines contain.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// A number (or `null`, mapped to NaN).
        Num(f64),
        /// A string.
        Str(String),
        /// An array of numbers.
        Arr(Vec<f64>),
    }

    impl Value {
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[f64]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    /// Parses one flat JSON object (`{"k": v, ...}` where `v` is a
    /// number, string, `null`, or array of numbers) into key/value
    /// pairs in source order.
    pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, CoreError> {
        let mut p = Parser {
            bytes: line.trim().as_bytes(),
            pos: 0,
        };
        p.expect(b'{')?;
        let mut out = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            return Ok(out);
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
        Ok(out)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> CoreError {
            CoreError::Trace(format!("bad trace JSON at byte {}: {msg}", self.pos))
        }
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn next(&mut self) -> Option<u8> {
            let b = self.peek();
            self.pos += 1;
            b
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t')) {
                self.pos += 1;
            }
        }
        fn expect(&mut self, want: u8) -> Result<(), CoreError> {
            self.skip_ws();
            if self.next() == Some(want) {
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", want as char)))
            }
        }
        fn string(&mut self) -> Result<String, CoreError> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .to_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                if b == b'\\' {
                    return Err(self.err("escapes are not used by trace lines"));
                }
                self.pos += 1;
            }
            Err(self.err("unterminated string"))
        }
        fn number(&mut self) -> Result<f64, CoreError> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| self.err("malformed number"))
        }
        fn value(&mut self) -> Result<Value, CoreError> {
            match self.peek() {
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => {
                    self.pos += 1;
                    let mut arr = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    loop {
                        self.skip_ws();
                        arr.push(self.number()?);
                        self.skip_ws();
                        match self.next() {
                            Some(b',') => continue,
                            Some(b']') => break,
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                    Ok(Value::Arr(arr))
                }
                Some(b'n') => {
                    if self.bytes[self.pos..].starts_with(b"null") {
                        self.pos += 4;
                        Ok(Value::Num(f64::NAN))
                    } else {
                        Err(self.err("unknown literal"))
                    }
                }
                _ => Ok(Value::Num(self.number()?)),
            }
        }
    }
}

/// Destination for [`TraceEvent`]s.
///
/// Sinks must be cheap when inactive (the default [`NullSink`] is a
/// no-op) and thread-safe: `record` takes `&self` so the synchronised
/// group benchmark can emit from several worker threads at once.
pub trait TraceSink: Send + Sync {
    /// Records one event. Implementations must not panic on I/O
    /// failure — store the error and surface it from [`TraceSink::flush`].
    fn record(&self, event: &TraceEvent);

    /// Flushes buffered output and surfaces any deferred write error.
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered since the last flush.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The default sink: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&self, _event: &TraceEvent) {}
}

/// A shared static [`NullSink`] for default wiring.
pub fn null_sink() -> &'static NullSink {
    static NULL: NullSink = NullSink;
    &NULL
}

/// Collects events in memory — for tests and in-process analysis.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the recorded events, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink poisoned"))
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("trace sink poisoned")
            .push(event.clone());
    }
}

struct WriterState<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write> WriterState<W> {
    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Streams events as JSON Lines: a `{"trace":"fupermod","schema":2}`
/// header line followed by one object per event.
pub struct JsonlSink<W: Write + Send> {
    state: Mutex<WriterState<W>>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer; immediately writes the schema header line.
    pub fn new(writer: W) -> Self {
        let mut state = WriterState {
            writer,
            error: None,
        };
        state.write_line(&format!(
            "{{\"trace\":\"fupermod\",\"schema\":{SCHEMA_VERSION}}}"
        ));
        Self {
            state: Mutex::new(state),
        }
    }

    /// Consumes the sink, flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, if any.
    pub fn into_inner(self) -> io::Result<W> {
        let mut state = self.state.into_inner().expect("trace sink poisoned");
        state.flush()?;
        Ok(state.writer)
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        self.state
            .lock()
            .expect("trace sink poisoned")
            .write_line(&event.to_jsonl());
    }

    fn flush(&self) -> io::Result<()> {
        self.state.lock().expect("trace sink poisoned").flush()
    }
}

/// Streams events as CSV: a `# fupermod-trace schema=2` comment line,
/// the [`CSV_HEADER`] row, then one fixed-width row per event.
pub struct CsvSink<W: Write + Send> {
    state: Mutex<WriterState<W>>,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) a CSV trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps a writer; immediately writes the schema comment and the
    /// column header row.
    pub fn new(writer: W) -> Self {
        let mut state = WriterState {
            writer,
            error: None,
        };
        state.write_line(&format!("# fupermod-trace schema={SCHEMA_VERSION}"));
        state.write_line(CSV_HEADER);
        Self {
            state: Mutex::new(state),
        }
    }

    /// Consumes the sink, flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, if any.
    pub fn into_inner(self) -> io::Result<W> {
        let mut state = self.state.into_inner().expect("trace sink poisoned");
        state.flush()?;
        Ok(state.writer)
    }
}

impl<W: Write + Send> TraceSink for CsvSink<W> {
    fn record(&self, event: &TraceEvent) {
        self.state
            .lock()
            .expect("trace sink poisoned")
            .write_line(&event.to_csv_row());
    }

    fn flush(&self) -> io::Result<()> {
        self.state.lock().expect("trace sink poisoned").flush()
    }
}

/// On-disk encoding of a trace file, detected from its header line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// JSON Lines: `{"trace":"fupermod","schema":N}` header, one
    /// object per event.
    Jsonl,
    /// CSV: `# fupermod-trace schema=N` comment, [`CSV_HEADER`] row,
    /// one fixed-arity row per event.
    Csv,
}

/// A streaming trace reader: validates the header eagerly, then
/// decodes one event per [`Iterator::next`] call without buffering
/// the file — multi-gigabyte traces stream in constant memory
/// (`fupermod_tracetool merge` relies on this). Detects both trace
/// encodings from the first line.
///
/// The eager [`read_jsonl_trace`] is a thin wrapper over this type.
pub struct TraceReader<R: BufRead> {
    lines: io::Lines<R>,
    schema: u32,
    format: TraceFormat,
}

impl TraceReader<io::BufReader<File>> {
    /// Opens a trace file for streaming, validating its header.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] on I/O failure, a missing or
    /// foreign header, or a schema version newer than
    /// [`SCHEMA_VERSION`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, CoreError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| {
            CoreError::Trace(format!("cannot open trace '{}': {e}", path.display()))
        })?;
        Self::new(io::BufReader::new(file))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a reader, consuming and validating the header line(s).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] on I/O failure, a missing or
    /// foreign header, or a schema version newer than
    /// [`SCHEMA_VERSION`] (forward compatibility is rejected, not
    /// guessed at).
    pub fn new(reader: R) -> Result<Self, CoreError> {
        let mut lines = reader.lines();
        let header = lines
            .next()
            .ok_or_else(|| CoreError::Trace("empty trace file".to_owned()))?
            .map_err(|e| CoreError::Trace(format!("trace read failed: {e}")))?;
        let (format, schema) = if let Some(rest) = header.strip_prefix('#') {
            // CSV: "# fupermod-trace schema=N", then the column
            // header row (consumed here so iteration yields data
            // rows only).
            let rest = rest.trim();
            let schema = rest
                .strip_prefix("fupermod-trace")
                .map(str::trim)
                .and_then(|s| s.strip_prefix("schema="))
                .and_then(|s| s.trim().parse::<u32>().ok())
                .ok_or_else(|| {
                    CoreError::Trace("not a fupermod trace (bad CSV schema comment)".to_owned())
                })?;
            let cols = lines
                .next()
                .ok_or_else(|| CoreError::Trace("CSV trace missing column header".to_owned()))?
                .map_err(|e| CoreError::Trace(format!("trace read failed: {e}")))?;
            if !cols.starts_with("event,") {
                return Err(CoreError::Trace(
                    "CSV trace missing 'event,...' column header".to_owned(),
                ));
            }
            (TraceFormat::Csv, schema)
        } else {
            let fields = json::parse_flat_object(&header)?;
            if fields
                .iter()
                .find(|(k, _)| k == "trace")
                .and_then(|(_, v)| v.as_str())
                != Some("fupermod")
            {
                return Err(CoreError::Trace(
                    "not a fupermod trace (missing header line)".to_owned(),
                ));
            }
            let schema = fields
                .iter()
                .find(|(k, _)| k == "schema")
                .and_then(|(_, v)| v.as_f64())
                .ok_or_else(|| CoreError::Trace("header missing schema version".to_owned()))?
                as u32;
            (TraceFormat::Jsonl, schema)
        };
        if schema > SCHEMA_VERSION {
            return Err(CoreError::Trace(format!(
                "trace schema {schema} is newer than supported {SCHEMA_VERSION}"
            )));
        }
        Ok(Self {
            lines,
            schema,
            format,
        })
    }

    /// Schema version declared by the trace header.
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// Encoding detected from the header.
    pub fn format(&self) -> TraceFormat {
        self.format
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => {
                    return Some(Err(CoreError::Trace(format!("trace read failed: {e}"))))
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            return Some(match self.format {
                TraceFormat::Jsonl => TraceEvent::from_jsonl(&line),
                TraceFormat::Csv => TraceEvent::from_csv_row(&line),
            });
        }
    }
}

/// Parses a trace eagerly: validates the header line and decodes
/// every event, returning `(schema_version, events)`. Thin wrapper
/// over the streaming [`TraceReader`] — prefer that for large files.
///
/// # Errors
///
/// Returns [`CoreError::Trace`] on I/O failure, a missing/foreign
/// header, an unsupported schema version, or any malformed event line.
pub fn read_jsonl_trace<R: BufRead>(reader: R) -> Result<(u32, Vec<TraceEvent>), CoreError> {
    let reader = TraceReader::new(reader)?;
    let schema = reader.schema();
    let events = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((schema, events))
}

/// Replays the `model_update` events of a recorded trace into fresh
/// models (one per rank), reconstructing the partial models a dynamic
/// run built — the machine-readable ground truth simulation-based
/// prediction needs. Returns the number of points applied.
///
/// # Errors
///
/// Propagates model-update failures and rejects ranks outside
/// `models`.
pub fn replay_into_models(
    events: &[TraceEvent],
    models: &mut [&mut dyn Model],
) -> Result<usize, CoreError> {
    let mut applied = 0;
    for event in events {
        if let TraceEvent::ModelUpdate {
            rank, d, t, reps, ..
        } = event
        {
            let n_models = models.len();
            let model = models.get_mut(*rank).ok_or_else(|| {
                CoreError::Trace(format!(
                    "trace refers to rank {rank} but only {n_models} models were supplied"
                ))
            })?;
            if *d == 0 {
                continue; // idle probe: carries no speed information
            }
            model.update(Point {
                d: *d,
                t: *t,
                reps: *reps,
                ci: 0.0,
            })?;
            applied += 1;
        }
    }
    Ok(applied)
}

/// Number of power-of-two latency buckets in a [`LatencyHistogram`]:
/// bucket `k` covers `[2^k, 2^(k+1))` nanoseconds, so 48 buckets span
/// 1 ns up to ~3.26 days — log-bucketed HDR-style resolution (≤ 2×
/// relative error) at constant memory.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// Operation tags with a dedicated per-op communication-latency
/// histogram in [`Metrics`] (the tags `comm` events use).
pub const COMM_OPS: [&str; 8] = [
    "send",
    "recv",
    "barrier",
    "bcast",
    "scatterv",
    "gatherv",
    "allgatherv",
    "allreduce",
];

// Interior mutability is the point: this is the `[CONST; N]`
// array-initialisation idiom for atomics (each array slot gets its
// own fresh atomic, never a shared one).
#[allow(clippy::declare_interior_mutable_const)]
const ATOMIC_ZERO: AtomicU64 = AtomicU64::new(0);

/// A lock-free log-bucketed latency histogram (HDR-style): recording
/// is a couple of relaxed atomic increments, so it is safe on hot
/// paths; [`LatencyHistogram::snapshot`] produces the serialisable
/// bucket vector carried by [`TraceEvent::Metrics`].
#[derive(Debug)]
pub struct LatencyHistogram {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    under: AtomicU64,
    over: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (const-constructible for statics).
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            under: AtomicU64::new(0),
            over: AtomicU64::new(0),
            buckets: [ATOMIC_ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one latency sample, in seconds. Negative and NaN
    /// samples are ignored; sub-nanosecond samples land in the
    /// underflow bin and samples beyond `2^HISTOGRAM_BUCKETS` ns in
    /// the overflow bin.
    pub fn record(&self, seconds: f64) {
        if seconds.is_nan() || seconds < 0.0 {
            return; // not a latency
        }
        let nanos = (seconds * 1e9).round() as u64; // saturating cast
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        if nanos == 0 {
            self.under.fetch_add(1, Ordering::Relaxed);
        } else {
            let k = (63 - nanos.leading_zeros()) as usize; // floor(log2)
            if k >= HISTOGRAM_BUCKETS {
                self.over.fetch_add(1, Ordering::Relaxed);
            } else {
                self.buckets[k].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS + 2);
        buckets.push(self.under.load(Ordering::Relaxed));
        for b in &self.buckets {
            buckets.push(b.load(Ordering::Relaxed));
        }
        buckets.push(self.over.load(Ordering::Relaxed));
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            buckets,
        }
    }

    /// Resets every bin and counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.under.store(0, Ordering::Relaxed);
        self.over.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], in the exact shape
/// the [`TraceEvent::Metrics`] event serialises.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded latencies, seconds (nanosecond resolution).
    pub sum_seconds: f64,
    /// `HISTOGRAM_BUCKETS + 2` bins: underflow, `[2^k, 2^(k+1))` ns
    /// for `k = 0..HISTOGRAM_BUCKETS`, overflow.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from serialised [`TraceEvent::Metrics`]
    /// fields. Returns `None` if the bucket vector has the wrong
    /// arity.
    pub fn from_parts(count: u64, sum_seconds: f64, buckets: Vec<u64>) -> Option<Self> {
        if buckets.len() != HISTOGRAM_BUCKETS + 2 {
            return None;
        }
        Some(Self {
            count,
            sum_seconds,
            buckets,
        })
    }

    /// Mean latency in seconds, or `None` for an empty histogram.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_seconds / self.count as f64)
        }
    }

    /// Upper bound (seconds, exclusive) of snapshot bin `i`:
    /// `1 ns` for the underflow bin, `2^(k+1)` ns for bucket `k`,
    /// and `+inf` for the overflow bin.
    pub fn bin_upper_seconds(i: usize) -> f64 {
        if i == 0 {
            1e-9
        } else if i <= HISTOGRAM_BUCKETS {
            // bin i holds bucket k = i - 1 → upper bound 2^i ns
            (i as f64).exp2() * 1e-9
        } else {
            f64::INFINITY
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (upper bound of the bin
    /// holding the `ceil(q · count)`-th sample — a ≤ 2× overestimate
    /// by construction). `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(Self::bin_upper_seconds(i));
            }
        }
        Some(f64::INFINITY)
    }
}

/// Process-wide observability counters and latency histograms,
/// updated by the measurement and partitioning machinery regardless
/// of the configured sink. The counters are always on (a relaxed
/// atomic add); the schema-v3 latency histograms are gated behind
/// [`Metrics::set_histograms_enabled`] so untraced runs pay nothing
/// beyond one relaxed boolean load.
#[derive(Debug)]
pub struct Metrics {
    kernels_executed: AtomicU64,
    total_reps: AtomicU64,
    outliers_rejected: AtomicU64,
    repartitions: AtomicU64,
    units_moved: AtomicU64,
    histograms_enabled: AtomicBool,
    comm_hists: [LatencyHistogram; COMM_OPS.len()],
    bench_hist: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Kernel measurement sessions (contexts) executed.
    pub kernels_executed: u64,
    /// Total benchmark repetitions across all measurements.
    pub total_reps: u64,
    /// Samples rejected by MAD outlier filtering.
    pub outliers_rejected: u64,
    /// Partitioner invocations that produced a distribution.
    pub repartitions: u64,
    /// Computation units that changed owner across all dynamic steps.
    pub units_moved: u64,
}

// `[CONST; N]` array-initialisation idiom (see `ATOMIC_ZERO`).
#[allow(clippy::declare_interior_mutable_const)]
const HIST_ZERO: LatencyHistogram = LatencyHistogram::new();

impl Metrics {
    /// A zeroed instance (const-constructible for the process-wide
    /// static).
    pub const fn new() -> Self {
        Self {
            kernels_executed: AtomicU64::new(0),
            total_reps: AtomicU64::new(0),
            outliers_rejected: AtomicU64::new(0),
            repartitions: AtomicU64::new(0),
            units_moved: AtomicU64::new(0),
            histograms_enabled: AtomicBool::new(false),
            comm_hists: [HIST_ZERO; COMM_OPS.len()],
            bench_hist: LatencyHistogram::new(),
        }
    }

    pub(crate) fn add_kernel(&self) {
        self.kernels_executed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_reps(&self, n: u64) {
        self.total_reps.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_outliers(&self, n: u64) {
        self.outliers_rejected.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_repartition(&self) {
        self.repartitions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_units_moved(&self, n: u64) {
        self.units_moved.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kernels_executed: self.kernels_executed.load(Ordering::Relaxed),
            total_reps: self.total_reps.load(Ordering::Relaxed),
            outliers_rejected: self.outliers_rejected.load(Ordering::Relaxed),
            repartitions: self.repartitions.load(Ordering::Relaxed),
            units_moved: self.units_moved.load(Ordering::Relaxed),
        }
    }

    /// Enables or disables the latency histograms. Disabled (the
    /// default), [`Metrics::record_comm_latency`] and
    /// [`Metrics::record_bench_rep`] are single-boolean-load no-ops.
    pub fn set_histograms_enabled(&self, enabled: bool) {
        self.histograms_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the latency histograms are recording.
    pub fn histograms_enabled(&self) -> bool {
        self.histograms_enabled.load(Ordering::Relaxed)
    }

    /// Records one communication-operation latency into the per-op
    /// histogram. `op` must be one of [`COMM_OPS`] (unknown tags are
    /// ignored); a no-op unless histograms are enabled. The sample is
    /// also offered to the live telemetry registry
    /// (`fupermod_comm_duration_seconds{op=...}`), which applies its
    /// own single-relaxed-load gate, so scrapeable runs need no extra
    /// instrumentation at the call sites.
    pub fn record_comm_latency(&self, op: &str, seconds: f64) {
        crate::telemetry::record_comm(op, seconds);
        if !self.histograms_enabled() {
            return;
        }
        if let Some(i) = COMM_OPS.iter().position(|&o| o == op) {
            self.comm_hists[i].record(seconds);
        }
    }

    /// Records one benchmark repetition time; a no-op unless
    /// histograms are enabled.
    pub fn record_bench_rep(&self, seconds: f64) {
        if !self.histograms_enabled() {
            return;
        }
        self.bench_hist.record(seconds);
    }

    /// Snapshot of the per-op communication-latency histogram for
    /// `op` (`None` for tags outside [`COMM_OPS`]).
    pub fn comm_histogram(&self, op: &str) -> Option<HistogramSnapshot> {
        COMM_OPS
            .iter()
            .position(|&o| o == op)
            .map(|i| self.comm_hists[i].snapshot())
    }

    /// Snapshot of the benchmark repetition-time histogram.
    pub fn bench_histogram(&self) -> HistogramSnapshot {
        self.bench_hist.snapshot()
    }

    /// Emits one [`TraceEvent::Metrics`] per non-empty histogram
    /// (`comm.<op>` scopes in [`COMM_OPS`] order, then `bench.rep`)
    /// into `sink`, and returns how many events were written.
    /// Typically called once at the end of a traced run.
    pub fn export_histogram_events(&self, sink: &dyn TraceSink) -> usize {
        let mut emitted = 0;
        for (op, hist) in COMM_OPS.iter().zip(&self.comm_hists) {
            let snap = hist.snapshot();
            if snap.count == 0 {
                continue;
            }
            sink.record(&TraceEvent::Metrics {
                rank: 0,
                scope: format!("comm.{op}"),
                count: snap.count,
                sum: snap.sum_seconds,
                buckets: snap.buckets,
                kind: "histogram".to_owned(),
                labels: String::new(),
            });
            emitted += 1;
        }
        let snap = self.bench_hist.snapshot();
        if snap.count > 0 {
            sink.record(&TraceEvent::Metrics {
                rank: 0,
                scope: "bench.rep".to_owned(),
                count: snap.count,
                sum: snap.sum_seconds,
                buckets: snap.buckets,
                kind: "histogram".to_owned(),
                labels: String::new(),
            });
            emitted += 1;
        }
        emitted
    }

    /// Resets every counter and histogram to zero (tests and
    /// long-lived processes). The histogram enable flag is left
    /// untouched.
    pub fn reset(&self) {
        self.kernels_executed.store(0, Ordering::Relaxed);
        self.total_reps.store(0, Ordering::Relaxed);
        self.outliers_rejected.store(0, Ordering::Relaxed);
        self.repartitions.store(0, Ordering::Relaxed);
        self.units_moved.store(0, Ordering::Relaxed);
        for h in &self.comm_hists {
            h.reset();
        }
        self.bench_hist.reset();
    }

    /// One-line human-readable summary for process-exit reporting.
    pub fn summary(&self) -> String {
        let s = self.snapshot();
        format!(
            "fupermod metrics: kernels={} reps={} outliers_rejected={} repartitions={} units_moved={}",
            s.kernels_executed, s.total_reps, s.outliers_rejected, s.repartitions, s.units_moved
        )
    }
}

/// The process-wide [`Metrics`] instance.
pub fn metrics() -> &'static Metrics {
    static METRICS: Metrics = Metrics::new();
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::BenchmarkSample {
                rank: 1,
                d: 500,
                rep: 0,
                time: 0.0125,
                ci_rel: f64::INFINITY,
            },
            TraceEvent::BenchmarkDone {
                rank: 1,
                d: 500,
                reps: 7,
                mean: 0.0123,
                stderr: 0.0002,
                elapsed: 0.0861,
                outliers_rejected: 1,
            },
            TraceEvent::ModelUpdate {
                rank: 0,
                d: 500,
                t: 0.0123,
                reps: 7,
                points: 3,
            },
            TraceEvent::PartitionStep {
                iter: 2,
                dist: vec![800, 200],
                imbalance: 0.75,
                units_moved: 300,
            },
            TraceEvent::DynamicConverged {
                steps: 3,
                imbalance: 0.012,
            },
            TraceEvent::Comm {
                rank: 2,
                op: "allgatherv".to_owned(),
                peer: -1,
                bytes: 4096,
                seconds: 0.0031,
                algorithm: "ring".to_owned(),
                rounds: 3,
                lamport: 17,
                gen: 5,
            },
            TraceEvent::Fault {
                rank: 1,
                kind: "retry".to_owned(),
                peer: 3,
                attempt: 2,
                seconds: 0.004,
            },
            TraceEvent::Metrics {
                rank: 0,
                scope: "comm.allgatherv".to_owned(),
                count: 12,
                sum: 0.037,
                buckets: {
                    let mut b = vec![0u64; HISTOGRAM_BUCKETS + 2];
                    b[20] = 5;
                    b[21] = 7;
                    b
                },
                kind: "histogram".to_owned(),
                labels: String::new(),
            },
            TraceEvent::Metrics {
                rank: 0,
                scope: "served_requests_total".to_owned(),
                count: 42,
                sum: 0.0,
                buckets: Vec::new(),
                kind: "counter".to_owned(),
                labels: "op=ingest;outcome=ok".to_owned(),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event() {
        for event in sample_events() {
            let line = event.to_jsonl();
            let back = TraceEvent::from_jsonl(&line).unwrap();
            // Infinity maps through 1e9999 and compares equal; NaN
            // would not, but no event carries NaN here.
            assert_eq!(event, back, "line: {line}");
        }
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        for event in sample_events() {
            let line = event.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(!line.contains('\n'));
            let fields = json::parse_flat_object(&line).unwrap();
            assert_eq!(fields[0].0, "event");
        }
    }

    #[test]
    fn pre_addendum_comm_lines_decode_with_unknown_schedule() {
        // Traces written before the `algorithm`/`rounds` addendum
        // carry neither field; they must still decode (as "unknown").
        let line = "{\"event\":\"comm\",\"rank\":2,\"op\":\"allgatherv\",\
                    \"peer\":-1,\"bytes\":4096,\"seconds\":0.0031}";
        let back = TraceEvent::from_jsonl(line).unwrap();
        assert_eq!(
            back,
            TraceEvent::Comm {
                rank: 2,
                op: "allgatherv".to_owned(),
                peer: -1,
                bytes: 4096,
                seconds: 0.0031,
                algorithm: String::new(),
                rounds: 0,
                lamport: 0,
                gen: 0,
            }
        );
    }

    #[test]
    fn csv_rows_have_stable_column_count() {
        let n_cols = CSV_HEADER.split(',').count();
        assert_eq!(n_cols, CSV_COLUMNS);
        for event in sample_events() {
            let row = event.to_csv_row();
            assert_eq!(
                row.split(',').count(),
                n_cols,
                "row has wrong arity: {row}"
            );
            assert_eq!(row.split(',').next(), Some(event.name()));
        }
    }

    #[test]
    fn csv_rows_round_trip_every_event() {
        for event in sample_events() {
            let row = event.to_csv_row();
            let back = TraceEvent::from_csv_row(&row).unwrap();
            assert_eq!(event, back, "row: {row}");
        }
    }

    #[test]
    fn pre_v3_csv_rows_decode_with_defaults() {
        // A 26-column (v2 + addendum) comm row lacks lamport/gen and
        // the metrics columns entirely.
        let row = "comm,,2,,,,,,,,,,,,,,,,allgatherv,,-1,4096,0.0031,,ring,3";
        assert_eq!(row.split(',').count(), 26);
        let back = TraceEvent::from_csv_row(row).unwrap();
        assert_eq!(
            back,
            TraceEvent::Comm {
                rank: 2,
                op: "allgatherv".to_owned(),
                peer: -1,
                bytes: 4096,
                seconds: 0.0031,
                algorithm: "ring".to_owned(),
                rounds: 3,
                lamport: 0,
                gen: 0,
            }
        );
        assert!(TraceEvent::from_csv_row("comm,oops").is_err());
        assert!(TraceEvent::from_csv_row(&"nope,".repeat(30)).is_err());
    }

    #[test]
    fn pre_v4_metrics_rows_decode_with_defaults() {
        // A 32-column v3 metrics row lacks the `labels` column and
        // the `kind` cell; both must decode as empty.
        let bins = vec!["0"; HISTOGRAM_BUCKETS + 2].join(";");
        let mut cols = vec![String::new(); 32];
        cols[0] = "metrics".to_owned();
        cols[2] = "0".to_owned();
        cols[28] = "comm.send".to_owned();
        cols[29] = "3".to_owned();
        cols[30] = "0.001".to_owned();
        cols[31] = bins;
        let row = cols.join(",");
        assert_eq!(row.split(',').count(), 32);
        match TraceEvent::from_csv_row(&row).unwrap() {
            TraceEvent::Metrics {
                scope,
                count,
                kind,
                labels,
                ..
            } => {
                assert_eq!(scope, "comm.send");
                assert_eq!(count, 3);
                assert_eq!(kind, "");
                assert_eq!(labels, "");
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Likewise for a v3 JSONL metrics line (no kind/labels keys).
        let line = "{\"event\":\"metrics\",\"rank\":0,\"scope\":\"comm.send\",\
                    \"count\":3,\"sum\":0.001,\"buckets\":[1,2]}";
        match TraceEvent::from_jsonl(line).unwrap() {
            TraceEvent::Metrics { kind, labels, .. } => {
                assert_eq!(kind, "");
                assert_eq!(labels, "");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        let n = sample_events().len();
        assert_eq!(sink.len(), n);
        assert_eq!(sink.events(), sample_events());
        assert_eq!(sink.take().len(), n);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_accepts_everything() {
        let sink = NullSink;
        for e in sample_events() {
            sink.record(&e);
        }
        sink.flush().unwrap();
    }

    #[test]
    fn jsonl_sink_writes_header_then_events() {
        let sink = JsonlSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (schema, events) = read_jsonl_trace(text.as_bytes()).unwrap();
        assert_eq!(schema, SCHEMA_VERSION);
        assert_eq!(events, sample_events());
    }

    #[test]
    fn csv_sink_writes_schema_comment_and_header() {
        let sink = CsvSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next(),
            Some(format!("# fupermod-trace schema={SCHEMA_VERSION}").as_str())
        );
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(lines.count(), sample_events().len());
    }

    #[test]
    fn trace_reader_streams_both_encodings() {
        // JSONL
        let sink = JsonlSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let reader = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(reader.schema(), SCHEMA_VERSION);
        assert_eq!(reader.format(), TraceFormat::Jsonl);
        let events: Vec<_> = reader.map(Result::unwrap).collect();
        assert_eq!(events, sample_events());

        // CSV (same events, same decode)
        let sink = CsvSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let reader = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(reader.schema(), SCHEMA_VERSION);
        assert_eq!(reader.format(), TraceFormat::Csv);
        let events: Vec<_> = reader.map(Result::unwrap).collect();
        assert_eq!(events, sample_events());
    }

    #[test]
    fn trace_reader_rejects_future_csv_schema() {
        let csv = format!(
            "# fupermod-trace schema={}\n{CSV_HEADER}\n",
            SCHEMA_VERSION + 1
        );
        assert!(TraceReader::new(csv.as_bytes()).is_err());
        // Unparseable comment line.
        assert!(TraceReader::new("# something else\n".as_bytes()).is_err());
        // Missing column header.
        let csv = format!("# fupermod-trace schema={SCHEMA_VERSION}\n");
        assert!(TraceReader::new(csv.as_bytes()).is_err());
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = LatencyHistogram::new();
        h.record(0.0); // underflow (0 ns)
        h.record(1.5e-9); // 2 ns → bucket 1 (snapshot bin 2)
        h.record(1e-3); // 1e6 ns → bucket 19 (2^19 = 524288 ≤ 1e6 < 2^20)
        h.record(f64::NAN); // ignored
        h.record(-1.0); // ignored
        h.record(1e9); // 1e18 ns → overflow (>= 2^48)
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets.len(), HISTOGRAM_BUCKETS + 2);
        assert_eq!(s.buckets[0], 1); // underflow
        assert_eq!(s.buckets[1 + 1], 1); // 2 ns in bucket k=1
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS + 1], 1); // overflow
        // 1e6 ns: floor(log2(1e6)) = 19
        assert_eq!(s.buckets[1 + 19], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
        assert!(s.mean().unwrap() > 0.0);
        // The median sample (2nd of 4) is the 2 ns one → quantile
        // upper bound 4 ns.
        assert!((s.quantile(0.5).unwrap() - 4e-9).abs() < 1e-18);
        assert_eq!(s.quantile(1.0), Some(f64::INFINITY));
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn metrics_histograms_gate_and_export() {
        let m = Metrics::new();
        // Disabled by default: recording is a no-op.
        m.record_comm_latency("send", 1e-6);
        m.record_bench_rep(1e-3);
        assert_eq!(m.comm_histogram("send").unwrap().count, 0);
        assert_eq!(m.bench_histogram().count, 0);

        m.set_histograms_enabled(true);
        assert!(m.histograms_enabled());
        m.record_comm_latency("send", 1e-6);
        m.record_comm_latency("allgatherv", 2e-6);
        m.record_comm_latency("not-an-op", 3e-6); // ignored
        m.record_bench_rep(1e-3);
        assert_eq!(m.comm_histogram("send").unwrap().count, 1);
        assert_eq!(m.comm_histogram("allgatherv").unwrap().count, 1);
        assert!(m.comm_histogram("not-an-op").is_none());
        assert_eq!(m.bench_histogram().count, 1);

        let sink = MemorySink::new();
        let emitted = m.export_histogram_events(&sink);
        assert_eq!(emitted, 3); // send, allgatherv, bench.rep
        let scopes: Vec<String> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Metrics { scope, .. } => scope.clone(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(scopes, ["comm.send", "comm.allgatherv", "bench.rep"]);
        // Exported events round-trip through both encodings.
        for e in sink.events() {
            assert_eq!(TraceEvent::from_jsonl(&e.to_jsonl()).unwrap(), e);
            assert_eq!(TraceEvent::from_csv_row(&e.to_csv_row()).unwrap(), e);
        }

        m.reset();
        assert_eq!(m.comm_histogram("send").unwrap().count, 0);
        assert_eq!(m.bench_histogram().count, 0);
        assert!(m.histograms_enabled()); // flag survives reset
        m.set_histograms_enabled(false);
    }

    #[test]
    fn reader_rejects_foreign_and_future_traces() {
        assert!(read_jsonl_trace("".as_bytes()).is_err());
        assert!(read_jsonl_trace("{\"hello\":1}\n".as_bytes()).is_err());
        let future = format!(
            "{{\"trace\":\"fupermod\",\"schema\":{}}}\n",
            SCHEMA_VERSION + 1
        );
        assert!(read_jsonl_trace(future.as_bytes()).is_err());
        // Older (v1) traces stay readable.
        let v1 = "{\"trace\":\"fupermod\",\"schema\":1}\n\
                  {\"event\":\"dynamic_converged\",\"steps\":3,\"imbalance\":0.01}\n";
        let (schema, events) = read_jsonl_trace(v1.as_bytes()).unwrap();
        assert_eq!(schema, 1);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        assert!(TraceEvent::from_jsonl("not json").is_err());
        assert!(TraceEvent::from_jsonl("{\"event\":\"nope\"}").is_err());
        assert!(TraceEvent::from_jsonl("{\"event\":\"model_update\"}").is_err());
    }

    #[test]
    fn replay_rebuilds_models_from_trace() {
        use crate::model::PiecewiseModel;
        let events = vec![
            TraceEvent::ModelUpdate {
                rank: 0,
                d: 100,
                t: 1.0,
                reps: 3,
                points: 1,
            },
            TraceEvent::ModelUpdate {
                rank: 1,
                d: 200,
                t: 4.0,
                reps: 3,
                points: 1,
            },
            TraceEvent::PartitionStep {
                iter: 1,
                dist: vec![150, 150],
                imbalance: 0.5,
                units_moved: 50,
            },
            TraceEvent::ModelUpdate {
                rank: 0,
                d: 0,
                t: 0.0,
                reps: 1,
                points: 1,
            },
        ];
        let mut m0 = PiecewiseModel::new();
        let mut m1 = PiecewiseModel::new();
        let mut refs: Vec<&mut dyn Model> = vec![&mut m0, &mut m1];
        let applied = replay_into_models(&events, &mut refs).unwrap();
        assert_eq!(applied, 2);
        assert_eq!(m0.points().len(), 1);
        assert_eq!(m1.points().len(), 1);
        assert!((m0.points()[0].t - 1.0).abs() < 1e-12);

        // Rank out of range is an error.
        let mut only: Vec<&mut dyn Model> = vec![&mut m0];
        assert!(replay_into_models(&events, &mut only).is_err());
    }

    #[test]
    fn metrics_counts_and_resets() {
        let m = Metrics::default();
        m.add_kernel();
        m.add_reps(10);
        m.add_outliers(2);
        m.add_repartition();
        m.add_units_moved(40);
        let s = m.snapshot();
        assert_eq!(
            (
                s.kernels_executed,
                s.total_reps,
                s.outliers_rejected,
                s.repartitions,
                s.units_moved
            ),
            (1, 10, 2, 1, 40)
        );
        assert!(m.summary().contains("reps=10"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = MemorySink::new();
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let sink = &sink;
                scope.spawn(move || {
                    for rep in 0..25 {
                        sink.record(&TraceEvent::BenchmarkSample {
                            rank,
                            d: 10,
                            rep,
                            time: 0.001,
                            ci_rel: 0.5,
                        });
                    }
                });
            }
        });
        assert_eq!(sink.len(), 100);
    }
}
