//! Structured observability for benchmarking and dynamic partitioning.
//!
//! The paper's value proposition is *visibility into measured
//! performance*: `fupermod_benchmark` stops on statistical confidence
//! and `fupermod_dynamic` iterates partition → measure until balanced.
//! This module makes those loops observable as a stream of typed
//! [`TraceEvent`]s emitted through a [`TraceSink`]:
//!
//! * [`Benchmark`](crate::benchmark::Benchmark) emits one
//!   [`TraceEvent::BenchmarkSample`] per repetition and a
//!   [`TraceEvent::BenchmarkDone`] per measurement;
//! * [`DynamicContext`](crate::dynamic::DynamicContext) emits
//!   [`TraceEvent::ModelUpdate`] per absorbed observation,
//!   [`TraceEvent::PartitionStep`] per re-partition, and
//!   [`TraceEvent::DynamicConverged`] once balanced;
//! * [`Partitioner::partition_traced`](crate::partition::Partitioner::partition_traced)
//!   emits a single [`TraceEvent::PartitionStep`] for static partitioning;
//! * the `fupermod-runtime` message-passing layer emits
//!   [`TraceEvent::Comm`] per communication operation and
//!   [`TraceEvent::Fault`] per injected or observed fault
//!   (schema v2 additions).
//!
//! Four sinks are provided: [`NullSink`] (the default — zero work),
//! [`MemorySink`] (in-process inspection and tests), [`JsonlSink`]
//! (one JSON object per line) and [`CsvSink`] (fixed wide columns).
//! Both file encodings are **schema-versioned** ([`SCHEMA_VERSION`])
//! and specified field-by-field in `docs/OBSERVABILITY.md`; the JSONL
//! form round-trips through [`TraceEvent::from_jsonl`] so a recorded
//! trace can be replayed into fresh models ([`replay_into_models`]),
//! giving simulation/prediction work machine-readable ground truth.
//!
//! Everything here is `std`-only and thread-safe: sinks take `&self`
//! and are `Send + Sync`, so the group benchmark's worker threads can
//! share one sink. A process-wide counters facade ([`metrics`])
//! aggregates totals (kernels, repetitions, outliers, repartitions,
//! units moved) for an at-exit summary.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::model::Model;
use crate::{CoreError, Point};

/// Version of the trace schema this build writes (see
/// `docs/OBSERVABILITY.md` for the field-by-field specification).
///
/// v2 adds the `comm` and `fault` event kinds emitted by the
/// `fupermod-runtime` message-passing layer; v1 traces remain
/// readable.
pub const SCHEMA_VERSION: u32 = 2;

/// A typed observability event emitted by the measurement and
/// partitioning machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One benchmark repetition finished.
    BenchmarkSample {
        /// Process rank within its measurement group (0 for single).
        rank: usize,
        /// Problem size being measured, in computation units.
        d: u64,
        /// Repetition index (0-based).
        rep: u32,
        /// Execution time of this repetition, seconds.
        time: f64,
        /// Relative confidence-interval half-width of the mean after
        /// this repetition (`inf` until two samples exist).
        ci_rel: f64,
    },
    /// One statistically controlled measurement finished.
    BenchmarkDone {
        /// Process rank within its measurement group (0 for single).
        rank: usize,
        /// Problem size measured, in computation units.
        d: u64,
        /// Repetitions that survived the outlier filter.
        reps: u32,
        /// Mean execution time over the surviving repetitions, seconds.
        mean: f64,
        /// Standard error of the mean, seconds.
        stderr: f64,
        /// Total wall time spent measuring (all repetitions), seconds.
        elapsed: f64,
        /// Samples rejected by the MAD outlier filter.
        outliers_rejected: u32,
    },
    /// A performance model absorbed an experimental point.
    ModelUpdate {
        /// Process rank owning the model.
        rank: usize,
        /// Problem size of the absorbed point.
        d: u64,
        /// Mean time of the absorbed point, seconds.
        t: f64,
        /// Repetitions behind the absorbed point.
        reps: u32,
        /// Points in the model after the update.
        points: usize,
    },
    /// The partitioner produced a (new) distribution.
    PartitionStep {
        /// 1-based iteration of the dynamic loop (0 for a static,
        /// one-shot partitioning).
        iter: u64,
        /// Assigned computation units per process.
        dist: Vec<u64>,
        /// Relative imbalance `(t_max - t_min)/t_max` of the observed
        /// times that drove this step (predicted imbalance for static
        /// partitioning).
        imbalance: f64,
        /// Computation units that changed owner relative to the
        /// previous distribution.
        units_moved: u64,
    },
    /// The dynamic loop reached its balance tolerance (or the
    /// distribution stopped moving).
    DynamicConverged {
        /// Dynamic-loop iterations it took.
        steps: u64,
        /// Final relative imbalance.
        imbalance: f64,
    },
    /// A runtime communication operation completed (schema v2).
    Comm {
        /// Rank that performed the operation.
        rank: usize,
        /// Operation tag: `send`, `recv`, `barrier`, `bcast`,
        /// `scatterv`, `gatherv`, `allgatherv`, `allreduce`.
        op: String,
        /// Peer rank (or collective root); `-1` when not applicable.
        peer: i64,
        /// Payload bytes moved by this rank in the operation.
        bytes: u64,
        /// Wall (or virtual) seconds the operation took on this rank.
        seconds: f64,
        /// Collective schedule that carried the operation: `hub`,
        /// `ring`, `tree`, or `direct` for point-to-point traffic.
        /// Empty string when unknown (pre-addendum traces).
        algorithm: String,
        /// Communication rounds the schedule used (`1` for
        /// point-to-point, `0` for degenerate single-rank
        /// collectives or unknown/pre-addendum traces).
        rounds: u64,
    },
    /// A fault was injected or observed by the runtime (schema v2).
    Fault {
        /// Rank where the fault manifested.
        rank: usize,
        /// Fault tag: `delay`, `drop`, `retry`, `straggler`, `death`,
        /// `timeout`, `degraded`.
        kind: String,
        /// Peer rank involved; `-1` when not applicable.
        peer: i64,
        /// Retry attempt number (0 for non-retry faults).
        attempt: u32,
        /// Seconds of delay/backoff attributable to the fault
        /// (0 when not applicable).
        seconds: f64,
    },
}

impl TraceEvent {
    /// Stable, lowercase event tag used by both encodings.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::BenchmarkSample { .. } => "benchmark_sample",
            TraceEvent::BenchmarkDone { .. } => "benchmark_done",
            TraceEvent::ModelUpdate { .. } => "model_update",
            TraceEvent::PartitionStep { .. } => "partition_step",
            TraceEvent::DynamicConverged { .. } => "dynamic_converged",
            TraceEvent::Comm { .. } => "comm",
            TraceEvent::Fault { .. } => "fault",
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline),
    /// schema version [`SCHEMA_VERSION`].
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            TraceEvent::BenchmarkSample {
                rank,
                d,
                rep,
                time,
                ci_rel,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_num(&mut s, "d", *d as f64);
                push_num(&mut s, "rep", f64::from(*rep));
                push_float(&mut s, "time", *time);
                push_float(&mut s, "ci_rel", *ci_rel);
            }
            TraceEvent::BenchmarkDone {
                rank,
                d,
                reps,
                mean,
                stderr,
                elapsed,
                outliers_rejected,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_num(&mut s, "d", *d as f64);
                push_num(&mut s, "reps", f64::from(*reps));
                push_float(&mut s, "mean", *mean);
                push_float(&mut s, "stderr", *stderr);
                push_float(&mut s, "elapsed", *elapsed);
                push_num(&mut s, "outliers_rejected", f64::from(*outliers_rejected));
            }
            TraceEvent::ModelUpdate {
                rank,
                d,
                t,
                reps,
                points,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_num(&mut s, "d", *d as f64);
                push_float(&mut s, "t", *t);
                push_num(&mut s, "reps", f64::from(*reps));
                push_num(&mut s, "points", *points as f64);
            }
            TraceEvent::PartitionStep {
                iter,
                dist,
                imbalance,
                units_moved,
            } => {
                push_num(&mut s, "iter", *iter as f64);
                s.push_str(",\"dist\":[");
                for (i, d) in dist.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{d}");
                }
                s.push(']');
                push_float(&mut s, "imbalance", *imbalance);
                push_num(&mut s, "units_moved", *units_moved as f64);
            }
            TraceEvent::DynamicConverged { steps, imbalance } => {
                push_num(&mut s, "steps", *steps as f64);
                push_float(&mut s, "imbalance", *imbalance);
            }
            TraceEvent::Comm {
                rank,
                op,
                peer,
                bytes,
                seconds,
                algorithm,
                rounds,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_str(&mut s, "op", op);
                push_num(&mut s, "peer", *peer as f64);
                push_num(&mut s, "bytes", *bytes as f64);
                push_float(&mut s, "seconds", *seconds);
                push_str(&mut s, "algorithm", algorithm);
                push_num(&mut s, "rounds", *rounds as f64);
            }
            TraceEvent::Fault {
                rank,
                kind,
                peer,
                attempt,
                seconds,
            } => {
                push_num(&mut s, "rank", *rank as f64);
                push_str(&mut s, "kind", kind);
                push_num(&mut s, "peer", *peer as f64);
                push_num(&mut s, "attempt", f64::from(*attempt));
                push_float(&mut s, "seconds", *seconds);
            }
        }
        s.push('}');
        s
    }

    /// Decodes one JSONL event line produced by [`TraceEvent::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] on malformed JSON, an unknown event
    /// tag, or missing fields.
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, CoreError> {
        let fields = json::parse_flat_object(line)?;
        let tag = fields
            .iter()
            .find(|(k, _)| k == "event")
            .and_then(|(_, v)| v.as_str())
            .ok_or_else(|| CoreError::Trace("missing \"event\" tag".to_owned()))?
            .to_owned();
        let num = |key: &str| -> Result<f64, CoreError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_f64())
                .ok_or_else(|| {
                    CoreError::Trace(format!("event '{tag}': missing numeric field '{key}'"))
                })
        };
        let text = |key: &str| -> Result<String, CoreError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| {
                    CoreError::Trace(format!("event '{tag}': missing string field '{key}'"))
                })
        };
        match tag.as_str() {
            "benchmark_sample" => Ok(TraceEvent::BenchmarkSample {
                rank: num("rank")? as usize,
                d: num("d")? as u64,
                rep: num("rep")? as u32,
                time: num("time")?,
                ci_rel: num("ci_rel")?,
            }),
            "benchmark_done" => Ok(TraceEvent::BenchmarkDone {
                rank: num("rank")? as usize,
                d: num("d")? as u64,
                reps: num("reps")? as u32,
                mean: num("mean")?,
                stderr: num("stderr")?,
                elapsed: num("elapsed")?,
                outliers_rejected: num("outliers_rejected")? as u32,
            }),
            "model_update" => Ok(TraceEvent::ModelUpdate {
                rank: num("rank")? as usize,
                d: num("d")? as u64,
                t: num("t")?,
                reps: num("reps")? as u32,
                points: num("points")? as usize,
            }),
            "partition_step" => {
                let dist = fields
                    .iter()
                    .find(|(k, _)| k == "dist")
                    .and_then(|(_, v)| v.as_array())
                    .ok_or_else(|| {
                        CoreError::Trace("partition_step: missing 'dist' array".to_owned())
                    })?
                    .iter()
                    .map(|x| *x as u64)
                    .collect();
                Ok(TraceEvent::PartitionStep {
                    iter: num("iter")? as u64,
                    dist,
                    imbalance: num("imbalance")?,
                    units_moved: num("units_moved")? as u64,
                })
            }
            "dynamic_converged" => Ok(TraceEvent::DynamicConverged {
                steps: num("steps")? as u64,
                imbalance: num("imbalance")?,
            }),
            "comm" => Ok(TraceEvent::Comm {
                rank: num("rank")? as usize,
                op: text("op")?,
                peer: num("peer")? as i64,
                bytes: num("bytes")? as u64,
                seconds: num("seconds")?,
                // The `algorithm`/`rounds` fields are a schema-v2
                // addendum (PR 4); traces written before it simply
                // lack them. Decode those as "unknown" rather than
                // rejecting the line.
                algorithm: text("algorithm").unwrap_or_default(),
                rounds: num("rounds").map(|r| r as u64).unwrap_or(0),
            }),
            "fault" => Ok(TraceEvent::Fault {
                rank: num("rank")? as usize,
                kind: text("kind")?,
                peer: num("peer")? as i64,
                attempt: num("attempt")? as u32,
                seconds: num("seconds")?,
            }),
            other => Err(CoreError::Trace(format!("unknown event tag '{other}'"))),
        }
    }

    /// Encodes the event as one CSV data row matching [`CSV_HEADER`].
    pub fn to_csv_row(&self) -> String {
        // Columns: event,iter,rank,d,rep,reps,time,mean,stderr,ci_rel,
        //          elapsed,outliers_rejected,t,points,imbalance,
        //          units_moved,steps,dist,op,kind,peer,bytes,seconds,
        //          attempt,algorithm,rounds
        let mut c: [String; 26] = Default::default();
        c[0] = self.name().to_owned();
        match self {
            TraceEvent::BenchmarkSample {
                rank,
                d,
                rep,
                time,
                ci_rel,
            } => {
                c[2] = rank.to_string();
                c[3] = d.to_string();
                c[4] = rep.to_string();
                c[6] = fmt_float(*time);
                c[9] = fmt_float(*ci_rel);
            }
            TraceEvent::BenchmarkDone {
                rank,
                d,
                reps,
                mean,
                stderr,
                elapsed,
                outliers_rejected,
            } => {
                c[2] = rank.to_string();
                c[3] = d.to_string();
                c[5] = reps.to_string();
                c[7] = fmt_float(*mean);
                c[8] = fmt_float(*stderr);
                c[10] = fmt_float(*elapsed);
                c[11] = outliers_rejected.to_string();
            }
            TraceEvent::ModelUpdate {
                rank,
                d,
                t,
                reps,
                points,
            } => {
                c[2] = rank.to_string();
                c[3] = d.to_string();
                c[5] = reps.to_string();
                c[12] = fmt_float(*t);
                c[13] = points.to_string();
            }
            TraceEvent::PartitionStep {
                iter,
                dist,
                imbalance,
                units_moved,
            } => {
                c[1] = iter.to_string();
                c[14] = fmt_float(*imbalance);
                c[15] = units_moved.to_string();
                c[17] = dist
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(";");
            }
            TraceEvent::DynamicConverged { steps, imbalance } => {
                c[14] = fmt_float(*imbalance);
                c[16] = steps.to_string();
            }
            TraceEvent::Comm {
                rank,
                op,
                peer,
                bytes,
                seconds,
                algorithm,
                rounds,
            } => {
                c[2] = rank.to_string();
                c[18] = op.clone();
                c[20] = peer.to_string();
                c[21] = bytes.to_string();
                c[22] = fmt_float(*seconds);
                c[24] = algorithm.clone();
                c[25] = rounds.to_string();
            }
            TraceEvent::Fault {
                rank,
                kind,
                peer,
                attempt,
                seconds,
            } => {
                c[2] = rank.to_string();
                c[19] = kind.clone();
                c[20] = peer.to_string();
                c[22] = fmt_float(*seconds);
                c[23] = attempt.to_string();
            }
        }
        c.join(",")
    }
}

/// Column header row of the CSV encoding (preceded in files by the
/// `# fupermod-trace schema=2` comment line). The six trailing
/// columns starting at `op` (`op..attempt`) are the schema-v2
/// additions for the `comm`/`fault` events; `algorithm,rounds` are
/// the schema-v2 *addendum* columns describing the collective
/// schedule a `comm` event used (empty/`0` for pre-addendum rows and
/// non-`comm` events).
pub const CSV_HEADER: &str = "event,iter,rank,d,rep,reps,time,mean,stderr,ci_rel,\
elapsed,outliers_rejected,t,points,imbalance,units_moved,steps,dist,\
op,kind,peer,bytes,seconds,attempt,algorithm,rounds";

/// Formats a float for both encodings: shortest round-trip via Rust's
/// `Display`, with non-finite values mapped to `null`-compatible text.
fn fmt_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "null".to_owned()
    } else if v > 0.0 {
        "1e9999".to_owned() // parses back to +inf
    } else {
        "-1e9999".to_owned()
    }
}

fn push_float(s: &mut String, key: &str, v: f64) {
    let _ = write!(s, ",\"{key}\":{}", fmt_float(v));
}

fn push_num(s: &mut String, key: &str, v: f64) {
    let _ = write!(s, ",\"{key}\":{v}");
}

/// Pushes a string field. Trace string fields are restricted to the
/// fixed ASCII tags listed on [`TraceEvent`] (no quotes or escapes),
/// matching the escape-free flat-JSON parser.
fn push_str(s: &mut String, key: &str, v: &str) {
    debug_assert!(
        !v.contains(['"', '\\', '\n']),
        "trace string fields must be escape-free tags"
    );
    let _ = write!(s, ",\"{key}\":\"{v}\"");
}

/// Minimal flat-JSON machinery for the trace subsystem (std-only; the
/// build environment is offline, so no serde_json).
mod json {
    use crate::CoreError;

    /// A parsed JSON value restricted to what trace lines contain.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// A number (or `null`, mapped to NaN).
        Num(f64),
        /// A string.
        Str(String),
        /// An array of numbers.
        Arr(Vec<f64>),
    }

    impl Value {
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[f64]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    /// Parses one flat JSON object (`{"k": v, ...}` where `v` is a
    /// number, string, `null`, or array of numbers) into key/value
    /// pairs in source order.
    pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, CoreError> {
        let mut p = Parser {
            bytes: line.trim().as_bytes(),
            pos: 0,
        };
        p.expect(b'{')?;
        let mut out = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            return Ok(out);
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
        Ok(out)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> CoreError {
            CoreError::Trace(format!("bad trace JSON at byte {}: {msg}", self.pos))
        }
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn next(&mut self) -> Option<u8> {
            let b = self.peek();
            self.pos += 1;
            b
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t')) {
                self.pos += 1;
            }
        }
        fn expect(&mut self, want: u8) -> Result<(), CoreError> {
            self.skip_ws();
            if self.next() == Some(want) {
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", want as char)))
            }
        }
        fn string(&mut self) -> Result<String, CoreError> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?
                        .to_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                if b == b'\\' {
                    return Err(self.err("escapes are not used by trace lines"));
                }
                self.pos += 1;
            }
            Err(self.err("unterminated string"))
        }
        fn number(&mut self) -> Result<f64, CoreError> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| self.err("malformed number"))
        }
        fn value(&mut self) -> Result<Value, CoreError> {
            match self.peek() {
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => {
                    self.pos += 1;
                    let mut arr = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    loop {
                        self.skip_ws();
                        arr.push(self.number()?);
                        self.skip_ws();
                        match self.next() {
                            Some(b',') => continue,
                            Some(b']') => break,
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                    Ok(Value::Arr(arr))
                }
                Some(b'n') => {
                    if self.bytes[self.pos..].starts_with(b"null") {
                        self.pos += 4;
                        Ok(Value::Num(f64::NAN))
                    } else {
                        Err(self.err("unknown literal"))
                    }
                }
                _ => Ok(Value::Num(self.number()?)),
            }
        }
    }
}

/// Destination for [`TraceEvent`]s.
///
/// Sinks must be cheap when inactive (the default [`NullSink`] is a
/// no-op) and thread-safe: `record` takes `&self` so the synchronised
/// group benchmark can emit from several worker threads at once.
pub trait TraceSink: Send + Sync {
    /// Records one event. Implementations must not panic on I/O
    /// failure — store the error and surface it from [`TraceSink::flush`].
    fn record(&self, event: &TraceEvent);

    /// Flushes buffered output and surfaces any deferred write error.
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered since the last flush.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The default sink: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&self, _event: &TraceEvent) {}
}

/// A shared static [`NullSink`] for default wiring.
pub fn null_sink() -> &'static NullSink {
    static NULL: NullSink = NullSink;
    &NULL
}

/// Collects events in memory — for tests and in-process analysis.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the recorded events, in order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink poisoned"))
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("trace sink poisoned")
            .push(event.clone());
    }
}

struct WriterState<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write> WriterState<W> {
    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Streams events as JSON Lines: a `{"trace":"fupermod","schema":2}`
/// header line followed by one object per event.
pub struct JsonlSink<W: Write + Send> {
    state: Mutex<WriterState<W>>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer; immediately writes the schema header line.
    pub fn new(writer: W) -> Self {
        let mut state = WriterState {
            writer,
            error: None,
        };
        state.write_line(&format!(
            "{{\"trace\":\"fupermod\",\"schema\":{SCHEMA_VERSION}}}"
        ));
        Self {
            state: Mutex::new(state),
        }
    }

    /// Consumes the sink, flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, if any.
    pub fn into_inner(self) -> io::Result<W> {
        let mut state = self.state.into_inner().expect("trace sink poisoned");
        state.flush()?;
        Ok(state.writer)
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        self.state
            .lock()
            .expect("trace sink poisoned")
            .write_line(&event.to_jsonl());
    }

    fn flush(&self) -> io::Result<()> {
        self.state.lock().expect("trace sink poisoned").flush()
    }
}

/// Streams events as CSV: a `# fupermod-trace schema=2` comment line,
/// the [`CSV_HEADER`] row, then one fixed-width row per event.
pub struct CsvSink<W: Write + Send> {
    state: Mutex<WriterState<W>>,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) a CSV trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> CsvSink<W> {
    /// Wraps a writer; immediately writes the schema comment and the
    /// column header row.
    pub fn new(writer: W) -> Self {
        let mut state = WriterState {
            writer,
            error: None,
        };
        state.write_line(&format!("# fupermod-trace schema={SCHEMA_VERSION}"));
        state.write_line(CSV_HEADER);
        Self {
            state: Mutex::new(state),
        }
    }

    /// Consumes the sink, flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, if any.
    pub fn into_inner(self) -> io::Result<W> {
        let mut state = self.state.into_inner().expect("trace sink poisoned");
        state.flush()?;
        Ok(state.writer)
    }
}

impl<W: Write + Send> TraceSink for CsvSink<W> {
    fn record(&self, event: &TraceEvent) {
        self.state
            .lock()
            .expect("trace sink poisoned")
            .write_line(&event.to_csv_row());
    }

    fn flush(&self) -> io::Result<()> {
        self.state.lock().expect("trace sink poisoned").flush()
    }
}

/// Parses a JSONL trace: validates the header line and decodes every
/// event, returning `(schema_version, events)`.
///
/// # Errors
///
/// Returns [`CoreError::Trace`] on I/O failure, a missing/foreign
/// header, an unsupported schema version, or any malformed event line.
pub fn read_jsonl_trace<R: BufRead>(reader: R) -> Result<(u32, Vec<TraceEvent>), CoreError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CoreError::Trace("empty trace file".to_owned()))?
        .map_err(|e| CoreError::Trace(format!("trace read failed: {e}")))?;
    let fields = json::parse_flat_object(&header)?;
    if fields
        .iter()
        .find(|(k, _)| k == "trace")
        .and_then(|(_, v)| v.as_str())
        != Some("fupermod")
    {
        return Err(CoreError::Trace(
            "not a fupermod trace (missing header line)".to_owned(),
        ));
    }
    let schema = fields
        .iter()
        .find(|(k, _)| k == "schema")
        .and_then(|(_, v)| v.as_f64())
        .ok_or_else(|| CoreError::Trace("header missing schema version".to_owned()))?
        as u32;
    if schema > SCHEMA_VERSION {
        return Err(CoreError::Trace(format!(
            "trace schema {schema} is newer than supported {SCHEMA_VERSION}"
        )));
    }
    let mut events = Vec::new();
    for line in lines {
        let line = line.map_err(|e| CoreError::Trace(format!("trace read failed: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(TraceEvent::from_jsonl(&line)?);
    }
    Ok((schema, events))
}

/// Replays the `model_update` events of a recorded trace into fresh
/// models (one per rank), reconstructing the partial models a dynamic
/// run built — the machine-readable ground truth simulation-based
/// prediction needs. Returns the number of points applied.
///
/// # Errors
///
/// Propagates model-update failures and rejects ranks outside
/// `models`.
pub fn replay_into_models(
    events: &[TraceEvent],
    models: &mut [&mut dyn Model],
) -> Result<usize, CoreError> {
    let mut applied = 0;
    for event in events {
        if let TraceEvent::ModelUpdate {
            rank, d, t, reps, ..
        } = event
        {
            let n_models = models.len();
            let model = models.get_mut(*rank).ok_or_else(|| {
                CoreError::Trace(format!(
                    "trace refers to rank {rank} but only {n_models} models were supplied"
                ))
            })?;
            if *d == 0 {
                continue; // idle probe: carries no speed information
            }
            model.update(Point {
                d: *d,
                t: *t,
                reps: *reps,
                ci: 0.0,
            })?;
            applied += 1;
        }
    }
    Ok(applied)
}

/// Process-wide observability counters, updated by the measurement and
/// partitioning machinery regardless of the configured sink.
#[derive(Debug, Default)]
pub struct Metrics {
    kernels_executed: AtomicU64,
    total_reps: AtomicU64,
    outliers_rejected: AtomicU64,
    repartitions: AtomicU64,
    units_moved: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Kernel measurement sessions (contexts) executed.
    pub kernels_executed: u64,
    /// Total benchmark repetitions across all measurements.
    pub total_reps: u64,
    /// Samples rejected by MAD outlier filtering.
    pub outliers_rejected: u64,
    /// Partitioner invocations that produced a distribution.
    pub repartitions: u64,
    /// Computation units that changed owner across all dynamic steps.
    pub units_moved: u64,
}

impl Metrics {
    pub(crate) fn add_kernel(&self) {
        self.kernels_executed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_reps(&self, n: u64) {
        self.total_reps.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_outliers(&self, n: u64) {
        self.outliers_rejected.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_repartition(&self) {
        self.repartitions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn add_units_moved(&self, n: u64) {
        self.units_moved.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kernels_executed: self.kernels_executed.load(Ordering::Relaxed),
            total_reps: self.total_reps.load(Ordering::Relaxed),
            outliers_rejected: self.outliers_rejected.load(Ordering::Relaxed),
            repartitions: self.repartitions.load(Ordering::Relaxed),
            units_moved: self.units_moved.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (tests and long-lived processes).
    pub fn reset(&self) {
        self.kernels_executed.store(0, Ordering::Relaxed);
        self.total_reps.store(0, Ordering::Relaxed);
        self.outliers_rejected.store(0, Ordering::Relaxed);
        self.repartitions.store(0, Ordering::Relaxed);
        self.units_moved.store(0, Ordering::Relaxed);
    }

    /// One-line human-readable summary for process-exit reporting.
    pub fn summary(&self) -> String {
        let s = self.snapshot();
        format!(
            "fupermod metrics: kernels={} reps={} outliers_rejected={} repartitions={} units_moved={}",
            s.kernels_executed, s.total_reps, s.outliers_rejected, s.repartitions, s.units_moved
        )
    }
}

/// The process-wide [`Metrics`] instance.
pub fn metrics() -> &'static Metrics {
    static METRICS: Metrics = Metrics {
        kernels_executed: AtomicU64::new(0),
        total_reps: AtomicU64::new(0),
        outliers_rejected: AtomicU64::new(0),
        repartitions: AtomicU64::new(0),
        units_moved: AtomicU64::new(0),
    };
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::BenchmarkSample {
                rank: 1,
                d: 500,
                rep: 0,
                time: 0.0125,
                ci_rel: f64::INFINITY,
            },
            TraceEvent::BenchmarkDone {
                rank: 1,
                d: 500,
                reps: 7,
                mean: 0.0123,
                stderr: 0.0002,
                elapsed: 0.0861,
                outliers_rejected: 1,
            },
            TraceEvent::ModelUpdate {
                rank: 0,
                d: 500,
                t: 0.0123,
                reps: 7,
                points: 3,
            },
            TraceEvent::PartitionStep {
                iter: 2,
                dist: vec![800, 200],
                imbalance: 0.75,
                units_moved: 300,
            },
            TraceEvent::DynamicConverged {
                steps: 3,
                imbalance: 0.012,
            },
            TraceEvent::Comm {
                rank: 2,
                op: "allgatherv".to_owned(),
                peer: -1,
                bytes: 4096,
                seconds: 0.0031,
                algorithm: "ring".to_owned(),
                rounds: 3,
            },
            TraceEvent::Fault {
                rank: 1,
                kind: "retry".to_owned(),
                peer: 3,
                attempt: 2,
                seconds: 0.004,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_event() {
        for event in sample_events() {
            let line = event.to_jsonl();
            let back = TraceEvent::from_jsonl(&line).unwrap();
            // Infinity maps through 1e9999 and compares equal; NaN
            // would not, but no event carries NaN here.
            assert_eq!(event, back, "line: {line}");
        }
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        for event in sample_events() {
            let line = event.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(!line.contains('\n'));
            let fields = json::parse_flat_object(&line).unwrap();
            assert_eq!(fields[0].0, "event");
        }
    }

    #[test]
    fn pre_addendum_comm_lines_decode_with_unknown_schedule() {
        // Traces written before the `algorithm`/`rounds` addendum
        // carry neither field; they must still decode (as "unknown").
        let line = "{\"event\":\"comm\",\"rank\":2,\"op\":\"allgatherv\",\
                    \"peer\":-1,\"bytes\":4096,\"seconds\":0.0031}";
        let back = TraceEvent::from_jsonl(line).unwrap();
        assert_eq!(
            back,
            TraceEvent::Comm {
                rank: 2,
                op: "allgatherv".to_owned(),
                peer: -1,
                bytes: 4096,
                seconds: 0.0031,
                algorithm: String::new(),
                rounds: 0,
            }
        );
    }

    #[test]
    fn csv_rows_have_stable_column_count() {
        let n_cols = CSV_HEADER.split(',').count();
        assert_eq!(n_cols, 26);
        for event in sample_events() {
            let row = event.to_csv_row();
            assert_eq!(
                row.split(',').count(),
                n_cols,
                "row has wrong arity: {row}"
            );
            assert_eq!(row.split(',').next(), Some(event.name()));
        }
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.len(), 7);
        assert_eq!(sink.events(), sample_events());
        assert_eq!(sink.take().len(), 7);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_accepts_everything() {
        let sink = NullSink;
        for e in sample_events() {
            sink.record(&e);
        }
        sink.flush().unwrap();
    }

    #[test]
    fn jsonl_sink_writes_header_then_events() {
        let sink = JsonlSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let (schema, events) = read_jsonl_trace(text.as_bytes()).unwrap();
        assert_eq!(schema, SCHEMA_VERSION);
        assert_eq!(events, sample_events());
    }

    #[test]
    fn csv_sink_writes_schema_comment_and_header() {
        let sink = CsvSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next(),
            Some(format!("# fupermod-trace schema={SCHEMA_VERSION}").as_str())
        );
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert_eq!(lines.count(), sample_events().len());
    }

    #[test]
    fn reader_rejects_foreign_and_future_traces() {
        assert!(read_jsonl_trace("".as_bytes()).is_err());
        assert!(read_jsonl_trace("{\"hello\":1}\n".as_bytes()).is_err());
        let future = format!(
            "{{\"trace\":\"fupermod\",\"schema\":{}}}\n",
            SCHEMA_VERSION + 1
        );
        assert!(read_jsonl_trace(future.as_bytes()).is_err());
        // Older (v1) traces stay readable.
        let v1 = "{\"trace\":\"fupermod\",\"schema\":1}\n\
                  {\"event\":\"dynamic_converged\",\"steps\":3,\"imbalance\":0.01}\n";
        let (schema, events) = read_jsonl_trace(v1.as_bytes()).unwrap();
        assert_eq!(schema, 1);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        assert!(TraceEvent::from_jsonl("not json").is_err());
        assert!(TraceEvent::from_jsonl("{\"event\":\"nope\"}").is_err());
        assert!(TraceEvent::from_jsonl("{\"event\":\"model_update\"}").is_err());
    }

    #[test]
    fn replay_rebuilds_models_from_trace() {
        use crate::model::PiecewiseModel;
        let events = vec![
            TraceEvent::ModelUpdate {
                rank: 0,
                d: 100,
                t: 1.0,
                reps: 3,
                points: 1,
            },
            TraceEvent::ModelUpdate {
                rank: 1,
                d: 200,
                t: 4.0,
                reps: 3,
                points: 1,
            },
            TraceEvent::PartitionStep {
                iter: 1,
                dist: vec![150, 150],
                imbalance: 0.5,
                units_moved: 50,
            },
            TraceEvent::ModelUpdate {
                rank: 0,
                d: 0,
                t: 0.0,
                reps: 1,
                points: 1,
            },
        ];
        let mut m0 = PiecewiseModel::new();
        let mut m1 = PiecewiseModel::new();
        let mut refs: Vec<&mut dyn Model> = vec![&mut m0, &mut m1];
        let applied = replay_into_models(&events, &mut refs).unwrap();
        assert_eq!(applied, 2);
        assert_eq!(m0.points().len(), 1);
        assert_eq!(m1.points().len(), 1);
        assert!((m0.points()[0].t - 1.0).abs() < 1e-12);

        // Rank out of range is an error.
        let mut only: Vec<&mut dyn Model> = vec![&mut m0];
        assert!(replay_into_models(&events, &mut only).is_err());
    }

    #[test]
    fn metrics_counts_and_resets() {
        let m = Metrics::default();
        m.add_kernel();
        m.add_reps(10);
        m.add_outliers(2);
        m.add_repartition();
        m.add_units_moved(40);
        let s = m.snapshot();
        assert_eq!(
            (
                s.kernels_executed,
                s.total_reps,
                s.outliers_rejected,
                s.repartitions,
                s.units_moved
            ),
            (1, 10, 2, 1, 40)
        );
        assert!(m.summary().contains("reps=10"));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = MemorySink::new();
        std::thread::scope(|scope| {
            for rank in 0..4 {
                let sink = &sink;
                scope.spawn(move || {
                    for rep in 0..25 {
                        sink.record(&TraceEvent::BenchmarkSample {
                            rank,
                            d: 10,
                            rep,
                            time: 0.001,
                            ci_rel: 0.5,
                        });
                    }
                });
            }
        });
        assert_eq!(sink.len(), 100);
    }
}
