use serde::{Deserialize, Serialize};

use fupermod_num::interp::{AkimaSpline, Interpolation};

use super::{insert_point, insert_point_indexed, Model, Refresh};
use crate::{CoreError, Point};

/// The Akima-spline functional performance model of Rychkov et al.
/// \[15\]: the time function is interpolated by an Akima spline through
/// the experimental points, anchored at the origin (`t(0) = 0`).
///
/// Unlike [`PiecewiseModel`](super::PiecewiseModel) there are no shape
/// restrictions — real, non-canonical speed functions (Fig. 2(b) of the
/// paper) are represented faithfully — and the interpolant has a
/// continuous first derivative, which the Newton-based numerical
/// partitioner relies on.
///
/// With a single experimental point the model degenerates to the
/// constant model (a line through the origin).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AkimaModel {
    points: Vec<Point>,
    spline: Option<AkimaSpline>,
}

impl AkimaModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh(&mut self) -> Result<(), CoreError> {
        if self.points.is_empty() {
            self.spline = None;
            return Ok(());
        }
        // Anchor the time function at the origin: zero units take zero
        // time. This both reflects reality and gives the spline (and
        // the solvers probing small sizes) sane behaviour below the
        // first measured point.
        let mut xs = Vec::with_capacity(self.points.len() + 1);
        let mut ys = Vec::with_capacity(self.points.len() + 1);
        xs.push(0.0);
        ys.push(0.0);
        for p in &self.points {
            xs.push(p.d as f64);
            ys.push(p.t);
        }
        self.spline = Some(AkimaSpline::new(&xs, &ys).map_err(CoreError::from)?);
        Ok(())
    }

    /// After the point at sorted index `i` changed (same size, new
    /// time), patch the matching spline node instead of rebuilding.
    /// Node `i + 1` because the spline is anchored at the origin.
    /// Bit-identical to [`Self::refresh`] by the `AkimaSpline::set_y`
    /// contract; falls back to a rebuild when no spline exists yet.
    fn patch_node(&mut self, i: usize) -> Result<Refresh, CoreError> {
        match self.spline.as_mut() {
            Some(spline) if spline.xs().len() == self.points.len() + 1 => {
                spline
                    .set_y(i + 1, self.points[i].t)
                    .map_err(CoreError::from)?;
                Ok(Refresh::Patched)
            }
            _ => {
                self.refresh()?;
                Ok(Refresh::Rebuilt)
            }
        }
    }

    /// Adds (or merges) an experimental point exactly like
    /// [`Model::update`], but refreshes the approximation
    /// *incrementally* when it can: a measurement merging into an
    /// already-known size moves one spline node, so only the affected
    /// Akima window is recomputed (O(1)); a new size still rebuilds
    /// (O(n)). The resulting model is **bit-identical** to the
    /// `update` path either way — the returned [`Refresh`] only
    /// reports which path ran (the model store's refresh counters and
    /// the `store_serve` bench consume it).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] on an invalid point, like
    /// [`Model::update`].
    pub fn absorb(&mut self, point: Point) -> Result<Refresh, CoreError> {
        match insert_point_indexed(&mut self.points, point)? {
            None => Ok(Refresh::Patched), // zero-size: nothing moved
            Some((i, true)) => self.patch_node(i),
            Some((_, false)) => {
                self.refresh()?;
                Ok(Refresh::Rebuilt)
            }
        }
    }

    /// Replaces the experimental point for `point.d` wholesale (no
    /// weighted merge), inserting it if the size is new, and refreshes
    /// incrementally like [`Self::absorb`]. This is the entry point
    /// for maintainers that own the per-size statistics themselves —
    /// the model store recomputes each point from its
    /// `IncrementalStats` sample and pushes the *result* here, so the
    /// merge arithmetic must not run twice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] on an invalid point.
    pub fn set_point(&mut self, point: Point) -> Result<Refresh, CoreError> {
        if !point.t.is_finite() || (point.d > 0 && point.t <= 0.0) || point.t < 0.0 {
            return Err(CoreError::Model(format!(
                "invalid experimental point: d={}, t={}",
                point.d, point.t
            )));
        }
        if point.d == 0 {
            return Ok(Refresh::Patched);
        }
        match self.points.binary_search_by(|p| p.d.cmp(&point.d)) {
            Ok(i) => {
                self.points[i] = point;
                self.patch_node(i)
            }
            Err(i) => {
                self.points.insert(i, point);
                self.refresh()?;
                Ok(Refresh::Rebuilt)
            }
        }
    }

    /// A floor for predicted times: a tiny fraction of the fastest
    /// observed per-unit time, so spline undershoot near the origin can
    /// never produce zero or negative times (which would blow up
    /// speeds).
    fn time_floor(&self, x: f64) -> f64 {
        let best: f64 = self
            .points
            .iter()
            .map(|p| p.t / p.d as f64)
            .fold(f64::INFINITY, f64::min);
        1e-3 * best * x
    }
}

impl Model for AkimaModel {
    fn points(&self) -> &[Point] {
        &self.points
    }

    fn update(&mut self, point: Point) -> Result<(), CoreError> {
        insert_point(&mut self.points, point)?;
        self.refresh()
    }

    fn time(&self, x: f64) -> Option<f64> {
        let spline = self.spline.as_ref()?;
        if x <= 0.0 {
            return Some(0.0);
        }
        Some(spline.value(x).max(self.time_floor(x)))
    }

    fn time_derivative(&self, x: f64) -> Option<f64> {
        let spline = self.spline.as_ref()?;
        Some(spline.derivative(x.max(0.0)))
    }

    fn speed(&self, x: f64) -> Option<f64> {
        if x <= 0.0 {
            // Continuous extension: lim_{x→0} x / t(x) = 1 / t'(0).
            let d0 = self.time_derivative(0.0)?;
            return Some(if d0 > 0.0 { 1.0 / d0 } else { 0.0 });
        }
        let t = self.time(x)?;
        Some(x / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_from(data: &[(u64, f64)]) -> AkimaModel {
        let mut m = AkimaModel::new();
        for &(d, t) in data {
            m.update(Point::single(d, t)).unwrap();
        }
        m
    }

    #[test]
    fn single_point_is_a_line_through_origin() {
        let m = model_from(&[(100, 2.0)]);
        assert!((m.time(50.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.time(200.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((m.speed(10.0).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn interpolates_measured_points_exactly() {
        let data = [(10u64, 0.5), (50, 3.0), (200, 20.0), (800, 160.0)];
        let m = model_from(&data);
        for &(d, t) in &data {
            assert!(
                (m.time(d as f64).unwrap() - t).abs() < 1e-9,
                "mismatch at d={d}"
            );
        }
    }

    #[test]
    fn represents_non_canonical_speed_functions() {
        // A speed bump the piecewise model would flatten: the Akima
        // model reproduces it.
        let m = model_from(&[(10, 1.0), (60, 10.0), (900, 100.0), (4000, 1000.0)]);
        // Raw speed at 900 is 9 units/s; the spline passes through it.
        assert!((m.speed(900.0).unwrap() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn time_at_and_below_zero_is_zero() {
        let m = model_from(&[(10, 1.0), (100, 12.0)]);
        assert_eq!(m.time(0.0), Some(0.0));
        assert_eq!(m.time(-3.0), Some(0.0));
    }

    #[test]
    fn speed_at_zero_is_the_derivative_limit() {
        // Linear time t = 0.1 x → speed 10 everywhere, including 0.
        let m = model_from(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert!((m.speed(0.0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn derivative_is_continuous_where_piecewise_is_not() {
        let m = model_from(&[(10, 1.0), (100, 15.0), (500, 120.0), (1000, 400.0)]);
        // Sample the derivative across a node; no jumps.
        let before = m.time_derivative(99.999).unwrap();
        let after = m.time_derivative(100.001).unwrap();
        assert!((before - after).abs() < 1e-3 * before.abs().max(1.0));
    }

    #[test]
    fn time_floor_prevents_nonpositive_predictions() {
        // Wild oscillation in measured times; floor keeps t(x) > 0 for
        // all positive x.
        let m = model_from(&[(10, 5.0), (11, 0.001), (12, 5.0), (100, 6.0)]);
        for i in 1..200 {
            let x = i as f64;
            assert!(m.time(x).unwrap() > 0.0, "non-positive time at {x}");
        }
    }

    /// The two models must agree bit-for-bit, not merely compare
    /// equal: probe times at many abscissas via `to_bits`.
    fn assert_models_bitwise_eq(a: &AkimaModel, b: &AkimaModel, ctx: &str) {
        assert_eq!(a, b, "{ctx}: structural mismatch");
        for i in 0..200 {
            let x = i as f64 * 7.3;
            let (ta, tb) = (a.time(x), b.time(x));
            match (ta, tb) {
                (Some(ta), Some(tb)) => {
                    assert_eq!(ta.to_bits(), tb.to_bits(), "{ctx}: time({x})");
                }
                (None, None) => {}
                _ => panic!("{ctx}: readiness mismatch at {x}"),
            }
        }
    }

    #[test]
    fn absorb_is_bitwise_identical_to_update_at_every_step() {
        // A stream mixing new sizes (rebuild path) and repeats of known
        // sizes (patch path), including first/last nodes where the
        // virtual-slope window moves.
        let stream = [
            (100u64, 2.0),
            (400, 9.0),
            (100, 2.4), // patch interior-near-left
            (900, 30.0),
            (50, 1.1),
            (900, 28.0), // patch last node
            (200, 4.5),
            (50, 0.9),  // patch first measured node
            (400, 8.0), // patch interior
        ];
        let mut inc = AkimaModel::new();
        let mut ref_model = AkimaModel::new();
        let mut patched = 0;
        for (step, &(d, t)) in stream.iter().enumerate() {
            let kind = inc.absorb(Point::single(d, t)).unwrap();
            ref_model.update(Point::single(d, t)).unwrap();
            if kind == Refresh::Patched {
                patched += 1;
            }
            assert_models_bitwise_eq(&inc, &ref_model, &format!("step {step}"));
        }
        assert!(patched >= 4, "patch path never exercised: {patched}");
    }

    #[test]
    fn set_point_replaces_without_merging() {
        let mut m = AkimaModel::new();
        m.set_point(Point::single(10, 1.0)).unwrap();
        m.set_point(Point::single(20, 3.0)).unwrap();
        let kind = m.set_point(Point::single(10, 2.0)).unwrap();
        assert_eq!(kind, Refresh::Patched);
        // Replacement, not a weighted merge: t(10) is exactly 2.
        let mut fresh = AkimaModel::new();
        fresh.update(Point::single(10, 2.0)).unwrap();
        fresh.update(Point::single(20, 3.0)).unwrap();
        assert_models_bitwise_eq(&m, &fresh, "after replace");
    }

    #[test]
    fn set_point_rejects_invalid_points() {
        let mut m = AkimaModel::new();
        assert!(m.set_point(Point::single(10, 0.0)).is_err());
        assert!(m.set_point(Point::single(10, f64::NAN)).is_err());
        assert!(m.set_point(Point::single(10, -1.0)).is_err());
        assert!(m.points().is_empty());
    }

    #[test]
    fn merges_repeated_measurements() {
        let mut m = AkimaModel::new();
        m.update(Point::single(10, 1.0)).unwrap();
        m.update(Point::single(10, 3.0)).unwrap();
        assert_eq!(m.points().len(), 1);
        assert!((m.time(10.0).unwrap() - 2.0).abs() < 1e-12);
    }
}
