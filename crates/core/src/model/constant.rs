use serde::{Deserialize, Serialize};

use super::{insert_point, Model};
use crate::{CoreError, Point};

/// The constant performance model (CPM): the process's speed is a
/// single number, independent of problem size.
///
/// The paper's CPM "requires only one experimental point"; like the
/// adaptive CPM of Yang et al. \[17\], this implementation averages all
/// points it has been given (weighted by repetitions), so it can also
/// serve as the accumulator in dynamic schemes.
///
/// # Examples
///
/// ```
/// use fupermod_core::model::{ConstantModel, Model};
/// use fupermod_core::Point;
///
/// # fn main() -> Result<(), fupermod_core::CoreError> {
/// let mut cpm = ConstantModel::new();
/// cpm.update(Point::single(100, 2.0))?; // 50 units/s
/// assert_eq!(cpm.speed(400.0), Some(50.0));
/// assert_eq!(cpm.time(400.0), Some(8.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstantModel {
    points: Vec<Point>,
    /// Cached speed in units/s: repetition-weighted mean of point speeds.
    speed: Option<f64>,
}

impl ConstantModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh(&mut self) {
        let mut weight = 0.0;
        let mut acc = 0.0;
        for p in &self.points {
            let w = p.reps.max(1) as f64;
            acc += p.speed() * w;
            weight += w;
        }
        self.speed = if weight > 0.0 { Some(acc / weight) } else { None };
    }
}

impl Model for ConstantModel {
    fn points(&self) -> &[Point] {
        &self.points
    }

    fn update(&mut self, point: Point) -> Result<(), CoreError> {
        insert_point(&mut self.points, point)?;
        self.refresh();
        Ok(())
    }

    fn time(&self, x: f64) -> Option<f64> {
        self.speed.map(|s| if x <= 0.0 { 0.0 } else { x / s })
    }

    fn time_derivative(&self, _x: f64) -> Option<f64> {
        self.speed.map(|s| 1.0 / s)
    }

    fn speed(&self, _x: f64) -> Option<f64> {
        self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_answers_none() {
        let m = ConstantModel::new();
        assert!(!m.is_ready());
        assert_eq!(m.time(10.0), None);
        assert_eq!(m.speed(10.0), None);
    }

    #[test]
    fn single_point_defines_speed() {
        let mut m = ConstantModel::new();
        m.update(Point::single(200, 4.0)).unwrap();
        assert_eq!(m.speed(1.0), Some(50.0));
        assert_eq!(m.speed(1e6), Some(50.0));
    }

    #[test]
    fn multiple_points_average_weighted_by_reps() {
        let mut m = ConstantModel::new();
        m.update(Point {
            d: 100,
            t: 1.0,
            reps: 3,
            ci: 0.0,
        })
        .unwrap(); // 100 u/s, weight 3
        m.update(Point {
            d: 100,
            t: 2.0,
            reps: 1,
            ci: 0.0,
        })
        .unwrap(); // merged into one point: t = 1.25
        // Merged point speed: 100/1.25 = 80.
        assert_eq!(m.speed(5.0), Some(80.0));
    }

    #[test]
    fn time_is_linear_and_zero_at_origin() {
        let mut m = ConstantModel::new();
        m.update(Point::single(10, 1.0)).unwrap();
        assert_eq!(m.time(0.0), Some(0.0));
        assert_eq!(m.time(20.0), Some(2.0));
        assert_eq!(m.time_derivative(123.0), Some(0.1));
    }
}
