//! Computation performance models (the paper's `fupermod_model`).
//!
//! A model accumulates experimental [`Point`]s for one process and
//! approximates that process's *time function* `t(x)` — the execution
//! time of `x` computation units — and the derived *speed function*
//! `s(x) = x / t(x)` in computation units per second. Three models are
//! provided, matching the paper:
//!
//! * [`ConstantModel`] — the CPM: speed does not depend on problem size
//!   (one point suffices; extra points are averaged, as in adaptive
//!   CPM \[17\]).
//! * [`PiecewiseModel`] — the FPM of Lastovetsky–Reddy \[10\]:
//!   piecewise-linear speed with the raw data *coarsened* so the speed
//!   function satisfies the shape restrictions that make the
//!   geometrical partitioning algorithm convergent (unimodal speed and
//!   a non-decreasing time function).
//! * [`AkimaModel`] — the FPM of Rychkov et al. \[15\]: Akima-spline
//!   interpolation of the time function, smooth with a continuous
//!   derivative, for the Newton-based numerical partitioner.

pub mod io;

mod akima;
mod constant;
mod cubic;
mod linear;
mod piecewise;

pub use akima::AkimaModel;
pub use constant::ConstantModel;
pub use cubic::CubicModel;
pub use linear::LinearModel;
pub use piecewise::PiecewiseModel;

use crate::{CoreError, Point};

/// How an incremental model update was absorbed — reported by
/// [`AkimaModel::absorb`] so callers (the model store's refresh
/// counters, benchmarks) can tell the O(1) patch path from the O(n)
/// rebuild path. Both paths produce bit-identical models; the variant
/// only describes the work done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refresh {
    /// An existing node's ordinate moved; only the affected spline
    /// window was recomputed.
    Patched,
    /// The approximation was rebuilt from scratch (new node inserted,
    /// or no approximation existed yet).
    Rebuilt,
}

/// A computation performance model of one process.
///
/// Implementations keep the experimental points sorted by problem size
/// and merge repeated measurements of the same size (weighted by their
/// repetition counts), so dynamic algorithms can keep feeding
/// observations in.
pub trait Model {
    /// The experimental points, sorted by `d`.
    fn points(&self) -> &[Point];

    /// Adds (or merges) an experimental point and refreshes the
    /// approximation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if the point is invalid
    /// (non-finite or non-positive time for a non-zero size).
    fn update(&mut self, point: Point) -> Result<(), CoreError>;

    /// Predicted execution time of `x` computation units, or `None` if
    /// the model has no data yet. `time(0) = 0` for every model.
    fn time(&self, x: f64) -> Option<f64>;

    /// Derivative of the time function at `x`, if the model has data.
    fn time_derivative(&self, x: f64) -> Option<f64>;

    /// Predicted speed at `x` in computation units per second
    /// (`x / time(x)`, continuously extended at `x = 0`).
    fn speed(&self, x: f64) -> Option<f64>;

    /// Whether the model has enough data to answer queries.
    fn is_ready(&self) -> bool {
        !self.points().is_empty()
    }
}

/// Validates a point and inserts it into a sorted point list, merging
/// with an existing measurement of the same size (weighted by reps).
pub(crate) fn insert_point(points: &mut Vec<Point>, point: Point) -> Result<(), CoreError> {
    insert_point_indexed(points, point).map(|_| ())
}

/// [`insert_point`], reporting *where* the point landed: `Some((i,
/// merged))` with the sorted index and whether it merged into an
/// existing size, or `None` for an ignored zero-size point. The index
/// is what lets [`AkimaModel::absorb`] patch the matching spline node
/// instead of rebuilding.
pub(crate) fn insert_point_indexed(
    points: &mut Vec<Point>,
    point: Point,
) -> Result<Option<(usize, bool)>, CoreError> {
    if !point.t.is_finite() || (point.d > 0 && point.t <= 0.0) || point.t < 0.0 {
        return Err(CoreError::Model(format!(
            "invalid experimental point: d={}, t={}",
            point.d, point.t
        )));
    }
    if point.d == 0 {
        // Zero-size points carry no information: t(0) = 0 by definition.
        return Ok(None);
    }
    match points.binary_search_by(|p| p.d.cmp(&point.d)) {
        Ok(i) => {
            let old = points[i];
            let w_old = old.reps.max(1) as f64;
            let w_new = point.reps.max(1) as f64;
            points[i] = Point {
                d: point.d,
                t: (old.t * w_old + point.t * w_new) / (w_old + w_new),
                reps: old.reps.saturating_add(point.reps),
                ci: old.ci.max(point.ci),
            };
            Ok(Some((i, true)))
        }
        Err(i) => {
            points.insert(i, point);
            Ok(Some((i, false)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_points_sorted() {
        let mut pts = Vec::new();
        for d in [50u64, 10, 30, 20, 40] {
            insert_point(&mut pts, Point::single(d, d as f64)).unwrap();
        }
        let ds: Vec<u64> = pts.iter().map(|p| p.d).collect();
        assert_eq!(ds, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn insert_merges_same_size_weighted() {
        let mut pts = Vec::new();
        insert_point(
            &mut pts,
            Point {
                d: 10,
                t: 1.0,
                reps: 3,
                ci: 0.1,
            },
        )
        .unwrap();
        insert_point(
            &mut pts,
            Point {
                d: 10,
                t: 2.0,
                reps: 1,
                ci: 0.2,
            },
        )
        .unwrap();
        assert_eq!(pts.len(), 1);
        assert!((pts[0].t - 1.25).abs() < 1e-12);
        assert_eq!(pts[0].reps, 4);
        assert_eq!(pts[0].ci, 0.2);
    }

    #[test]
    fn insert_rejects_invalid_points() {
        let mut pts = Vec::new();
        assert!(insert_point(&mut pts, Point::single(10, 0.0)).is_err());
        assert!(insert_point(&mut pts, Point::single(10, -1.0)).is_err());
        assert!(insert_point(&mut pts, Point::single(10, f64::NAN)).is_err());
    }

    #[test]
    fn zero_size_points_are_ignored() {
        let mut pts = Vec::new();
        insert_point(&mut pts, Point::single(0, 0.0)).unwrap();
        assert!(pts.is_empty());
    }
}
