use serde::{Deserialize, Serialize};

use fupermod_num::interp::{Interpolation, PiecewiseLinear};

use super::{insert_point, Model};
use crate::{CoreError, Point};

/// The piecewise-linear functional performance model of
/// Lastovetsky–Reddy \[10\], with coarsening to the shape restrictions
/// that make the geometrical partitioning algorithm convergent.
///
/// The raw speed observations `s_i = d_i / t_i` are coarsened into a
/// *canonical* speed function (Fig. 2(a) of the paper):
///
/// 1. **unimodal envelope** — the speed function may increase up to a
///    single peak and must not increase after it; observations that
///    violate this are clamped *down* to the envelope (conservative:
///    the model never promises more speed than observed);
/// 2. **monotone time** — the time function `t(x) = x / s(x)` must be
///    non-decreasing, i.e. between consecutive sizes the speed may grow
///    at most proportionally to the size (`s_{i} ≤ s_{i-1}·d_i/d_{i-1}`).
///
/// Together these guarantee that any ray from the origin in the
/// (size, speed) plane crosses the speed function in a single connected
/// set, which is exactly what the bisection of the geometrical
/// algorithm needs.
///
/// Between data points the speed is linear; below the first and above
/// the last point it is constant (the paper's extension of speed
/// functions to the full size range).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseModel {
    points: Vec<Point>,
    /// Coarsened canonical speed function over the point sizes.
    speed_fn: Option<PiecewiseLinear>,
}

impl PiecewiseModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The coarsened (canonical) speed values at the experimental
    /// sizes, in units/s — exposed so experiments can plot the
    /// restricted approximation against the raw data (paper Fig. 2(a)).
    pub fn canonical_speeds(&self) -> Option<(&[f64], &[f64])> {
        self.speed_fn.as_ref().map(|f| (f.xs(), f.ys()))
    }

    fn refresh(&mut self) -> Result<(), CoreError> {
        if self.points.is_empty() {
            self.speed_fn = None;
            return Ok(());
        }
        let xs: Vec<f64> = self.points.iter().map(|p| p.d as f64).collect();
        let raw: Vec<f64> = self.points.iter().map(|p| p.speed()).collect();
        let canon = coarsen(&xs, &raw);
        self.speed_fn = if xs.len() >= 2 {
            Some(PiecewiseLinear::new(&xs, &canon).map_err(CoreError::from)?)
        } else {
            // Single point: constant speed; represented without an
            // interpolant.
            None
        };
        Ok(())
    }

    /// Canonical speed at `x` (constant extension outside the data).
    fn canonical_speed(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if let Some(f) = &self.speed_fn {
            let (lo, hi) = f.domain();
            let v = if x < lo {
                f.value(lo)
            } else if x > hi {
                f.value(hi)
            } else {
                f.value(x)
            };
            Some(v)
        } else {
            Some(self.points[0].speed())
        }
    }

    fn canonical_speed_slope(&self, x: f64) -> f64 {
        match &self.speed_fn {
            Some(f) => {
                let (lo, hi) = f.domain();
                if x < lo || x > hi {
                    0.0
                } else {
                    f.derivative(x)
                }
            }
            None => 0.0,
        }
    }
}

/// Coarsens raw speed observations to the canonical restricted shape.
/// Returns the clamped speeds (same length as the input).
fn coarsen(xs: &[f64], raw: &[f64]) -> Vec<f64> {
    let n = raw.len();
    let mut s = raw.to_vec();
    if n >= 2 {
        // Peak of the raw data.
        let peak = raw
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite speeds"))
            .map(|(i, _)| i)
            .expect("non-empty");
        // Ascending side: walking left from the peak, speeds must not
        // increase (so that left-to-right they are non-decreasing).
        for i in (0..peak).rev() {
            s[i] = s[i].min(s[i + 1]);
        }
        // Descending side: walking right from the peak, non-increasing.
        for i in peak + 1..n {
            s[i] = s[i].min(s[i - 1]);
        }
        // Monotone time: s_i ≤ s_{i-1} · x_i / x_{i-1}.
        for i in 1..n {
            let cap = s[i - 1] * xs[i] / xs[i - 1];
            s[i] = s[i].min(cap);
        }
    }
    s
}

impl Model for PiecewiseModel {
    fn points(&self) -> &[Point] {
        &self.points
    }

    fn update(&mut self, point: Point) -> Result<(), CoreError> {
        insert_point(&mut self.points, point)?;
        self.refresh()
    }

    fn time(&self, x: f64) -> Option<f64> {
        if x <= 0.0 {
            return self.canonical_speed(0.0).map(|_| 0.0);
        }
        self.canonical_speed(x).map(|s| x / s)
    }

    fn time_derivative(&self, x: f64) -> Option<f64> {
        let x = x.max(0.0);
        let s = self.canonical_speed(x)?;
        let ds = self.canonical_speed_slope(x);
        // d/dx (x / s(x)) = (s - x·s') / s².
        Some((s - x * ds) / (s * s))
    }

    fn speed(&self, x: f64) -> Option<f64> {
        self.canonical_speed(x.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_from(data: &[(u64, f64)]) -> PiecewiseModel {
        let mut m = PiecewiseModel::new();
        for &(d, t) in data {
            m.update(Point::single(d, t)).unwrap();
        }
        m
    }

    #[test]
    fn single_point_behaves_like_constant_model() {
        let m = model_from(&[(100, 2.0)]);
        assert_eq!(m.speed(10.0), Some(50.0));
        assert_eq!(m.speed(1e6), Some(50.0));
        assert_eq!(m.time(200.0), Some(4.0));
    }

    #[test]
    fn monotone_decreasing_speeds_pass_through() {
        // Speeds 10, 8, 5 — already canonical.
        let m = model_from(&[(10, 1.0), (80, 10.0), (500, 100.0)]);
        assert_eq!(m.speed(10.0), Some(10.0));
        assert_eq!(m.speed(80.0), Some(8.0));
        assert_eq!(m.speed(500.0), Some(5.0));
        // Linear interpolation in between.
        assert_eq!(m.speed(45.0), Some(9.0));
    }

    #[test]
    fn speed_bump_after_peak_is_flattened() {
        // Raw speeds: 10, 6, 9, 4 → the 9 violates unimodality (peak is
        // the first point) and is clamped to 6.
        let m = model_from(&[(10, 1.0), (60, 10.0), (900, 100.0), (4000, 1000.0)]);
        assert_eq!(m.speed(900.0), Some(6.0));
        assert_eq!(m.speed(4000.0), Some(4.0));
    }

    #[test]
    fn ascending_dip_is_clamped_down() {
        // Raw speeds: 5, 3, 10 (peak last) → ascending side must be
        // non-decreasing, so the 5 is clamped to 3.
        let m = model_from(&[(10, 2.0), (30, 10.0), (1000, 100.0)]);
        assert_eq!(m.speed(10.0), Some(3.0));
        assert_eq!(m.speed(30.0), Some(3.0));
        // Peak speed capped by the monotone-time rule:
        // s ≤ 3 · 1000/30 = 100 → untouched (10 < 100).
        assert_eq!(m.speed(1000.0), Some(10.0));
    }

    #[test]
    fn time_function_is_non_decreasing() {
        // Deliberately nasty raw data with bumps both sides of the peak.
        let m = model_from(&[
            (5, 1.0),
            (20, 1.5),
            (60, 8.0),
            (100, 9.0),
            (400, 90.0),
            (900, 100.0),
            (2000, 600.0),
        ]);
        let mut last = 0.0;
        for i in 0..=200 {
            let x = 10.0 * i as f64;
            let t = m.time(x).unwrap();
            assert!(t >= last - 1e-9, "time decreased at x={x}");
            last = t;
        }
    }

    #[test]
    fn canonical_speed_is_unimodal() {
        let m = model_from(&[
            (5, 1.0),
            (20, 1.5),
            (60, 8.0),
            (100, 9.0),
            (400, 90.0),
            (900, 100.0),
            (2000, 600.0),
        ]);
        let (_, speeds) = m.canonical_speeds().unwrap();
        let peak = speeds
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for w in speeds[..=peak].windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "ascending side not monotone");
        }
        for w in speeds[peak..].windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "descending side not monotone");
        }
    }

    #[test]
    fn coarsened_never_exceeds_raw() {
        let data = [
            (5u64, 1.0),
            (20, 1.5),
            (60, 8.0),
            (100, 9.0),
            (400, 90.0),
            (900, 100.0),
        ];
        let m = model_from(&data);
        for &(d, t) in &data {
            let raw = d as f64 / t;
            assert!(
                m.speed(d as f64).unwrap() <= raw + 1e-12,
                "model optimistic at d={d}"
            );
        }
    }

    #[test]
    fn time_derivative_matches_finite_difference() {
        let m = model_from(&[(10, 1.0), (100, 12.0), (1000, 250.0)]);
        for &x in &[15.0, 50.0, 500.0, 2000.0] {
            let h = 1e-5 * x;
            let fd = (m.time(x + h).unwrap() - m.time(x - h).unwrap()) / (2.0 * h);
            let an = m.time_derivative(x).unwrap();
            assert!((an - fd).abs() < 1e-5 * fd.abs().max(1e-3), "x={x}");
        }
    }

    #[test]
    fn time_at_zero_is_zero() {
        let m = model_from(&[(10, 1.0), (100, 12.0)]);
        assert_eq!(m.time(0.0), Some(0.0));
        assert_eq!(m.time(-5.0), Some(0.0));
    }
}
