use serde::{Deserialize, Serialize};

use fupermod_num::interp::{CubicSpline, Interpolation};

use super::{insert_point, Model};
use crate::{CoreError, Point};

/// A functional performance model based on a *natural cubic spline*
/// interpolation of the time function.
///
/// Included as the ablation counterpart of
/// [`AkimaModel`](super::AkimaModel): natural cubic splines are C²
/// smooth but *global* — a memory-hierarchy cliff in the data induces
/// oscillation several segments away, which can make the predicted
/// time dip below reality (or below zero) near the cliff. The
/// `exp8_interpolation_error` experiment quantifies this against the
/// Akima model; the paper's choice of Akima interpolation for the FPM
/// \[15\] is exactly about avoiding this failure mode.
///
/// Like the Akima model, the time function is anchored at the origin
/// and predictions are floored at a small positive value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CubicModel {
    points: Vec<Point>,
    spline: Option<CubicSpline>,
}

impl CubicModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh(&mut self) -> Result<(), CoreError> {
        if self.points.is_empty() {
            self.spline = None;
            return Ok(());
        }
        let mut xs = Vec::with_capacity(self.points.len() + 1);
        let mut ys = Vec::with_capacity(self.points.len() + 1);
        xs.push(0.0);
        ys.push(0.0);
        for p in &self.points {
            xs.push(p.d as f64);
            ys.push(p.t);
        }
        self.spline = Some(CubicSpline::new(&xs, &ys).map_err(CoreError::from)?);
        Ok(())
    }

    fn time_floor(&self, x: f64) -> f64 {
        let best: f64 = self
            .points
            .iter()
            .map(|p| p.t / p.d as f64)
            .fold(f64::INFINITY, f64::min);
        1e-3 * best * x
    }
}

impl Model for CubicModel {
    fn points(&self) -> &[Point] {
        &self.points
    }

    fn update(&mut self, point: Point) -> Result<(), CoreError> {
        insert_point(&mut self.points, point)?;
        self.refresh()
    }

    fn time(&self, x: f64) -> Option<f64> {
        let spline = self.spline.as_ref()?;
        if x <= 0.0 {
            return Some(0.0);
        }
        Some(spline.value(x).max(self.time_floor(x)))
    }

    fn time_derivative(&self, x: f64) -> Option<f64> {
        let spline = self.spline.as_ref()?;
        Some(spline.derivative(x.max(0.0)))
    }

    fn speed(&self, x: f64) -> Option<f64> {
        if x <= 0.0 {
            let d0 = self.time_derivative(0.0)?;
            return Some(if d0 > 0.0 { 1.0 / d0 } else { 0.0 });
        }
        let t = self.time(x)?;
        Some(x / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_from(data: &[(u64, f64)]) -> CubicModel {
        let mut m = CubicModel::new();
        for &(d, t) in data {
            m.update(Point::single(d, t)).unwrap();
        }
        m
    }

    #[test]
    fn interpolates_measured_points() {
        let data = [(10u64, 0.5), (50, 3.0), (200, 20.0), (800, 160.0)];
        let m = model_from(&data);
        for &(d, t) in &data {
            assert!((m.time(d as f64).unwrap() - t).abs() < 1e-9);
        }
    }

    #[test]
    fn single_point_is_a_line() {
        let m = model_from(&[(100, 2.0)]);
        assert!((m.time(50.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oscillates_more_than_akima_near_cliffs() {
        use crate::model::AkimaModel;
        // Flat time-per-unit then a cliff at 400 units.
        let data = [
            (100u64, 1.0),
            (200, 2.0),
            (300, 3.0),
            (400, 4.0),
            (500, 40.0),
            (600, 80.0),
        ];
        let mut akima = AkimaModel::new();
        let mut cubic = CubicModel::new();
        for &(d, t) in &data {
            akima.update(Point::single(d, t)).unwrap();
            cubic.update(Point::single(d, t)).unwrap();
        }
        // In the linear region (100..400) the true time is x/100.
        let mut akima_err = 0.0_f64;
        let mut cubic_err = 0.0_f64;
        for i in 10..40 {
            let x = i as f64 * 10.0;
            let truth = x / 100.0;
            akima_err = akima_err.max((akima.time(x).unwrap() - truth).abs());
            cubic_err = cubic_err.max((cubic.time(x).unwrap() - truth).abs());
        }
        assert!(
            cubic_err > 2.0 * akima_err,
            "cubic {cubic_err} vs akima {akima_err}"
        );
    }

    #[test]
    fn works_with_partitioners() {
        use crate::partition::{NumericalPartitioner, Partitioner};
        let m1 = model_from(&[(100, 1.0), (400, 4.0), (800, 8.0)]);
        let m2 = model_from(&[(100, 3.0), (400, 12.0), (800, 24.0)]);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = NumericalPartitioner::default()
            .partition(800, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![600, 200]);
    }
}
