//! Persistence of experimental points, mirroring the original
//! FuPerMod's plain-text model data files.
//!
//! Building full functional models is expensive, so the paper's
//! workflow for static partitioning is: benchmark once, store the
//! points, reuse them across many runs of the application. The format
//! is line-oriented and human-editable:
//!
//! ```text
//! # fupermod points v1
//! # d  t  reps  ci
//! 100 0.012500 5 0.000210
//! 500 0.071000 5 0.001800
//! ```

use std::io::{BufRead, Write};

use crate::{CoreError, Point};

use super::Model;

/// Writes points in the FuPerMod text format.
///
/// # Errors
///
/// Returns [`CoreError::Model`] on I/O failure.
pub fn write_points(mut w: impl Write, points: &[Point]) -> Result<(), CoreError> {
    let io_err = |e: std::io::Error| CoreError::Model(format!("write failed: {e}"));
    writeln!(w, "# fupermod points v1").map_err(io_err)?;
    writeln!(w, "# d  t  reps  ci").map_err(io_err)?;
    for p in points {
        // `{:e}` prints the shortest representation that round-trips,
        // so saved models reload bit-exactly.
        writeln!(w, "{} {:e} {} {:e}", p.d, p.t, p.reps, p.ci).map_err(io_err)?;
    }
    Ok(())
}

/// Reads points written by [`write_points`]. Blank lines and `#`
/// comments are ignored.
///
/// # Errors
///
/// Returns [`CoreError::Model`] on I/O failure or malformed lines.
pub fn read_points(r: impl BufRead) -> Result<Vec<Point>, CoreError> {
    let mut points = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| CoreError::Model(format!("read failed: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse_err =
            |what: &str| CoreError::Model(format!("line {}: bad {what}: {line:?}", lineno + 1));
        let d: u64 = fields
            .next()
            .ok_or_else(|| parse_err("d"))?
            .parse()
            .map_err(|_| parse_err("d"))?;
        let t: f64 = fields
            .next()
            .ok_or_else(|| parse_err("t"))?
            .parse()
            .map_err(|_| parse_err("t"))?;
        let reps: u32 = match fields.next() {
            Some(s) => s.parse().map_err(|_| parse_err("reps"))?,
            None => 1,
        };
        let ci: f64 = match fields.next() {
            Some(s) => s.parse().map_err(|_| parse_err("ci"))?,
            None => 0.0,
        };
        points.push(Point { d, t, reps, ci });
    }
    Ok(points)
}

/// Saves a model's points to a file.
///
/// # Errors
///
/// Returns [`CoreError::Model`] on I/O failure.
pub fn save_model(path: impl AsRef<std::path::Path>, model: &dyn Model) -> Result<(), CoreError> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| CoreError::Model(format!("cannot create {:?}: {e}", path.as_ref())))?;
    write_points(std::io::BufWriter::new(file), model.points())
}

/// Loads points from a file into a model (which may already hold
/// points; loaded ones are merged through the normal update path).
///
/// # Errors
///
/// Returns [`CoreError::Model`] on I/O failure, malformed input, or a
/// rejected point.
pub fn load_into_model(
    path: impl AsRef<std::path::Path>,
    model: &mut dyn Model,
) -> Result<(), CoreError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| CoreError::Model(format!("cannot open {:?}: {e}", path.as_ref())))?;
    for p in read_points(std::io::BufReader::new(file))? {
        model.update(p)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AkimaModel, PiecewiseModel};

    fn sample_points() -> Vec<Point> {
        vec![
            Point {
                d: 100,
                t: 0.0125,
                reps: 5,
                ci: 2.1e-4,
            },
            Point {
                d: 500,
                t: 0.071,
                reps: 7,
                ci: 1.8e-3,
            },
            Point::single(2000, 0.4),
        ]
    }

    #[test]
    fn round_trips_through_text() {
        let mut buf = Vec::new();
        write_points(&mut buf, &sample_points()).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(sample_points()) {
            assert_eq!(a.d, b.d);
            assert_eq!(a.reps, b.reps);
            assert!((a.t - b.t).abs() < 1e-12);
            assert!((a.ci - b.ci).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n10 1.0 2 0.1\n   \n# tail\n20 2.0\n";
        let pts = read_points(text.as_bytes()).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].reps, 1);
        assert_eq!(pts[1].ci, 0.0);
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        let err = read_points("10 abc\n".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("line 1"), "got: {err}");
    }

    #[test]
    fn save_and_load_through_files() {
        let dir = std::env::temp_dir().join("fupermod-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dat");

        let mut original = PiecewiseModel::new();
        for p in sample_points() {
            original.update(p).unwrap();
        }
        save_model(&path, &original).unwrap();

        let mut loaded = AkimaModel::new();
        load_into_model(&path, &mut loaded).unwrap();
        assert_eq!(loaded.points().len(), original.points().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_model_error() {
        let mut m = PiecewiseModel::new();
        let err = load_into_model("/nonexistent/fupermod.dat", &mut m).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }
}
