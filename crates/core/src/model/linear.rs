use serde::{Deserialize, Serialize};

use super::{insert_point, Model};
use crate::{CoreError, Point};

/// The linear performance model of Luk, Hong & Kim's Qilin \[12\], which
/// the paper discusses as the step between CPM and FPM: the execution
/// time is an affine function of problem size, `t(x) = a + b·x`, fitted
/// to the experimental points by least squares.
///
/// It captures a fixed startup overhead (the `a` term, important for
/// GPUs) but still assumes a constant marginal cost per unit — so it
/// shares the CPM's blindness to memory-hierarchy cliffs. Included
/// mainly as a comparison model and as a demonstration that
/// `fupermod_model` is open to new implementations.
///
/// With a single point the fit degenerates to a line through the
/// origin (the CPM). The fit enforces `a ≥ 0` (negative intercepts are
/// clamped and the slope refitted) so predicted times stay positive.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    points: Vec<Point>,
    /// Intercept `a` in seconds.
    intercept: f64,
    /// Slope `b` in seconds per unit.
    slope: f64,
}

impl LinearModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted `(intercept, slope)` of `t(x) = a + b·x`.
    pub fn coefficients(&self) -> (f64, f64) {
        (self.intercept, self.slope)
    }

    fn refit(&mut self) {
        let n = self.points.len();
        if n == 0 {
            self.intercept = 0.0;
            self.slope = 0.0;
            return;
        }
        if n == 1 {
            self.intercept = 0.0;
            self.slope = self.points[0].t / self.points[0].d as f64;
            return;
        }
        let nf = n as f64;
        let sx: f64 = self.points.iter().map(|p| p.d as f64).sum();
        let sy: f64 = self.points.iter().map(|p| p.t).sum();
        let sxx: f64 = self.points.iter().map(|p| (p.d as f64).powi(2)).sum();
        let sxy: f64 = self.points.iter().map(|p| p.d as f64 * p.t).sum();
        let denom = nf * sxx - sx * sx;
        if denom.abs() < 1e-30 {
            // All sizes identical: fall back to the proportional fit.
            self.intercept = 0.0;
            self.slope = sy / sx;
            return;
        }
        let slope = (nf * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / nf;
        if intercept < 0.0 || slope <= 0.0 {
            // Clamp to the physically meaningful family: through-origin
            // least squares (b = Σxy/Σx²), which is always positive for
            // positive data.
            self.intercept = 0.0;
            self.slope = sxy / sxx;
        } else {
            self.intercept = intercept;
            self.slope = slope;
        }
    }
}

impl Model for LinearModel {
    fn points(&self) -> &[Point] {
        &self.points
    }

    fn update(&mut self, point: Point) -> Result<(), CoreError> {
        insert_point(&mut self.points, point)?;
        self.refit();
        Ok(())
    }

    fn time(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(if x <= 0.0 {
            0.0
        } else {
            self.intercept + self.slope * x
        })
    }

    fn time_derivative(&self, _x: f64) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.slope)
        }
    }

    fn speed(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= 0.0 {
            // lim_{x→0} x/(a + bx): zero with an intercept, 1/b without.
            return Some(if self.intercept > 0.0 {
                0.0
            } else {
                1.0 / self.slope
            });
        }
        Some(x / (self.intercept + self.slope * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_affine_data() {
        let mut m = LinearModel::new();
        // t = 0.5 + 0.01 x
        for d in [100u64, 200, 400, 800] {
            m.update(Point::single(d, 0.5 + 0.01 * d as f64)).unwrap();
        }
        let (a, b) = m.coefficients();
        assert!((a - 0.5).abs() < 1e-9);
        assert!((b - 0.01).abs() < 1e-12);
        assert!((m.time(1000.0).unwrap() - 10.5).abs() < 1e-9);
    }

    #[test]
    fn single_point_is_proportional() {
        let mut m = LinearModel::new();
        m.update(Point::single(100, 2.0)).unwrap();
        assert_eq!(m.coefficients(), (0.0, 0.02));
        assert_eq!(m.speed(50.0), Some(50.0));
    }

    #[test]
    fn negative_intercepts_are_clamped() {
        let mut m = LinearModel::new();
        // Superlinear data pushes the LS intercept negative.
        m.update(Point::single(10, 0.1)).unwrap();
        m.update(Point::single(100, 2.0)).unwrap();
        m.update(Point::single(200, 8.0)).unwrap();
        let (a, b) = m.coefficients();
        assert!(a >= 0.0);
        assert!(b > 0.0);
        for x in [1.0, 50.0, 500.0] {
            assert!(m.time(x).unwrap() > 0.0);
        }
    }

    #[test]
    fn gpu_like_overhead_is_captured() {
        // Large fixed overhead, small per-unit cost — the case the CPM
        // gets badly wrong and the linear model gets right.
        let mut m = LinearModel::new();
        for d in [10u64, 100, 1000] {
            m.update(Point::single(d, 1.0 + 1e-4 * d as f64)).unwrap();
        }
        // Speed rises with size (amortised overhead).
        assert!(m.speed(1000.0).unwrap() > 5.0 * m.speed(10.0).unwrap());
    }

    #[test]
    fn speed_limits_are_consistent() {
        let mut m = LinearModel::new();
        for d in [100u64, 200] {
            m.update(Point::single(d, 0.2 + 0.001 * d as f64)).unwrap();
        }
        assert_eq!(m.speed(0.0), Some(0.0));
        assert_eq!(m.time(0.0), Some(0.0));
    }

    #[test]
    fn works_with_partitioners() {
        use crate::partition::{GeometricPartitioner, Partitioner};
        let mut m1 = LinearModel::new();
        let mut m2 = LinearModel::new();
        for d in [100u64, 400] {
            m1.update(Point::single(d, d as f64 / 100.0)).unwrap(); // 100 u/s
            m2.update(Point::single(d, d as f64 / 300.0)).unwrap(); // 300 u/s
        }
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = GeometricPartitioner::default()
            .partition(400, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![100, 300]);
    }
}
