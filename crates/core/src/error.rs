use std::error::Error;
use std::fmt;

use fupermod_num::NumError;
use fupermod_platform::PlatformError;

/// Error type for the FuPerMod core framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A numerical routine failed (interpolation, solving, statistics).
    Num(NumError),
    /// A kernel could not be initialised or executed.
    Kernel(String),
    /// A performance model rejected an update or query.
    Model(String),
    /// A partitioning algorithm could not produce a distribution.
    Partition(String),
    /// A trace could not be read, validated or replayed.
    Trace(String),
    /// The platform substrate rejected a communication operation
    /// (byte-count arity, conservation, or a disconnected peer).
    Platform(PlatformError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Num(e) => write!(f, "numerical error: {e}"),
            CoreError::Kernel(msg) => write!(f, "kernel error: {msg}"),
            CoreError::Model(msg) => write!(f, "model error: {msg}"),
            CoreError::Partition(msg) => write!(f, "partition error: {msg}"),
            CoreError::Trace(msg) => write!(f, "trace error: {msg}"),
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Num(e) => Some(e),
            CoreError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for CoreError {
    fn from(e: NumError) -> Self {
        CoreError::Num(e)
    }
}

impl From<PlatformError> for CoreError {
    fn from(e: PlatformError) -> Self {
        CoreError::Platform(e)
    }
}
