//! Experimental points — the output of performance measurement and the
//! input of performance models (the paper's `fupermod_point`).

use serde::{Deserialize, Serialize};

/// One measurement of a computation kernel: `d` computation units took
/// `t` seconds (mean over `reps` repetitions, with confidence-interval
/// half-width `ci`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Problem size in computation units.
    pub d: u64,
    /// Mean execution time in seconds.
    pub t: f64,
    /// Number of repetitions the measurement actually took.
    pub reps: u32,
    /// Half-width of the confidence interval of `t`, in seconds.
    pub ci: f64,
}

impl Point {
    /// Creates a point from a single observation (no statistics yet).
    pub fn single(d: u64, t: f64) -> Self {
        Self {
            d,
            t,
            reps: 1,
            ci: 0.0,
        }
    }

    /// Observed speed in computation units per second; zero for a
    /// zero-time or zero-size point.
    pub fn speed(&self) -> f64 {
        if self.t <= 0.0 || self.d == 0 {
            0.0
        } else {
            self.d as f64 / self.t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_is_units_per_second() {
        let p = Point::single(100, 2.0);
        assert_eq!(p.speed(), 50.0);
    }

    #[test]
    fn degenerate_points_have_zero_speed() {
        assert_eq!(Point::single(0, 1.0).speed(), 0.0);
        assert_eq!(Point::single(10, 0.0).speed(), 0.0);
    }
}
