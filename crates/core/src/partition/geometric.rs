use fupermod_num::solve::{bisect, RootOptions};

use super::{check_inputs, finalize, Distribution, Partitioner};
use crate::model::Model;
use crate::CoreError;

/// The geometrical data-partitioning algorithm of Lastovetsky–Reddy
/// \[10\]: iterative bisection of the speed functions with lines through
/// the origin of the (size, speed) plane.
///
/// A line through the origin with slope `1/T` intersects process `i`'s
/// speed function at the size `dᵢ(T)` that takes exactly `T` seconds
/// (`dᵢ / s(dᵢ) = T`). The optimum is the `T*` whose intersections sum
/// to the total workload: `Σ dᵢ(T*) = D`, and the algorithm bisects on
/// `T`. Convergence relies on the monotone time functions the
/// restricted [`PiecewiseModel`](crate::model::PiecewiseModel)
/// guarantees; the implementation is formulated directly in terms of
/// time functions, so any model with a non-decreasing `time(x)` works.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricPartitioner {
    /// Tolerance on the bisection over `T`, relative to `T` itself.
    pub rel_tol: f64,
    /// Iteration cap for each bisection.
    pub max_iter: usize,
}

impl Default for GeometricPartitioner {
    fn default() -> Self {
        Self {
            rel_tol: 1e-10,
            max_iter: 200,
        }
    }
}

impl GeometricPartitioner {
    /// The size process `m` can complete within `t` seconds: the
    /// intersection of its speed function with the line of slope `1/t`.
    fn size_at_time(&self, m: &dyn Model, t: f64) -> Result<f64, CoreError> {
        if t <= 0.0 {
            return Ok(0.0);
        }
        let time = |x: f64| m.time(x).unwrap_or(f64::INFINITY);

        // Beyond the last experimental point the speed is constant, so
        // the time function grows without bound: doubling finds an
        // upper bracket.
        let mut hi = m
            .points()
            .last()
            .map(|p| p.d as f64)
            .unwrap_or(1.0)
            .max(1.0);
        let mut guard = 0;
        while time(hi) < t {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(CoreError::Partition(format!(
                    "time function never reaches {t} s (unbounded speed?)"
                )));
            }
        }
        if time(0.0) >= t {
            return Ok(0.0);
        }
        let root = bisect(
            |x| time(x) - t,
            0.0,
            hi,
            RootOptions {
                x_tol: 1e-9 * hi.max(1.0),
                f_tol: 1e-12 * t.max(1.0),
                max_iter: self.max_iter,
            },
        )
        .map_err(CoreError::from)?;
        Ok(root)
    }
}

impl Partitioner for GeometricPartitioner {
    fn partition(&self, total: u64, models: &[&dyn Model]) -> Result<Distribution, CoreError> {
        check_inputs(models)?;
        if total == 0 {
            return finalize(total, &vec![0.0; models.len()], models);
        }
        let d = total as f64;

        // Upper bracket on T*: the time the single slowest process
        // would need for the whole workload — by then every process can
        // absorb D on its own.
        let mut t_hi: f64 = 0.0;
        for m in models {
            let t = m.time(d).unwrap_or(0.0);
            t_hi = t_hi.max(t);
        }
        if t_hi <= 0.0 {
            return Err(CoreError::Partition(
                "all models predict zero time for the whole workload".to_owned(),
            ));
        }

        let sum_at = |t: f64| -> Result<f64, CoreError> {
            let mut sum = 0.0;
            for m in models {
                sum += self.size_at_time(*m, t)?;
            }
            Ok(sum)
        };

        // Bisection of the line slope (equivalently of T).
        let mut lo = 0.0;
        let mut hi = t_hi;
        // Make sure the bracket really covers D (numerical safety).
        let mut guard = 0;
        while sum_at(hi)? < d {
            hi *= 2.0;
            guard += 1;
            if guard > 100 {
                return Err(CoreError::Partition(
                    "failed to bracket the optimal line".to_owned(),
                ));
            }
        }
        for _ in 0..self.max_iter {
            let mid = 0.5 * (lo + hi);
            if (hi - lo) <= self.rel_tol * hi {
                break;
            }
            if sum_at(mid)? < d {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t_star = hi;

        let mut continuous = Vec::with_capacity(models.len());
        for m in models {
            continuous.push(self.size_at_time(*m, t_star)?);
        }
        finalize(total, &continuous, models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstantModel, Model, PiecewiseModel};
    use crate::Point;

    fn pwm(data: &[(u64, f64)]) -> PiecewiseModel {
        let mut m = PiecewiseModel::new();
        for &(d, t) in data {
            m.update(Point::single(d, t)).unwrap();
        }
        m
    }

    #[test]
    fn matches_proportional_split_for_constant_speeds() {
        let m1 = pwm(&[(100, 1.0), (1000, 10.0)]); // 100 u/s
        let m2 = pwm(&[(100, 4.0), (1000, 40.0)]); // 25 u/s
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = GeometricPartitioner::default()
            .partition(1000, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![800, 200]);
        assert!(dist.predicted_imbalance() < 0.02);
    }

    #[test]
    fn equalises_times_on_nonlinear_speeds() {
        // Process 1 slows down sharply past 500 units (memory cliff);
        // process 2 is steady. The optimum keeps process 1 in its fast
        // region.
        let m1 = pwm(&[(100, 1.0), (500, 5.0), (600, 30.0), (1000, 100.0)]);
        let m2 = pwm(&[(100, 2.0), (1000, 20.0)]);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = GeometricPartitioner::default()
            .partition(1200, &models)
            .unwrap();
        let t1 = m1.time(dist.parts()[0].d as f64).unwrap();
        let t2 = m2.time(dist.parts()[1].d as f64).unwrap();
        assert!(
            (t1 - t2).abs() / t1.max(t2) < 0.05,
            "times not equalised: {t1} vs {t2}"
        );
        assert_eq!(dist.total_assigned(), 1200);
    }

    #[test]
    fn cpm_fed_geometric_matches_constant_partitioner() {
        let mut c1 = ConstantModel::new();
        c1.update(Point::single(100, 1.0)).unwrap();
        let mut c2 = ConstantModel::new();
        c2.update(Point::single(100, 3.0)).unwrap();
        let models: Vec<&dyn Model> = vec![&c1, &c2];
        let dist = GeometricPartitioner::default()
            .partition(400, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![300, 100]);
    }

    #[test]
    fn single_process_takes_all() {
        let m = pwm(&[(10, 1.0), (100, 20.0)]);
        let models: Vec<&dyn Model> = vec![&m];
        let dist = GeometricPartitioner::default()
            .partition(77, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![77]);
    }

    #[test]
    fn zero_total_is_fine() {
        let m = pwm(&[(10, 1.0), (100, 20.0)]);
        let models: Vec<&dyn Model> = vec![&m];
        let dist = GeometricPartitioner::default().partition(0, &models).unwrap();
        assert_eq!(dist.sizes(), vec![0]);
    }

    #[test]
    fn very_slow_process_gets_little_work() {
        let fast = pwm(&[(1000, 1.0), (10000, 10.0)]); // 1000 u/s
        let slow = pwm(&[(10, 10.0), (100, 100.0)]); // 1 u/s
        let models: Vec<&dyn Model> = vec![&fast, &slow];
        let dist = GeometricPartitioner::default()
            .partition(10_000, &models)
            .unwrap();
        assert!(dist.parts()[1].d <= 15, "slow got {}", dist.parts()[1].d);
    }

    #[test]
    fn many_processes_conserve_total() {
        let ms: Vec<PiecewiseModel> = (1..=8)
            .map(|i| pwm(&[(100, i as f64), (1000, 10.0 * i as f64)]))
            .collect();
        let models: Vec<&dyn Model> = ms.iter().map(|m| m as &dyn Model).collect();
        let dist = GeometricPartitioner::default()
            .partition(12_345, &models)
            .unwrap();
        assert_eq!(dist.total_assigned(), 12_345);
        // Faster (lower index) processes get strictly more.
        let sizes = dist.sizes();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
