use super::{check_inputs, finalize, Distribution, Partitioner};
use crate::model::Model;
use crate::CoreError;

/// The homogeneous baseline: every process gets `D/p` units regardless
/// of its model. Used as the control in every experiment ("what the
/// original homogeneous application would do").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvenPartitioner;

impl Partitioner for EvenPartitioner {
    fn partition(&self, total: u64, models: &[&dyn Model]) -> Result<Distribution, CoreError> {
        if models.is_empty() {
            return Err(CoreError::Partition(
                "cannot partition over zero processes".to_owned(),
            ));
        }
        let continuous = vec![1.0; models.len()];
        finalize(total, &continuous, models)
    }
}

/// The paper's "basic algorithm based on CPMs": distribute units in
/// proportion to constant speeds. The fastest and cheapest algorithm,
/// accurate only while speeds really are constant over the relevant
/// size range.
///
/// Each model is queried for its speed at the even share `D/p` — the
/// size a traditional single-benchmark characterisation would have
/// used. For a true [`ConstantModel`](crate::model::ConstantModel) the
/// probe size is irrelevant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstantPartitioner;

impl Partitioner for ConstantPartitioner {
    fn partition(&self, total: u64, models: &[&dyn Model]) -> Result<Distribution, CoreError> {
        check_inputs(models)?;
        let probe = (total as f64 / models.len() as f64).max(1.0);
        let mut speeds = Vec::with_capacity(models.len());
        for (i, m) in models.iter().enumerate() {
            let s = m.speed(probe).ok_or_else(|| {
                CoreError::Partition(format!("model of process {i} cannot predict speed"))
            })?;
            if !(s.is_finite() && s > 0.0) {
                return Err(CoreError::Partition(format!(
                    "model of process {i} predicts non-positive speed {s}"
                )));
            }
            speeds.push(s);
        }
        finalize(total, &speeds, models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstantModel, Model};
    use crate::Point;

    fn cpm(units: u64, secs: f64) -> ConstantModel {
        let mut m = ConstantModel::new();
        m.update(Point::single(units, secs)).unwrap();
        m
    }

    #[test]
    fn even_splits_equally() {
        let m1 = cpm(10, 1.0);
        let m2 = cpm(10, 5.0);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = EvenPartitioner.partition(100, &models).unwrap();
        assert_eq!(dist.sizes(), vec![50, 50]);
    }

    #[test]
    fn constant_splits_proportionally_to_speed() {
        // 10 u/s vs 40 u/s → 1:4 split.
        let m1 = cpm(10, 1.0);
        let m2 = cpm(40, 1.0);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = ConstantPartitioner.partition(100, &models).unwrap();
        assert_eq!(dist.sizes(), vec![20, 80]);
        assert_eq!(dist.total_assigned(), 100);
    }

    #[test]
    fn predicted_times_are_balanced_for_cpms() {
        let m1 = cpm(30, 1.0);
        let m2 = cpm(10, 1.0);
        let m3 = cpm(60, 1.0);
        let models: Vec<&dyn Model> = vec![&m1, &m2, &m3];
        let dist = ConstantPartitioner.partition(1000, &models).unwrap();
        assert!(dist.predicted_imbalance() < 0.02, "CPMs should balance");
    }

    #[test]
    fn rejects_empty_and_unready_models() {
        let models: Vec<&dyn Model> = Vec::new();
        assert!(ConstantPartitioner.partition(10, &models).is_err());
        let empty = ConstantModel::new();
        let models: Vec<&dyn Model> = vec![&empty];
        assert!(ConstantPartitioner.partition(10, &models).is_err());
    }

    #[test]
    fn zero_total_yields_zero_shares() {
        let m1 = cpm(10, 1.0);
        let models: Vec<&dyn Model> = vec![&m1];
        let dist = ConstantPartitioner.partition(0, &models).unwrap();
        assert_eq!(dist.sizes(), vec![0]);
    }
}
