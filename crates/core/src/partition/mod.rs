//! Model-based data partitioning (the paper's `fupermod_partition`).
//!
//! A partitioner distributes `D` computation units over `p` processes,
//! guided by their performance models, so that all processes finish at
//! (nearly) the same time. Four algorithms are provided:
//!
//! * [`EvenPartitioner`] — the homogeneous baseline (`D/p` each);
//! * [`ConstantPartitioner`] — proportional to constant speeds (the
//!   paper's "basic algorithm based on CPMs");
//! * [`GeometricPartitioner`] — the geometrical algorithm of
//!   Lastovetsky–Reddy \[10\]: iterative bisection of the speed functions
//!   with lines through the origin, convergent on the restricted
//!   piecewise FPMs;
//! * [`NumericalPartitioner`] — the numerical algorithm of Rychkov et
//!   al. \[15\]: a multidimensional Newton solve of the equal-time system
//!   on smooth (Akima) models, with a robust fixed-point fallback.

mod constant;
mod geometric;
mod numerical;

pub use constant::{ConstantPartitioner, EvenPartitioner};
pub use geometric::GeometricPartitioner;
pub use numerical::NumericalPartitioner;

use serde::{Deserialize, Serialize};

use fupermod_num::apportion::largest_remainder;

use crate::model::Model;
use crate::CoreError;

/// One process's share of the workload: `d` computation units with
/// predicted execution time `t` (the paper's `fupermod_part`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Part {
    /// Assigned computation units.
    pub d: u64,
    /// Predicted execution time for `d` units, in seconds.
    pub t: f64,
}

/// A distribution of `total` computation units over processes (the
/// paper's `fupermod_dist`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    total: u64,
    parts: Vec<Part>,
}

impl Distribution {
    /// The even distribution of `total` units over `size` processes —
    /// the usual starting point of the dynamic algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn even(total: u64, size: usize) -> Self {
        assert!(size > 0, "distribution needs at least one process");
        let shares =
            largest_remainder(&vec![1.0; size], total).expect("even weights are valid");
        Self {
            total,
            parts: shares.into_iter().map(|d| Part { d, t: 0.0 }).collect(),
        }
    }

    /// Builds a distribution from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the parts don't sum to `total`.
    pub fn from_parts(total: u64, parts: Vec<Part>) -> Self {
        assert!(!parts.is_empty(), "distribution needs at least one part");
        assert_eq!(
            parts.iter().map(|p| p.d).sum::<u64>(),
            total,
            "parts must sum to the total"
        );
        Self { total, parts }
    }

    /// Total problem size in computation units.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of processes.
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Per-process shares.
    pub fn parts(&self) -> &[Part] {
        &self.parts
    }

    /// Sum of assigned units (always equals [`Distribution::total`];
    /// exposed for assertions).
    pub fn total_assigned(&self) -> u64 {
        self.parts.iter().map(|p| p.d).sum()
    }

    /// Assigned sizes only, in process order.
    pub fn sizes(&self) -> Vec<u64> {
        self.parts.iter().map(|p| p.d).collect()
    }

    /// Predicted makespan: the largest per-process predicted time.
    pub fn predicted_makespan(&self) -> f64 {
        self.parts.iter().fold(0.0, |m, p| m.max(p.t))
    }

    /// Relative load imbalance of the given per-process times:
    /// `(t_max - t_min) / t_max`, `0` when all times are zero.
    pub fn imbalance_of(times: &[f64]) -> f64 {
        let max = times.iter().fold(0.0_f64, |m, t| m.max(*t));
        let min = times.iter().fold(f64::INFINITY, |m, t| m.min(*t));
        if max <= 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }

    /// Relative imbalance of the *predicted* times of this distribution.
    pub fn predicted_imbalance(&self) -> f64 {
        let times: Vec<f64> = self.parts.iter().map(|p| p.t).collect();
        Self::imbalance_of(&times)
    }
}

/// A model-based data-partitioning algorithm.
///
/// Matches the paper's `fupermod_partition` function-pointer interface:
/// the number of processes is implied by the model slice, and the
/// result carries both sizes and predicted times.
pub trait Partitioner {
    /// Distributes `total` units according to `models`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Partition`] if `models` is empty or any
    /// model lacks the data the algorithm needs, and propagates solver
    /// failures.
    fn partition(&self, total: u64, models: &[&dyn Model]) -> Result<Distribution, CoreError>;

    /// Like [`Partitioner::partition`], additionally recording a
    /// one-shot [`crate::trace::TraceEvent::PartitionStep`] (with
    /// `iter = 0` and the distribution's *predicted* imbalance) to
    /// `sink`. Static partitionings thereby show up in the same trace
    /// stream as dynamic refinement steps.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Partitioner::partition`].
    fn partition_traced(
        &self,
        total: u64,
        models: &[&dyn Model],
        sink: &dyn crate::trace::TraceSink,
    ) -> Result<Distribution, CoreError> {
        let dist = self.partition(total, models)?;
        sink.record(&crate::trace::TraceEvent::PartitionStep {
            iter: 0,
            dist: dist.sizes(),
            imbalance: dist.predicted_imbalance(),
            units_moved: 0,
        });
        Ok(dist)
    }
}

/// Rounds a continuous distribution to integers (preserving the total)
/// and attaches each part's predicted time.
pub(crate) fn finalize(
    total: u64,
    continuous: &[f64],
    models: &[&dyn Model],
) -> Result<Distribution, CoreError> {
    crate::trace::metrics().add_repartition();
    let weights: Vec<f64> = continuous.iter().map(|d| d.max(0.0)).collect();
    let shares = largest_remainder(&weights, total).map_err(CoreError::from)?;
    let parts = shares
        .iter()
        .zip(models)
        .map(|(&d, m)| Part {
            d,
            t: m.time(d as f64).unwrap_or(0.0),
        })
        .collect();
    Ok(Distribution { total, parts })
}

/// Checks the common preconditions shared by all partitioners.
pub(crate) fn check_inputs(models: &[&dyn Model]) -> Result<(), CoreError> {
    if models.is_empty() {
        return Err(CoreError::Partition(
            "cannot partition over zero processes".to_owned(),
        ));
    }
    for (i, m) in models.iter().enumerate() {
        if !m.is_ready() {
            return Err(CoreError::Partition(format!(
                "model of process {i} has no experimental points"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_spreads_remainders() {
        let d = Distribution::even(10, 3);
        assert_eq!(d.sizes(), vec![4, 3, 3]);
        assert_eq!(d.total_assigned(), 10);
    }

    #[test]
    fn imbalance_is_relative_spread() {
        assert_eq!(Distribution::imbalance_of(&[1.0, 1.0, 1.0]), 0.0);
        assert!((Distribution::imbalance_of(&[2.0, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(Distribution::imbalance_of(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn imbalance_of_degenerate_inputs_is_zero_and_finite() {
        // Regression: `t_max == 0`, empty and single-observation inputs
        // must yield exactly 0.0, never NaN or a negative value.
        assert_eq!(Distribution::imbalance_of(&[]), 0.0);
        assert_eq!(Distribution::imbalance_of(&[5.0]), 0.0);
        assert_eq!(Distribution::imbalance_of(&[0.0]), 0.0);
        assert!(Distribution::imbalance_of(&[0.0, 0.0, 0.0]).is_finite());
    }

    #[test]
    #[should_panic(expected = "sum to the total")]
    fn from_parts_validates_total() {
        let _ = Distribution::from_parts(10, vec![Part { d: 3, t: 0.0 }]);
    }

    #[test]
    fn predicted_makespan_is_max_time() {
        let d = Distribution::from_parts(
            3,
            vec![
                Part { d: 1, t: 0.5 },
                Part { d: 1, t: 2.0 },
                Part { d: 1, t: 1.0 },
            ],
        );
        assert_eq!(d.predicted_makespan(), 2.0);
    }
}
