use fupermod_num::solve::{newton_system, NewtonOptions};

use super::{check_inputs, finalize, Distribution, Partitioner};
use crate::model::Model;
use crate::CoreError;

/// The numerical data-partitioning algorithm of Rychkov et al. \[15\]:
/// the optimal distribution is the solution of the non-linear system
///
/// ```text
/// tᵢ(dᵢ) = tₚ(dₚ),  i = 1..p-1        (equal finish times)
/// d₁ + … + dₚ = D                      (conservation)
/// ```
///
/// solved with a damped multidimensional Newton method. The Jacobian
/// comes from the models' analytic time derivatives — this is why the
/// algorithm is paired with the smooth
/// [`AkimaModel`](crate::model::AkimaModel), whose spline has a
/// continuous first derivative; any [`Model`] works as long as its
/// derivative is sane.
///
/// If Newton fails (e.g. on wildly non-monotone spline segments), a
/// multiplicative fixed-point iteration — repeatedly scaling each share
/// by `(mean time / own time)^γ` and renormalising — is used as a
/// fallback; it is slower but needs only time evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericalPartitioner {
    /// Newton solver options.
    pub newton: NewtonOptions,
    /// Fallback relaxation exponent `γ` in `(0, 1]`.
    pub fallback_gamma: f64,
    /// Fallback iteration cap.
    pub fallback_iters: usize,
}

impl Default for NumericalPartitioner {
    fn default() -> Self {
        Self {
            newton: NewtonOptions {
                f_tol: 1e-9,
                x_tol: 1e-10,
                max_iter: 200,
                min_step: 1e-12,
            },
            fallback_gamma: 0.5,
            fallback_iters: 500,
        }
    }
}

impl NumericalPartitioner {
    fn solve_newton(&self, total: f64, models: &[&dyn Model]) -> Result<Vec<f64>, CoreError> {
        let p = models.len();
        let n = p - 1; // free variables; d_p is eliminated

        let time = |i: usize, x: f64| models[i].time(x.max(0.0)).unwrap_or(f64::INFINITY);
        let deriv = |i: usize, x: f64| models[i].time_derivative(x.max(0.0)).unwrap_or(1.0);

        let residual = |x: &[f64], out: &mut [f64]| {
            let last = total - x.iter().sum::<f64>();
            let t_last = time(p - 1, last);
            for i in 0..n {
                out[i] = time(i, x[i]) - t_last;
            }
        };
        let jacobian = |x: &[f64], out: &mut [f64]| {
            let last = total - x.iter().sum::<f64>();
            let dt_last = deriv(p - 1, last);
            for i in 0..n {
                for j in 0..n {
                    // ∂/∂xⱼ [tᵢ(xᵢ) - tₚ(D - Σx)] = δᵢⱼ tᵢ' + tₚ'.
                    out[i * n + j] =
                        if i == j { deriv(i, x[i]) } else { 0.0 } + dt_last;
                }
            }
        };

        // Initial guess: proportional to speeds at the even share.
        let probe = (total / p as f64).max(1.0);
        let speeds: Vec<f64> = models
            .iter()
            .map(|m| m.speed(probe).unwrap_or(1.0).max(1e-12))
            .collect();
        let speed_sum: f64 = speeds.iter().sum();
        let x0: Vec<f64> = speeds[..n]
            .iter()
            .map(|s| s / speed_sum * total)
            .collect();

        let report = newton_system(residual, jacobian, &x0, self.newton)
            .map_err(CoreError::from)?;
        let mut d = report.x;
        d.push(total - d.iter().sum::<f64>());
        if d.iter().any(|v| !v.is_finite() || *v < -0.01 * total) {
            return Err(CoreError::Partition(format!(
                "Newton produced an invalid distribution {d:?}"
            )));
        }
        Ok(d.into_iter().map(|v| v.max(0.0)).collect())
    }

    fn solve_fallback(&self, total: f64, models: &[&dyn Model]) -> Result<Vec<f64>, CoreError> {
        let p = models.len();
        let mut d = vec![total / p as f64; p];
        for _ in 0..self.fallback_iters {
            let times: Vec<f64> = d
                .iter()
                .zip(models)
                .map(|(x, m)| m.time(x.max(1e-9)).unwrap_or(f64::INFINITY))
                .collect();
            let max = times.iter().fold(0.0_f64, |m, t| m.max(*t));
            let min = times.iter().fold(f64::INFINITY, |m, t| m.min(*t));
            if max <= 0.0 || !max.is_finite() {
                return Err(CoreError::Partition(
                    "fallback iteration saw invalid times".to_owned(),
                ));
            }
            if (max - min) / max < 1e-10 {
                break;
            }
            let mean = times.iter().sum::<f64>() / p as f64;
            for (x, t) in d.iter_mut().zip(&times) {
                *x *= (mean / t).powf(self.fallback_gamma);
            }
            let sum: f64 = d.iter().sum();
            for x in &mut d {
                *x *= total / sum;
            }
        }
        Ok(d)
    }
}

impl Partitioner for NumericalPartitioner {
    fn partition(&self, total: u64, models: &[&dyn Model]) -> Result<Distribution, CoreError> {
        check_inputs(models)?;
        if total == 0 || models.len() == 1 {
            let mut continuous = vec![0.0; models.len()];
            continuous[0] = total as f64;
            return finalize(total, &continuous, models);
        }
        let t = total as f64;
        let continuous = match self.solve_newton(t, models) {
            Ok(d) => d,
            Err(_) => self.solve_fallback(t, models)?,
        };
        finalize(total, &continuous, models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AkimaModel, Model};
    use crate::Point;

    fn akima(data: &[(u64, f64)]) -> AkimaModel {
        let mut m = AkimaModel::new();
        for &(d, t) in data {
            m.update(Point::single(d, t)).unwrap();
        }
        m
    }

    #[test]
    fn proportional_for_linear_time_functions() {
        let m1 = akima(&[(100, 1.0), (500, 5.0), (1000, 10.0)]); // 100 u/s
        let m2 = akima(&[(100, 4.0), (500, 20.0), (1000, 40.0)]); // 25 u/s
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = NumericalPartitioner::default()
            .partition(1000, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![800, 200]);
    }

    #[test]
    fn equalises_times_on_smooth_nonlinear_models() {
        // Superlinear time (speed decays with size) vs linear.
        let m1 = akima(&[(100, 1.0), (400, 8.0), (800, 40.0), (1600, 200.0)]);
        let m2 = akima(&[(100, 3.0), (800, 24.0), (1600, 48.0)]);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let dist = NumericalPartitioner::default()
            .partition(1600, &models)
            .unwrap();
        let t1 = m1.time(dist.parts()[0].d as f64).unwrap();
        let t2 = m2.time(dist.parts()[1].d as f64).unwrap();
        assert!(
            (t1 - t2).abs() / t1.max(t2) < 0.02,
            "not equalised: {t1} vs {t2}"
        );
    }

    #[test]
    fn three_process_system_balances() {
        let m1 = akima(&[(100, 1.0), (1000, 11.0), (4000, 60.0)]);
        let m2 = akima(&[(100, 2.0), (1000, 19.0), (4000, 85.0)]);
        let m3 = akima(&[(100, 5.0), (1000, 52.0), (4000, 220.0)]);
        let models: Vec<&dyn Model> = vec![&m1, &m2, &m3];
        let dist = NumericalPartitioner::default()
            .partition(5000, &models)
            .unwrap();
        assert_eq!(dist.total_assigned(), 5000);
        let times: Vec<f64> = dist
            .parts()
            .iter()
            .zip(&models)
            .map(|(p, m)| m.time(p.d as f64).unwrap())
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - min) / max < 0.05, "times: {times:?}");
    }

    #[test]
    fn agrees_with_geometric_on_well_behaved_models() {
        use crate::partition::GeometricPartitioner;
        let m1 = akima(&[(100, 1.0), (500, 6.0), (2000, 30.0)]);
        let m2 = akima(&[(100, 2.5), (500, 14.0), (2000, 70.0)]);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let num = NumericalPartitioner::default()
            .partition(2000, &models)
            .unwrap();
        let geo = GeometricPartitioner::default()
            .partition(2000, &models)
            .unwrap();
        let diff = (num.parts()[0].d as i64 - geo.parts()[0].d as i64).abs();
        assert!(diff < 60, "numerical {:?} vs geometric {:?}", num.sizes(), geo.sizes());
    }

    #[test]
    fn fallback_solves_when_newton_is_disabled() {
        let m1 = akima(&[(100, 1.0), (1000, 10.0)]);
        let m2 = akima(&[(100, 2.0), (1000, 20.0)]);
        let models: Vec<&dyn Model> = vec![&m1, &m2];
        let p = NumericalPartitioner {
            newton: NewtonOptions {
                max_iter: 0, // force fallback
                ..NewtonOptions::default()
            },
            ..NumericalPartitioner::default()
        };
        let dist = p.partition(900, &models).unwrap();
        assert_eq!(dist.sizes(), vec![600, 300]);
    }

    #[test]
    fn single_process_short_circuits() {
        let m = akima(&[(10, 1.0)]);
        let models: Vec<&dyn Model> = vec![&m];
        let dist = NumericalPartitioner::default()
            .partition(42, &models)
            .unwrap();
        assert_eq!(dist.sizes(), vec![42]);
    }

    #[test]
    fn handles_extreme_speed_ratio() {
        let fast = akima(&[(10_000, 1.0), (100_000, 10.0)]);
        let slow = akima(&[(10, 1.0), (100, 10.0)]);
        let models: Vec<&dyn Model> = vec![&fast, &slow];
        let dist = NumericalPartitioner::default()
            .partition(100_000, &models)
            .unwrap();
        assert_eq!(dist.total_assigned(), 100_000);
        assert!(dist.parts()[1].d < 200);
    }
}
