//! Live telemetry registry: named, label-set-keyed counters, gauges
//! and latency histograms that can be snapshotted **at any time** —
//! not just at process exit — and exported both as schema-v4
//! `metrics` trace events and as Prometheus text exposition format
//! (the `/metrics` endpoint of `fupermod_served`).
//!
//! The hot path is lock-free: recording into a registered handle is
//! a couple of relaxed atomic operations, and a *disabled* registry
//! costs exactly one relaxed boolean load per record — the same
//! gating discipline as [`crate::trace::Metrics`]'s histograms, so
//! untelemetered runs pay nothing measurable (see the
//! `telemetry_overhead` bench). Registration takes a mutex, but is
//! expected once per (name, label-set) at startup; handles are cheap
//! `Arc` clones that remain valid for the registry's lifetime.
//!
//! Naming follows the Prometheus conventions: `snake_case` metric
//! names with a unit suffix (`_total` for counters,
//! `_duration_seconds` for latency histograms), label keys
//! `[a-zA-Z_][a-zA-Z0-9_]*`. The process-wide [`global`] registry
//! starts **disabled**; `fupermod_served` owns a per-store registry
//! that is always enabled, and traced CLI runs enable the global one
//! alongside the trace sink.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::trace::{
    fmt_float, HistogramSnapshot, LatencyHistogram, TraceEvent, TraceSink, COMM_OPS,
};

/// Fault tags fed to [`record_fault`] by the runtime's fault
/// machinery (mirrors the `kind` field of `fault` trace events).
pub const FAULT_KINDS: [&str; 7] = [
    "delay",
    "drop",
    "retry",
    "straggler",
    "death",
    "timeout",
    "degraded",
];

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64` (`*_total`).
    Counter,
    /// Arbitrary `f64` that can go up and down.
    Gauge,
    /// The 48-bin log-bucketed [`LatencyHistogram`].
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` tag.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct CounterInner {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

#[derive(Debug)]
struct GaugeInner {
    enabled: Arc<AtomicBool>,
    bits: AtomicU64,
}

#[derive(Debug)]
struct HistogramInner {
    enabled: Arc<AtomicBool>,
    hist: LatencyHistogram,
}

/// Handle to one registered counter series. Cloning is cheap and all
/// clones share the same underlying atomic.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    /// Adds 1; a single relaxed load when the registry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`; a single relaxed load when the registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// Handle to one registered gauge series (an `f64` stored as bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Sets the gauge; a single relaxed load when disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

/// Handle to one registered latency-histogram series.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one latency in seconds; a single relaxed load when
    /// disabled.
    #[inline]
    pub fn record(&self, seconds: f64) {
        if self.0.enabled.load(Ordering::Relaxed) {
            self.0.hist.record(seconds);
        }
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.hist.snapshot()
    }
}

#[derive(Debug)]
enum SeriesValue {
    Counter(Arc<CounterInner>),
    Gauge(Arc<GaugeInner>),
    Histogram(Arc<HistogramInner>),
}

#[derive(Debug)]
struct Series {
    /// Label pairs sorted by key (the canonical order everywhere:
    /// registration key, exposition, trace export).
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the canonical `k=v;k=v` label string.
    series: BTreeMap<String, Series>,
}

/// A registry of metric families. See the module docs for the
/// threading and gating model.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry. `enabled` controls whether handles record
    /// at all (flippable later via [`Registry::set_enabled`]).
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(enabled)),
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Enables or disables every handle of this registry at once.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether handles currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) the counter `name{labels}`.
    /// Registration is idempotent: the same (name, label-set) always
    /// yields a handle to the same underlying atomic, and the first
    /// `help` text wins.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered with a different
    /// metric kind, or on a malformed name/label key — both are
    /// programmer errors, caught in tests.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let series = self.series(name, help, labels, MetricKind::Counter, || {
            SeriesValue::Counter(Arc::new(CounterInner {
                enabled: Arc::clone(&self.enabled),
                value: AtomicU64::new(0),
            }))
        });
        match series {
            SeriesValue::Counter(inner) => Counter(inner),
            _ => unreachable!("series() checked the kind"),
        }
    }

    /// Registers (or retrieves) the gauge `name{labels}`. Same
    /// semantics as [`Registry::counter`]. A fresh gauge reads `0`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let series = self.series(name, help, labels, MetricKind::Gauge, || {
            SeriesValue::Gauge(Arc::new(GaugeInner {
                enabled: Arc::clone(&self.enabled),
                bits: AtomicU64::new(0.0f64.to_bits()),
            }))
        });
        match series {
            SeriesValue::Gauge(inner) => Gauge(inner),
            _ => unreachable!("series() checked the kind"),
        }
    }

    /// Registers (or retrieves) the latency histogram `name{labels}`.
    /// Same semantics as [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let series = self.series(name, help, labels, MetricKind::Histogram, || {
            SeriesValue::Histogram(Arc::new(HistogramInner {
                enabled: Arc::clone(&self.enabled),
                hist: LatencyHistogram::new(),
            }))
        });
        match series {
            SeriesValue::Histogram(inner) => Histogram(inner),
            _ => unreachable!("series() checked the kind"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> SeriesValue,
    ) -> SeriesValue {
        assert!(valid_name(name), "invalid metric name '{name}'");
        for (k, _) in labels {
            assert!(valid_label_key(k), "invalid label key '{k}' on '{name}'");
        }
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        sorted.sort();
        let key = canonical_labels(&sorted);

        let mut families = self.families.lock().expect("telemetry registry poisoned");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric '{name}' already registered as a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let series = family.series.entry(key).or_insert_with(|| Series {
            labels: sorted,
            value: make(),
        });
        match &series.value {
            SeriesValue::Counter(inner) => SeriesValue::Counter(Arc::clone(inner)),
            SeriesValue::Gauge(inner) => SeriesValue::Gauge(Arc::clone(inner)),
            SeriesValue::Histogram(inner) => SeriesValue::Histogram(Arc::clone(inner)),
        }
    }

    /// Point-in-time copy of every registered series, families sorted
    /// by name and series by canonical label order. The snapshot is
    /// internally consistent per series (each counter/gauge is one
    /// atomic load; histograms snapshot bin-by-bin as
    /// [`LatencyHistogram::snapshot`] does).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("telemetry registry poisoned");
        let families = families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                help: family.help.clone(),
                kind: family.kind,
                series: family
                    .series
                    .values()
                    .map(|series| SeriesSnapshot {
                        labels: series.labels.clone(),
                        value: match &series.value {
                            SeriesValue::Counter(inner) => {
                                SampleValue::Counter(inner.value.load(Ordering::Relaxed))
                            }
                            SeriesValue::Gauge(inner) => SampleValue::Gauge(f64::from_bits(
                                inner.bits.load(Ordering::Relaxed),
                            )),
                            SeriesValue::Histogram(inner) => {
                                SampleValue::Histogram(inner.hist.snapshot())
                            }
                        },
                    })
                    .collect(),
            })
            .collect();
        RegistrySnapshot { families }
    }
}

/// One sampled value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One series (label-set) of a family in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// One metric family in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: String,
    /// Help text (first registration wins).
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Series in canonical label order.
    pub series: Vec<SeriesSnapshot>,
}

/// A point-in-time copy of a whole [`Registry`], ready to render as
/// Prometheus exposition text or export as schema-v4 trace events.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Looks up one sampled series by family name and exact (sorted)
    /// label set — the one-source-of-truth accessor `stats`-style
    /// consumers use.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        sorted.sort();
        self.families
            .iter()
            .find(|f| f.name == name)?
            .series
            .iter()
            .find(|s| s.labels == sorted)
            .map(|s| &s.value)
    }

    /// Sum of a counter family across all label sets (0 when the
    /// family is absent or not a counter family).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.name == name)
            .flat_map(|f| &f.series)
            .map(|s| match s.value {
                SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` per family, one sample line
    /// per series with labels in canonical sorted order, histograms
    /// expanded to cumulative `_bucket{le=...}` lines (upper bounds
    /// in seconds) plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for family in &self.families {
            if !family.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(&family.name);
                out.push(' ');
                out.push_str(&escape_help(&family.help));
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for series in &family.series {
                match &series.value {
                    SampleValue::Counter(v) => {
                        out.push_str(&family.name);
                        push_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(&family.name);
                        push_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_sample(*v));
                        out.push('\n');
                    }
                    SampleValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, b) in h.buckets.iter().enumerate() {
                            cumulative += b;
                            let le = if i < h.buckets.len() - 1 {
                                fmt_sample(HistogramSnapshot::bin_upper_seconds(i))
                            } else {
                                "+Inf".to_owned()
                            };
                            out.push_str(&family.name);
                            out.push_str("_bucket");
                            push_labels(&mut out, &series.labels, Some(&le));
                            out.push(' ');
                            out.push_str(&cumulative.to_string());
                            out.push('\n');
                        }
                        out.push_str(&family.name);
                        out.push_str("_sum");
                        push_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_sample(h.sum_seconds));
                        out.push('\n');
                        out.push_str(&family.name);
                        out.push_str("_count");
                        push_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Exports every series as one schema-v4 [`TraceEvent::Metrics`]
    /// each (scope = family name, `kind`/`labels` filled in; counter
    /// value in `count`, gauge value in `sum`), and returns how many
    /// events were written. Label values are sanitised to escape-free
    /// tags (`,`/`;`/`=`/quotes/newlines become `_`) so the events
    /// survive both wire encodings.
    pub fn export_trace_events(&self, rank: usize, sink: &dyn TraceSink) -> usize {
        let mut emitted = 0;
        for family in &self.families {
            for series in &family.series {
                let labels = trace_labels(&series.labels);
                let event = match &series.value {
                    SampleValue::Counter(v) => TraceEvent::Metrics {
                        rank,
                        scope: family.name.clone(),
                        count: *v,
                        sum: 0.0,
                        buckets: Vec::new(),
                        kind: "counter".to_owned(),
                        labels,
                    },
                    SampleValue::Gauge(v) => TraceEvent::Metrics {
                        rank,
                        scope: family.name.clone(),
                        count: 0,
                        sum: *v,
                        buckets: Vec::new(),
                        kind: "gauge".to_owned(),
                        labels,
                    },
                    SampleValue::Histogram(h) => TraceEvent::Metrics {
                        rank,
                        scope: family.name.clone(),
                        count: h.count,
                        sum: h.sum_seconds,
                        buckets: h.buckets.clone(),
                        kind: "histogram".to_owned(),
                        labels,
                    },
                };
                sink.record(&event);
                emitted += 1;
            }
        }
        emitted
    }
}

/// Metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*` (Prometheus grammar).
fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Label keys: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_key(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Canonical `k=v;k=v` encoding of a sorted label list (registry key
/// and, after sanitisation, the trace-event `labels` field).
fn canonical_labels(sorted: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

/// The trace-event `labels` field: canonical encoding with values
/// sanitised to escape-free tags (see `trace::push_str`).
fn trace_labels(sorted: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(k);
        out.push('=');
        for c in v.chars() {
            out.push(match c {
                ',' | ';' | '=' | '"' | '\\' | '\n' => '_',
                other => other,
            });
        }
    }
    out
}

/// Appends `{k="v",...}` (or nothing for an empty, `le`-less set) to
/// `out`, escaping label values per the exposition spec
/// (`\\` → `\\\\`, `"` → `\"`, newline → `\n`). The `le` bound, when
/// given, is appended last.
fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes `# HELP` text: backslash and newline (quotes are legal).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats one sample value: shortest-round-trip for finite floats,
/// `+Inf`/`-Inf`/`NaN` otherwise (exposition spellings).
fn fmt_sample(v: f64) -> String {
    if v.is_finite() {
        fmt_float(v)
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v > 0.0 {
        "+Inf".to_owned()
    } else {
        "-Inf".to_owned()
    }
}

/// The process-wide telemetry bundle: the registry plus
/// pre-registered hot-path handles (per-op communication latency,
/// per-kind fault counters) so the runtime's record paths never take
/// the registration mutex.
struct GlobalTelemetry {
    registry: Registry,
    comm: Vec<Histogram>,
    faults: Vec<Counter>,
}

fn global_telemetry() -> &'static GlobalTelemetry {
    static GLOBAL: OnceLock<GlobalTelemetry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        // Disabled by default: unscraped, untraced runs pay one
        // relaxed load per record and nothing else.
        let registry = Registry::new(false);
        let comm = COMM_OPS
            .iter()
            .map(|op| {
                registry.histogram(
                    "fupermod_comm_duration_seconds",
                    "Communication operation latency by collective/point-to-point op.",
                    &[("op", op)],
                )
            })
            .collect();
        let faults = FAULT_KINDS
            .iter()
            .map(|kind| {
                registry.counter(
                    "fupermod_faults_total",
                    "Faults injected or observed by the runtime, by kind.",
                    &[("kind", kind)],
                )
            })
            .collect();
        GlobalTelemetry {
            registry,
            comm,
            faults,
        }
    })
}

/// The process-wide registry (starts disabled; traced/scraped runs
/// flip it on via [`Registry::set_enabled`]).
pub fn global() -> &'static Registry {
    &global_telemetry().registry
}

/// Records one communication-operation latency into the global
/// `fupermod_comm_duration_seconds{op=...}` histogram. Unknown ops
/// are ignored; one relaxed load when the global registry is
/// disabled.
#[inline]
pub fn record_comm(op: &str, seconds: f64) {
    let g = global_telemetry();
    if !g.registry.enabled() {
        return;
    }
    if let Some(i) = COMM_OPS.iter().position(|&o| o == op) {
        g.comm[i].record(seconds);
    }
}

/// Counts one fault into the global `fupermod_faults_total{kind=...}`
/// counter. Unknown kinds are ignored; one relaxed load when the
/// global registry is disabled.
#[inline]
pub fn record_fault(kind: &str) {
    let g = global_telemetry();
    if !g.registry.enabled() {
        return;
    }
    if let Some(i) = FAULT_KINDS.iter().position(|&k| k == kind) {
        g.faults[i].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySink;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new(false);
        let c = r.counter("x_total", "", &[]);
        let g = r.gauge("x_gauge", "", &[]);
        let h = r.histogram("x_seconds", "", &[]);
        c.inc();
        g.set(3.5);
        h.record(1e-6);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.snapshot().count, 0);
        r.set_enabled(true);
        c.add(2);
        g.set(3.5);
        h.record(1e-6);
        assert_eq!(c.get(), 2);
        assert_eq!(g.get(), 3.5);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let r = Registry::new(true);
        let a = r.counter("req_total", "requests", &[("op", "get")]);
        let b = r.counter("req_total", "ignored second help", &[("op", "get")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2); // same underlying atomic
        let other = r.counter("req_total", "", &[("op", "put")]);
        assert_eq!(other.get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].help, "requests");
        assert_eq!(snap.families[0].series.len(), 2);
        assert_eq!(snap.counter_total("req_total"), 2);
        assert_eq!(
            snap.find("req_total", &[("op", "get")]),
            Some(&SampleValue::Counter(2))
        );
        assert_eq!(snap.find("req_total", &[("op", "missing")]), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new(true);
        let _c = r.counter("dual_total", "", &[]);
        let _g = r.gauge("dual_total", "", &[]);
    }

    #[test]
    fn labels_are_canonically_sorted() {
        let r = Registry::new(true);
        let a = r.counter("s_total", "", &[("b", "2"), ("a", "1")]);
        let b = r.counter("s_total", "", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1); // same series either way round
        let snap = r.snapshot();
        assert_eq!(
            snap.families[0].series[0].labels,
            vec![("a".to_owned(), "1".to_owned()), ("b".to_owned(), "2".to_owned())]
        );
    }

    #[test]
    fn trace_export_emits_v4_events() {
        let r = Registry::new(true);
        r.counter("c_total", "", &[("op", "a;b=c")]).add(7);
        r.gauge("g_value", "", &[]).set(2.25);
        r.histogram("h_seconds", "", &[]).record(1e-6);
        let sink = MemorySink::new();
        let n = r.snapshot().export_trace_events(3, &sink);
        assert_eq!(n, 3);
        let events = sink.events();
        match &events[0] {
            TraceEvent::Metrics {
                rank,
                scope,
                count,
                kind,
                labels,
                buckets,
                ..
            } => {
                assert_eq!(*rank, 3);
                assert_eq!(scope, "c_total");
                assert_eq!(*count, 7);
                assert_eq!(kind, "counter");
                // `;`/`=` in the value sanitised for the wire.
                assert_eq!(labels, "op=a_b_c");
                assert!(buckets.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[1] {
            TraceEvent::Metrics {
                scope, sum, kind, ..
            } => {
                assert_eq!(scope, "g_value");
                assert_eq!(*sum, 2.25);
                assert_eq!(kind, "gauge");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Every exported event survives both wire encodings.
        for e in sink.events() {
            assert_eq!(TraceEvent::from_jsonl(&e.to_jsonl()).unwrap(), e);
            assert_eq!(TraceEvent::from_csv_row(&e.to_csv_row()).unwrap(), e);
        }
    }

    #[test]
    fn global_registry_feeds_comm_and_faults_when_enabled() {
        // The global registry is shared process-wide; leave it the
        // way we found it.
        let was = global().enabled();
        global().set_enabled(true);
        record_comm("send", 1e-6);
        record_comm("not-an-op", 1e-6); // ignored
        record_fault("retry");
        record_fault("not-a-kind"); // ignored
        let snap = global().snapshot();
        match snap
            .find("fupermod_comm_duration_seconds", &[("op", "send")])
            .unwrap()
        {
            SampleValue::Histogram(h) => assert!(h.count >= 1),
            other => panic!("unexpected {other:?}"),
        }
        match snap.find("fupermod_faults_total", &[("kind", "retry")]).unwrap() {
            SampleValue::Counter(v) => assert!(*v >= 1),
            other => panic!("unexpected {other:?}"),
        }
        global().set_enabled(was);
    }
}
