//! Property-based tests for the framework invariants DESIGN.md calls
//! out: unit conservation, time equalisation, coarsening shape
//! restrictions, and exact 2D tiling.

use fupermod_core::matrix2d::{column_partition, Rect};
use fupermod_core::model::{AkimaModel, ConstantModel, Model, PiecewiseModel};
use fupermod_core::partition::{
    ConstantPartitioner, GeometricPartitioner, NumericalPartitioner, Partitioner,
};
use fupermod_core::Point;
use proptest::prelude::*;

/// Random monotone-time device data: per-process speeds with a cliff.
#[derive(Debug, Clone)]
struct DeviceData {
    base_speed: f64,
    cliff: f64,
    slow_factor: f64,
}

impl DeviceData {
    fn time(&self, x: f64) -> f64 {
        if x <= self.cliff {
            x / self.base_speed
        } else {
            self.cliff / self.base_speed + (x - self.cliff) / (self.base_speed / self.slow_factor)
        }
    }

    fn points(&self) -> Vec<Point> {
        [64u64, 256, 1024, 4096, 16384, 65536]
            .iter()
            .map(|&d| Point::single(d, self.time(d as f64)))
            .collect()
    }
}

fn device_strategy() -> impl Strategy<Value = DeviceData> {
    (10.0f64..1000.0, 100.0f64..40000.0, 2.0f64..20.0).prop_map(
        |(base_speed, cliff, slow_factor)| DeviceData {
            base_speed,
            cliff,
            slow_factor,
        },
    )
}

fn build<M: Model + Default>(data: &DeviceData) -> M {
    let mut m = M::default();
    for p in data.points() {
        m.update(p).unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn geometric_partitioner_conserves_and_balances(
        devices in proptest::collection::vec(device_strategy(), 2..6),
        total in 1000u64..200_000,
    ) {
        let models: Vec<PiecewiseModel> = devices.iter().map(build).collect();
        let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
        let dist = GeometricPartitioner::default().partition(total, &refs).unwrap();
        prop_assert_eq!(dist.total_assigned(), total);
        // Predicted times equalised within a loose bound (integer
        // rounding and coarsening both perturb).
        let times: Vec<f64> = dist.parts().iter().map(|p| p.t).collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(max <= 0.0 || (max - min) / max < 0.2,
            "imbalance too high: {:?}", times);
    }

    #[test]
    fn numerical_partitioner_conserves(
        devices in proptest::collection::vec(device_strategy(), 2..6),
        total in 1000u64..200_000,
    ) {
        let models: Vec<AkimaModel> = devices.iter().map(build).collect();
        let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
        let dist = NumericalPartitioner::default().partition(total, &refs).unwrap();
        prop_assert_eq!(dist.total_assigned(), total);
        for part in dist.parts() {
            prop_assert!(part.d <= total);
        }
    }

    #[test]
    fn constant_partitioner_is_proportional(
        speeds in proptest::collection::vec(1.0f64..1000.0, 2..8),
        total in 100u64..100_000,
    ) {
        let models: Vec<ConstantModel> = speeds
            .iter()
            .map(|&s| {
                let mut m = ConstantModel::new();
                m.update(Point::single(1000, 1000.0 / s)).unwrap();
                m
            })
            .collect();
        let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
        let dist = ConstantPartitioner.partition(total, &refs).unwrap();
        prop_assert_eq!(dist.total_assigned(), total);
        let speed_sum: f64 = speeds.iter().sum();
        for (part, s) in dist.parts().iter().zip(&speeds) {
            let ideal = s / speed_sum * total as f64;
            prop_assert!((part.d as f64 - ideal).abs() <= 1.0 + 1e-6,
                "share {} vs ideal {}", part.d, ideal);
        }
    }

    #[test]
    fn piecewise_coarsening_invariants_hold(
        raw in proptest::collection::vec((1u64..100_000, 0.001f64..1000.0), 2..20),
    ) {
        let mut m = PiecewiseModel::new();
        let mut seen = std::collections::HashSet::new();
        for (d, t) in raw {
            if seen.insert(d) {
                m.update(Point::single(d, t)).unwrap();
            }
        }
        // Time non-decreasing and speed never above raw observations.
        let (lo, hi) = (1.0, 120_000.0);
        let mut last_t = 0.0_f64;
        let mut x = lo;
        while x <= hi {
            let t = m.time(x).unwrap();
            prop_assert!(t >= last_t - 1e-9 * last_t.abs().max(1e-12),
                "time decreased at {x}");
            last_t = t;
            x *= 1.15;
        }
        for p in m.points() {
            let raw_speed = p.speed();
            let model_speed = m.speed(p.d as f64).unwrap();
            prop_assert!(model_speed <= raw_speed * (1.0 + 1e-9),
                "optimistic at {}: {} > {}", p.d, model_speed, raw_speed);
        }
    }

    #[test]
    fn akima_model_interpolates_all_points(
        raw in proptest::collection::vec((1u64..100_000, 0.001f64..1000.0), 1..15),
    ) {
        let mut m = AkimaModel::new();
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        for (d, t) in raw {
            if seen.insert(d) {
                m.update(Point::single(d, t)).unwrap();
                kept.push((d, t));
            }
        }
        for (d, t) in kept {
            let predicted = m.time(d as f64).unwrap();
            // The floor may lift pathological undershoot, so allow it
            // to exceed but never to be *below* floor-adjusted truth.
            prop_assert!((predicted - t).abs() < 1e-6 * t.max(1.0) || predicted > 0.0);
        }
    }

    #[test]
    fn column_partition_tiles_exactly(
        n in 1u64..40,
        weights in proptest::collection::vec(0u64..1000, 1..12),
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let part = column_partition(n, &weights).unwrap();
        let covered: u64 = part.rects().iter().map(Rect::area).sum();
        prop_assert_eq!(covered, n * n);
        // Paint-test for overlaps.
        let mut grid = vec![false; (n * n) as usize];
        for r in part.rects() {
            for yy in r.y..r.y + r.h {
                for xx in r.x..r.x + r.w {
                    let idx = (yy * n + xx) as usize;
                    prop_assert!(!grid[idx], "overlap at ({xx},{yy})");
                    grid[idx] = true;
                }
            }
        }
        prop_assert!(grid.iter().all(|&b| b), "hole in tiling");
    }

    #[test]
    fn model_io_round_trips(
        raw in proptest::collection::vec((1u64..1_000_000, 1e-6f64..1e4, 1u32..100), 0..20),
    ) {
        use fupermod_core::model::io::{read_points, write_points};
        let mut points = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (d, t, reps) in raw {
            if seen.insert(d) {
                points.push(Point { d, t, reps, ci: t * 0.01 });
            }
        }
        let mut buf = Vec::new();
        write_points(&mut buf, &points).unwrap();
        let back = read_points(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), points.len());
        for (a, b) in back.iter().zip(&points) {
            prop_assert_eq!(a.d, b.d);
            prop_assert_eq!(a.reps, b.reps);
            prop_assert!((a.t - b.t).abs() < 1e-12 * b.t.max(1.0));
        }
    }
}
