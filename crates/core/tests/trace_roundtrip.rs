//! Property tests for the trace wire formats: every [`TraceEvent`]
//! variant must survive JSONL → decode → JSONL and
//! JSONL → CSV → decode → JSONL unchanged, including non-finite
//! floats (`null` / `1e9999` / `-1e9999`) and the schema-v3
//! `lamport`/`gen`/histogram fields. Because `NaN != NaN`, round
//! trips are compared on the *canonical JSONL encoding*, which is
//! total.

use std::io::Cursor;

use fupermod_core::trace::{
    TraceEvent, TraceReader, COMM_OPS, HISTOGRAM_BUCKETS, SCHEMA_VERSION,
};
use proptest::prelude::*;

/// Floats as traces see them: finite magnitudes across many decades,
/// zero, and the three non-finite encodings.
fn float_strategy() -> impl Strategy<Value = f64> {
    (-1.0e3f64..1.0e3, 0usize..8).prop_map(|(base, sel)| match sel {
        0 => 0.0,
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => base * 1e-9, // nanoseconds
        5 => base * 1e9,  // giant
        _ => base,
    })
}

/// u64 values that survive the f64 stage of the flat JSON parser
/// (exact up to 2^53).
fn u64_strategy() -> impl Strategy<Value = u64> {
    (0u64..(1 << 53), 0usize..4).prop_map(|(v, sel)| match sel {
        0 => 0,
        1 => (1 << 53) - 1,
        _ => v,
    })
}

const ALGORITHMS: [&str; 5] = ["hub", "ring", "tree", "direct", ""];
const KINDS: [&str; 7] = [
    "delay",
    "drop",
    "retry",
    "straggler",
    "death",
    "timeout",
    "degraded",
];
const SCOPES: [&str; 3] = ["comm.send", "comm.allreduce", "bench.rep"];
// Schema-v4 metric kind/label addendum values, including the empty
// legacy spellings.
const METRIC_KINDS: [&str; 4] = ["", "counter", "gauge", "histogram"];
const LABEL_SETS: [&str; 4] = ["", "op=ingest;outcome=ok", "kind=retry", "shard=3"];

#[allow(clippy::too_many_arguments)]
fn make_event(
    variant: usize,
    rank: usize,
    big: u64,
    big2: u64,
    small: u32,
    f1: f64,
    f2: f64,
    f3: f64,
    pick: usize,
    dist: Vec<u64>,
    buckets: Vec<u64>,
) -> TraceEvent {
    match variant % 8 {
        0 => TraceEvent::BenchmarkSample {
            rank,
            d: big,
            rep: small,
            time: f1,
            ci_rel: f2,
        },
        1 => TraceEvent::BenchmarkDone {
            rank,
            d: big,
            reps: small,
            mean: f1,
            stderr: f2,
            elapsed: f3,
            outliers_rejected: small / 3,
        },
        2 => TraceEvent::ModelUpdate {
            rank,
            d: big,
            t: f1,
            reps: small,
            points: rank + 1,
        },
        3 => TraceEvent::PartitionStep {
            iter: big2,
            dist,
            imbalance: f1,
            units_moved: big,
        },
        4 => TraceEvent::DynamicConverged {
            steps: big2,
            imbalance: f1,
        },
        5 => TraceEvent::Comm {
            rank,
            op: COMM_OPS[pick % COMM_OPS.len()].to_owned(),
            peer: (rank as i64) - 1,
            bytes: big,
            seconds: f1,
            algorithm: ALGORITHMS[pick % ALGORITHMS.len()].to_owned(),
            rounds: big2 % 64,
            lamport: big2,
            gen: big,
        },
        6 => TraceEvent::Fault {
            rank,
            kind: KINDS[pick % KINDS.len()].to_owned(),
            peer: (rank as i64) - 1,
            attempt: small,
            seconds: f1,
        },
        _ => TraceEvent::Metrics {
            rank,
            scope: SCOPES[pick % SCOPES.len()].to_owned(),
            count: big,
            sum: f1,
            buckets,
            kind: METRIC_KINDS[pick % METRIC_KINDS.len()].to_owned(),
            labels: LABEL_SETS[pick % LABEL_SETS.len()].to_owned(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jsonl_and_csv_round_trip_every_variant(
        variant in 0usize..8,
        rank in 0usize..64,
        big in u64_strategy(),
        big2 in u64_strategy(),
        small in 0u32..10_000,
        f1 in float_strategy(),
        f2 in float_strategy(),
        f3 in float_strategy(),
        pick in 0usize..64,
        dist in proptest::collection::vec(0u64..1_000_000, 0..6),
        buckets in proptest::collection::vec(
            0u64..1_000_000,
            HISTOGRAM_BUCKETS + 2..HISTOGRAM_BUCKETS + 3,
        ),
    ) {
        let event = make_event(
            variant, rank, big, big2, small, f1, f2, f3, pick, dist, buckets,
        );
        let canonical = event.to_jsonl();

        // JSONL -> decode -> JSONL.
        let decoded = TraceEvent::from_jsonl(&canonical).unwrap();
        prop_assert_eq!(decoded.to_jsonl(), canonical.clone());

        // JSONL -> CSV -> decode -> JSONL (the CSV columns must carry
        // every field of every variant, non-finite spellings included).
        let row = event.to_csv_row();
        let from_csv = TraceEvent::from_csv_row(&row).unwrap();
        prop_assert_eq!(from_csv.to_jsonl(), canonical);
    }
}

#[test]
fn non_finite_floats_round_trip_explicitly() {
    let event = TraceEvent::BenchmarkSample {
        rank: 3,
        d: 100,
        rep: 0,
        time: f64::NAN,
        ci_rel: f64::INFINITY,
    };
    let line = event.to_jsonl();
    assert!(line.contains("\"time\":null"), "line: {line}");
    assert!(line.contains("\"ci_rel\":1e9999"), "line: {line}");
    let back = TraceEvent::from_jsonl(&line).unwrap();
    match back {
        TraceEvent::BenchmarkSample { time, ci_rel, .. } => {
            assert!(time.is_nan());
            assert_eq!(ci_rel, f64::INFINITY);
        }
        other => panic!("wrong variant: {other:?}"),
    }

    let event = TraceEvent::DynamicConverged {
        steps: 2,
        imbalance: f64::NEG_INFINITY,
    };
    let row = event.to_csv_row();
    let back = TraceEvent::from_csv_row(&row).unwrap();
    assert_eq!(back.to_jsonl(), event.to_jsonl());
    assert!(event.to_jsonl().contains("-1e9999"));
}

#[test]
fn reader_rejects_newer_jsonl_schema() {
    let future = SCHEMA_VERSION + 1;
    let text = format!(
        "{{\"trace\":\"fupermod\",\"schema\":{future}}}\n\
         {{\"event\":\"dynamic_converged\",\"steps\":1,\"imbalance\":0.5}}\n"
    );
    let err = TraceReader::new(Cursor::new(text.into_bytes()))
        .err()
        .expect("future schema must be rejected");
    let msg = err.to_string();
    assert!(msg.contains(&future.to_string()), "unhelpful error: {msg}");
}

#[test]
fn reader_accepts_older_schemas_with_v3_defaults() {
    // A v1-era trace: no lamport/gen on comm, no metrics events.
    let text = "{\"trace\":\"fupermod\",\"schema\":1}\n\
                {\"event\":\"comm\",\"rank\":1,\"op\":\"send\",\"peer\":0,\
                 \"bytes\":64,\"seconds\":0.001}\n";
    let events: Vec<TraceEvent> = TraceReader::new(Cursor::new(text.as_bytes().to_vec()))
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    match &events[0] {
        TraceEvent::Comm {
            lamport,
            gen,
            algorithm,
            rounds,
            ..
        } => {
            assert_eq!((*lamport, *gen, *rounds), (0, 0, 0));
            assert_eq!(algorithm, "", "pre-addendum algorithm decodes empty");
        }
        other => panic!("wrong variant: {other:?}"),
    }
}
