//! Golden and property tests for the Prometheus text exposition and
//! the telemetry registry's concurrency contract.
//!
//! The golden tests pin the exact exposition bytes — escaping, label
//! ordering, and the cumulative `_bucket`/`_sum`/`_count` shape — so
//! a scraper-visible format change must show up as a reviewed diff
//! here. The property test hammers one counter family from many
//! threads and checks that no increment is lost and that every
//! mid-flight snapshot is internally consistent.

use std::sync::Arc;

use fupermod_core::telemetry::Registry;
use fupermod_core::trace::HistogramSnapshot;
use proptest::prelude::*;

#[test]
fn golden_counter_and_gauge_exposition() {
    let registry = Registry::new(true);
    let hits = registry.counter(
        "requests_total",
        "Requests handled.",
        &[("outcome", "ok"), ("op", "ingest")],
    );
    let errors = registry.counter(
        "requests_total",
        "Requests handled.",
        &[("op", "lookup"), ("outcome", "error")],
    );
    let uptime = registry.gauge("uptime_seconds", "Seconds since start.", &[]);
    hits.add(3);
    errors.inc();
    uptime.set(1.5);

    // Labels render in sorted key order no matter the registration
    // order; series within a family sort by their canonical label set.
    let expected = "\
# HELP requests_total Requests handled.
# TYPE requests_total counter
requests_total{op=\"ingest\",outcome=\"ok\"} 3
requests_total{op=\"lookup\",outcome=\"error\"} 1
# HELP uptime_seconds Seconds since start.
# TYPE uptime_seconds gauge
uptime_seconds 1.5
";
    assert_eq!(registry.snapshot().render_prometheus(), expected);
}

#[test]
fn golden_label_value_escaping() {
    let registry = Registry::new(true);
    let c = registry.counter(
        "odd_total",
        "Values with every escape.",
        &[("path", "a\\b\"c\nd")],
    );
    c.inc();
    let expected = "\
# HELP odd_total Values with every escape.
# TYPE odd_total counter
odd_total{path=\"a\\\\b\\\"c\\nd\"} 1
";
    assert_eq!(registry.snapshot().render_prometheus(), expected);
}

#[test]
fn histogram_exposition_buckets_are_cumulative_and_match_invariants() {
    let registry = Registry::new(true);
    let h = registry.histogram("op_duration_seconds", "Op latency.", &[("op", "x")]);
    for seconds in [1e-6, 2e-6, 1e-3, 5.0] {
        h.record(seconds);
    }
    let text = registry.snapshot().render_prometheus();

    // Parse the _bucket lines back: cumulative counts must be
    // monotone, le values strictly increasing, the last bucket +Inf
    // carrying the total count, and _count equal to that total.
    let mut last_cum = 0u64;
    let mut last_le = f64::NEG_INFINITY;
    let mut buckets = 0usize;
    let mut inf_cum = None;
    for line in text.lines().filter(|l| l.starts_with("op_duration_seconds_bucket")) {
        buckets += 1;
        let le_raw = line
            .split("le=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("le label");
        let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(cum >= last_cum, "non-monotone cumulative counts:\n{text}");
        last_cum = cum;
        if le_raw == "+Inf" {
            inf_cum = Some(cum);
        } else {
            let le: f64 = le_raw.parse().expect("numeric le");
            assert!(le > last_le, "le not increasing: {le_raw}\n{text}");
            last_le = le;
        }
    }
    assert_eq!(
        buckets,
        fupermod_core::trace::HISTOGRAM_BUCKETS + 2,
        "one _bucket line per bin plus +Inf"
    );
    assert_eq!(inf_cum, Some(4), "+Inf bucket must carry the total");
    assert!(
        text.contains("op_duration_seconds_count{op=\"x\"} 4"),
        "count line:\n{text}"
    );
    // The le bounds are the histogram's own bin uppers, in seconds.
    let first_le: f64 = text
        .lines()
        .find(|l| l.contains("_bucket"))
        .and_then(|l| l.split("le=\"").nth(1))
        .and_then(|s| s.split('"').next())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(first_le, HistogramSnapshot::bin_upper_seconds(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent increments from N threads never lose counts, and a
    /// snapshot taken while they run is internally consistent: every
    /// series value is between 0 and its final total.
    #[test]
    fn concurrent_increments_are_lossless(
        threads in 2usize..8,
        per_thread in 1u64..400,
    ) {
        let registry = Arc::new(Registry::new(true));
        let counter = registry.counter("work_total", "", &[("kind", "x")]);
        let max_total = threads as u64 * per_thread;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = counter.clone();
                let r = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        // Interleave snapshots with increments: a
                        // mid-flight snapshot never over-counts.
                        if i % 64 == 0 {
                            let snap = r.snapshot();
                            assert!(snap.counter_total("work_total") <= max_total);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = registry.snapshot().counter_total("work_total");
        prop_assert_eq!(total, threads as u64 * per_thread);
    }

    /// Concurrent histogram records: the snapshot's count equals the
    /// number of records and the bucket sum equals the count.
    #[test]
    fn concurrent_histogram_records_are_consistent(
        threads in 2usize..6,
        per_thread in 1u64..200,
    ) {
        let registry = Arc::new(Registry::new(true));
        let hist = registry.histogram("lat_seconds", "", &[]);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(1e-6 * (t as f64 + 1.0) * (i as f64 + 1.0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = hist.snapshot();
        let expected = threads as u64 * per_thread;
        prop_assert_eq!(snap.count, expected);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), expected);
    }
}
