//! Multi-process TCP transport behind the [`Communicator`] contract.
//!
//! # Transport model
//!
//! A TCP job runs `world` OS *processes*, one rank each (contrast the
//! in-process backends, where every rank is a thread of one process).
//! Each process owns a [`crate::comm`] data plane of global size with
//! the transport half attached: sends to remote ranks leave as
//! checksummed [`frame`]s, and one **reader thread per peer**
//! re-materialises incoming DATA frames into the same FIFO delivery
//! mailbox the in-process backends use. Everything above the raw
//! send/receive/barrier primitives — every collective schedule, the
//! fault-injection layer, the nonblocking request API, the
//! distributed executor — is the *same code* on both transports,
//! which is what makes fault-free TCP runs bit-identical to threaded
//! runs by construction.
//!
//! # Rendezvous
//!
//! Rank 0 listens on the `--rendezvous` address. Every other rank
//! connects to it with retry/backoff, sends HELLO (its rank, world
//! size, and own listener address), and receives PEERS (the full
//! address table). The rendezvous connection *becomes* the `0↔i` mesh
//! link; the remaining links are built by the higher rank dialing the
//! lower rank's listener and identifying itself with IDENT. Bootstrap
//! is bounded by a connect deadline and fails with
//! [`RuntimeError::Net`] instead of hanging.
//!
//! # Barrier and membership
//!
//! The shared-memory sense-reversing barrier generalises to a hub
//! rendezvous: non-hub ranks send ARRIVE (stamped with their Lamport
//! clock) to the hub — the lowest agreed-live rank, the same rank hub
//! collective schedules route through — and the hub answers RELEASE
//! carrying the joined clock and the new agreed membership bitmap.
//! Peer disconnects (EOF without BYE, a failed write, a corrupt
//! frame) map onto the existing agreed-membership death path: the
//! peer is marked dead, a `disconnect` fault event is traced, and
//! blocked operations observe [`RuntimeError::RankDead`] — exactly
//! what an in-process rank death looks like. Known limitation: the
//! death of the *hub itself* mid-barrier is resolved by deadline
//! fail-stop, not failover (see `docs/RUNTIME.md` §10).

pub mod frame;

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fupermod_core::trace::{null_sink, TraceSink};

use crate::collective::AlgorithmPolicy;
use crate::comm::{
    build_net_plane, comm_for, handle_for, Communicator, Plane, ReduceOp, RuntimeHandle,
    ThreadedComm,
};
use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::wire::Wire;

use frame::{read_frame, write_frame, Frame, FrameKind};

/// Default bound on the whole bootstrap (listen, dial, handshake).
const BOOT_TIMEOUT_SECS: f64 = 30.0;

/// First dial retry backoff; doubles per attempt up to
/// [`MAX_RETRY_BACKOFF`].
const RETRY_BACKOFF: Duration = Duration::from_millis(25);

/// Cap on the dial retry backoff.
const MAX_RETRY_BACKOFF: Duration = Duration::from_millis(500);

/// How long teardown waits for peers to close before abandoning a
/// reader thread.
const SHUTDOWN_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// The hub rank of the current agreement: lowest agreed-live. This is
/// the rank ARRIVE frames rendezvous at, deliberately the same choice
/// the hub collective schedules make.
pub(crate) fn hub_of(agreed: &[bool]) -> usize {
    agreed.iter().position(|&a| a).unwrap_or(0)
}

/// The per-process transport half of a [`crate::comm`] data plane:
/// one locked writer per peer. Reader threads are owned by the
/// [`TcpComm`] guard, not by the plane, so the plane's `Arc` cycle-
/// freely outlives the run.
///
/// Locking rule (deadlock freedom): a writer lock may be taken while
/// holding the plane state lock **only for small control frames**
/// (ARRIVE/RELEASE/BYE); DATA frames of unbounded size are always
/// written with the plane lock released, so a reader blocked on its
/// own plane lock can never transitively stall a remote writer.
pub(crate) struct NetPlane {
    pub(crate) local: usize,
    writers: Vec<Option<Mutex<TcpStream>>>,
}

impl NetPlane {
    /// Sends one DATA frame to `dst`. Called without the plane state
    /// lock held (payloads are unbounded).
    pub(crate) fn send_data(
        &self,
        dst: usize,
        lamport: u64,
        gen: u64,
        delay: f64,
        payload: &[u8],
    ) -> io::Result<()> {
        self.write_to(dst, FrameKind::Data, lamport, gen, delay, payload)
    }

    /// Announces a barrier arrival to the hub (small control frame;
    /// may be written under the plane lock). Best-effort: a dead hub
    /// surfaces as a deadline fail-stop, not a send error.
    pub(crate) fn send_arrive(&self, hub: usize, gen: u64, lamport: u64) {
        let _ = self.write_to(hub, FrameKind::Arrive, lamport, gen, 0.0, &[]);
    }

    /// Broadcasts a barrier RELEASE (new generation, joined clock,
    /// agreed membership) to every peer. Best-effort per peer.
    pub(crate) fn broadcast_release(&self, gen: u64, join: u64, agreed: &[bool], dead: &[bool]) {
        let bitmap = agreed.to_vec().to_bytes();
        for (r, writer) in self.writers.iter().enumerate() {
            if writer.is_none() || dead[r] {
                continue;
            }
            let _ = self.write_to(r, FrameKind::Release, join, gen, 0.0, &bitmap);
        }
    }

    /// Best-effort goodbye to every peer (graceful teardown and
    /// fail-stop both take this path).
    pub(crate) fn send_bye_all(&self) {
        for (r, writer) in self.writers.iter().enumerate() {
            if writer.is_some() {
                let _ = self.write_to(r, FrameKind::Bye, 0, 0, 0.0, &[]);
            }
        }
    }

    /// Closes the write half of every link, EOF-ing peers' readers.
    fn shutdown_writes(&self) {
        for writer in self.writers.iter().flatten() {
            if let Ok(stream) = writer.lock() {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
    }

    fn write_to(
        &self,
        dst: usize,
        kind: FrameKind,
        lamport: u64,
        gen: u64,
        delay: f64,
        payload: &[u8],
    ) -> io::Result<()> {
        let writer = self.writers.get(dst).and_then(Option::as_ref).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, format!("no link to rank {dst}"))
        })?;
        let mut stream = writer
            .lock()
            .map_err(|_| io::Error::other("writer lock poisoned"))?;
        write_frame(&mut *stream, kind, self.local, lamport, gen, delay, payload)?;
        stream.flush()
    }
}

/// Per-peer reader: drains frames into the shared plane until the
/// peer disconnects.
fn reader_loop(plane: Arc<Plane>, src: usize, mut stream: TcpStream) {
    let mut saw_bye = false;
    loop {
        match read_frame(&mut stream) {
            Ok(Some(f)) => {
                if f.src != src || !apply_frame(&plane, src, &f, &mut saw_bye) {
                    disconnect(&plane, src, saw_bye);
                    return;
                }
            }
            Ok(None) => {
                // Clean close. After a BYE this is the expected
                // teardown; without one it is a crash-style death.
                disconnect(&plane, src, saw_bye);
                return;
            }
            Err(e)
                if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) =>
            {
                // Only set during our own teardown: stop reading.
                return;
            }
            Err(_) => {
                disconnect(&plane, src, saw_bye);
                return;
            }
        }
    }
}

/// Applies one post-bootstrap frame; `false` flags a protocol error.
fn apply_frame(plane: &Arc<Plane>, src: usize, f: &Frame, saw_bye: &mut bool) -> bool {
    let local = plane.net.as_ref().expect("net plane").local;
    match f.kind {
        FrameKind::Data => {
            let mut st = plane.lock();
            st.lamport[src] = st.lamport[src].max(f.lamport);
            st.mail[local].push_back(crate::comm::Envelope {
                src,
                bytes: f.payload.clone(),
                delay: f.delay,
                sent_at: Instant::now(),
                lamport: f.lamport,
                vready: None,
            });
            plane.cv.notify_all();
            true
        }
        FrameKind::Arrive => {
            let mut st = plane.lock();
            st.lamport[src] = st.lamport[src].max(f.lamport);
            st.arrived += 1;
            plane.maybe_complete(&mut st);
            plane.cv.notify_all();
            true
        }
        FrameKind::Release => {
            let Ok(bitmap) = <Vec<bool>>::decode(&f.payload) else {
                return false;
            };
            let mut st = plane.lock();
            if bitmap.len() != st.dead.len() {
                return false;
            }
            st.generation = f.gen;
            st.arrived = 0;
            for (r, &alive) in bitmap.iter().enumerate() {
                if !alive {
                    st.dead[r] = true;
                } else {
                    // The joined clock, exactly as the in-process
                    // completer writes it for every live rank.
                    st.lamport[r] = st.lamport[r].max(f.lamport);
                }
            }
            st.agreed_alive = bitmap;
            plane.cv.notify_all();
            true
        }
        FrameKind::Bye => {
            *saw_bye = true;
            let mut st = plane.lock();
            plane.mark_dead(&mut st, src);
            true
        }
        FrameKind::Hello | FrameKind::Peers | FrameKind::Ident => false,
    }
}

/// Maps a peer disconnect onto the agreed-membership death path. A
/// disconnect announced by BYE is a graceful exit and traces nothing.
fn disconnect(plane: &Arc<Plane>, src: usize, graceful: bool) {
    let local = plane.net.as_ref().expect("net plane").local;
    let mut st = plane.lock();
    if st.dead[src] {
        return;
    }
    plane.mark_dead(&mut st, src);
    drop(st);
    if !graceful {
        plane.fault(local, "disconnect", src as i64, 0, 0.0);
    }
}

/// Configuration for joining a multi-process TCP job.
pub struct TcpConfig {
    rank: usize,
    world: usize,
    rendezvous: String,
    plan: FaultPlan,
    sink: Arc<dyn TraceSink>,
    policy: AlgorithmPolicy,
    boot_timeout: Duration,
}

impl std::fmt::Debug for TcpConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpConfig")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .field("rendezvous", &self.rendezvous)
            .finish_non_exhaustive()
    }
}

impl TcpConfig {
    /// A job of `world` ranks; this process is `rank`; rank 0 listens
    /// on `rendezvous` (`host:port`) and everyone else dials it.
    pub fn new(rank: usize, world: usize, rendezvous: impl Into<String>) -> Self {
        Self {
            rank,
            world,
            rendezvous: rendezvous.into(),
            plan: FaultPlan::none(),
            sink: Arc::new(*null_sink()),
            policy: AlgorithmPolicy::default(),
            boot_timeout: Duration::from_secs_f64(BOOT_TIMEOUT_SECS),
        }
    }

    /// Attaches a fault plan (rules are evaluated sender-side, with
    /// per-process rule counters — see `docs/RUNTIME.md` §10).
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Routes `comm`/`fault` trace events to `sink`.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Selects the collective schedules (CLI: `--collectives`).
    #[must_use]
    pub fn with_algorithms(mut self, policy: AlgorithmPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the bootstrap deadline (default 30 s).
    #[must_use]
    pub fn with_boot_timeout(mut self, timeout: Duration) -> Self {
        self.boot_timeout = timeout;
        self
    }
}

/// A rank of a multi-process TCP job: the full [`Communicator`]
/// contract (plus the nonblocking request API via `Deref` to
/// [`ThreadedComm`]) over real sockets. Built by [`connect`];
/// [`TcpComm::shutdown`] tears the mesh down gracefully (BYE frames,
/// reader join) — dropping without it does the same best-effort.
pub struct TcpComm {
    comm: ThreadedComm,
    handle: RuntimeHandle,
    guard: Option<NetGuard>,
}

impl std::fmt::Debug for TcpComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpComm").field("comm", &self.comm).finish()
    }
}

struct NetGuard {
    plane: Arc<Plane>,
    readers: Vec<JoinHandle<()>>,
    reader_streams: Vec<TcpStream>,
}

impl NetGuard {
    fn finish(self) {
        if let Some(net) = &self.plane.net {
            net.send_bye_all();
            net.shutdown_writes();
        }
        // Bound the join: if a peer neither closes nor BYEs within
        // the grace period, its reader wakes on the read timeout and
        // exits.
        for s in &self.reader_streams {
            let _ = s.set_read_timeout(Some(SHUTDOWN_READ_TIMEOUT));
        }
        for h in self.readers {
            let _ = h.join();
        }
    }
}

impl TcpComm {
    /// Inspection handle (liveness; virtual clocks are `None` — the
    /// TCP transport is wall-clock only).
    pub fn handle(&self) -> &RuntimeHandle {
        &self.handle
    }

    /// The underlying rank handle, for APIs that want the concrete
    /// in-process type (nonblocking requests, the executor loops).
    pub fn inner_mut(&mut self) -> &mut ThreadedComm {
        &mut self.comm
    }

    /// Graceful teardown: BYE every peer, close write halves, join
    /// the reader threads. Call after the application's final
    /// collective; peers that are still mid-collective would observe
    /// this rank as dead (exactly like an in-process early exit).
    pub fn shutdown(mut self) {
        if let Some(guard) = self.guard.take() {
            guard.finish();
        }
    }
}

impl Drop for TcpComm {
    fn drop(&mut self) {
        if let Some(guard) = self.guard.take() {
            guard.finish();
        }
    }
}

impl std::ops::Deref for TcpComm {
    type Target = ThreadedComm;
    fn deref(&self) -> &ThreadedComm {
        &self.comm
    }
}

impl std::ops::DerefMut for TcpComm {
    fn deref_mut(&mut self) -> &mut ThreadedComm {
        &mut self.comm
    }
}

impl Communicator for TcpComm {
    fn rank(&self) -> usize {
        self.comm.rank()
    }
    fn size(&self) -> usize {
        self.comm.size()
    }
    fn alive(&self) -> Vec<bool> {
        self.comm.alive()
    }
    fn send<T: Wire>(&mut self, dst: usize, value: &T) -> Result<(), RuntimeError> {
        self.comm.send(dst, value)
    }
    fn recv<T: Wire>(&mut self, src: usize) -> Result<T, RuntimeError> {
        self.comm.recv(src)
    }
    fn barrier(&mut self) -> Result<(), RuntimeError> {
        self.comm.barrier()
    }
    fn bcast<T: Wire>(&mut self, root: usize, value: Option<&T>) -> Result<T, RuntimeError> {
        self.comm.bcast(root, value)
    }
    fn scatterv<T: Wire>(&mut self, root: usize, parts: Option<&[T]>) -> Result<T, RuntimeError> {
        self.comm.scatterv(root, parts)
    }
    fn gatherv<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<T>>, RuntimeError> {
        self.comm.gatherv(root, value)
    }
    fn gather_available<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError> {
        self.comm.gather_available(root, value)
    }
    fn allgatherv<T: Wire>(&mut self, value: &T) -> Result<Vec<T>, RuntimeError> {
        self.comm.allgatherv(value)
    }
    fn allgatherv_available<T: Wire>(
        &mut self,
        value: &T,
    ) -> Result<Vec<Option<T>>, RuntimeError> {
        self.comm.allgatherv_available(value)
    }
    fn allreduce(&mut self, value: f64, op: ReduceOp) -> Result<f64, RuntimeError> {
        self.comm.allreduce(value, op)
    }
}

fn net_err(what: &str, e: impl std::fmt::Display) -> RuntimeError {
    RuntimeError::Net(format!("{what}: {e}"))
}

/// Joins the job: rendezvous, mesh build, reader spawn. Blocks until
/// every link is up or the bootstrap deadline expires.
///
/// # Errors
///
/// [`RuntimeError::Net`] on any rendezvous/handshake failure (bind,
/// dial retries exhausted, malformed HELLO/PEERS/IDENT, duplicate or
/// out-of-range rank, bootstrap timeout).
pub fn connect(cfg: TcpConfig) -> Result<TcpComm, RuntimeError> {
    if cfg.rank == 0 {
        let listener = TcpListener::bind(&cfg.rendezvous)
            .map_err(|e| net_err("bind rendezvous listener", e))?;
        connect_root(cfg, listener)
    } else {
        connect_joiner(cfg)
    }
}

/// [`connect`] for rank 0 with a pre-bound rendezvous listener —
/// lets embedders and tests bind port 0 and learn the real address
/// before spawning the other ranks.
pub fn connect_with_listener(
    cfg: TcpConfig,
    listener: TcpListener,
) -> Result<TcpComm, RuntimeError> {
    if cfg.rank != 0 {
        return Err(RuntimeError::Net(
            "connect_with_listener is for rank 0 (the rendezvous side)".to_owned(),
        ));
    }
    connect_root(cfg, listener)
}

fn validate(cfg: &TcpConfig) -> Result<(), RuntimeError> {
    if cfg.world == 0 || cfg.rank >= cfg.world {
        return Err(RuntimeError::Net(format!(
            "rank {} outside world of size {}",
            cfg.rank, cfg.world
        )));
    }
    Ok(())
}

fn connect_root(cfg: TcpConfig, listener: TcpListener) -> Result<TcpComm, RuntimeError> {
    validate(&cfg)?;
    let deadline_at = Instant::now() + cfg.boot_timeout;
    let mut streams: Vec<Option<TcpStream>> = (0..cfg.world).map(|_| None).collect();
    let mut addrs: Vec<String> = vec![String::new(); cfg.world];
    while streams.iter().skip(1).any(Option::is_none) {
        if Instant::now() >= deadline_at {
            return Err(RuntimeError::Net(format!(
                "bootstrap timed out waiting for {} HELLOs",
                streams.iter().skip(1).filter(|s| s.is_none()).count()
            )));
        }
        let (mut stream, _) = listener.accept().map_err(|e| net_err("accept", e))?;
        stream
            .set_read_timeout(Some(cfg.boot_timeout))
            .map_err(|e| net_err("set handshake timeout", e))?;
        let hello = read_frame(&mut stream)
            .map_err(|e| net_err("read HELLO", e))?
            .ok_or_else(|| RuntimeError::Net("peer closed before HELLO".to_owned()))?;
        if hello.kind != FrameKind::Hello {
            return Err(RuntimeError::Net(format!(
                "expected HELLO, got {:?}",
                hello.kind
            )));
        }
        let text = String::from_utf8(hello.payload)
            .map_err(|e| net_err("HELLO payload", e))?;
        let (world_str, addr) = text
            .split_once(' ')
            .ok_or_else(|| RuntimeError::Net(format!("malformed HELLO payload {text:?}")))?;
        let world: usize = world_str
            .parse()
            .map_err(|e| net_err("HELLO world", e))?;
        if world != cfg.world {
            return Err(RuntimeError::Net(format!(
                "world mismatch: joiner says {world}, rank 0 says {}",
                cfg.world
            )));
        }
        let src = hello.src;
        if src == 0 || src >= cfg.world {
            return Err(RuntimeError::Net(format!("HELLO from invalid rank {src}")));
        }
        if streams[src].is_some() {
            return Err(RuntimeError::Net(format!("duplicate HELLO from rank {src}")));
        }
        addrs[src] = addr.to_owned();
        streams[src] = Some(stream);
    }
    // Publish the address table; the rendezvous connections become
    // the 0↔i mesh links.
    let table: Vec<Vec<u8>> = addrs.iter().map(|a| a.clone().into_bytes()).collect();
    let payload = table.to_bytes();
    for stream in streams.iter_mut().flatten() {
        write_frame(stream, FrameKind::Peers, 0, 0, 0, 0.0, &payload)
            .map_err(|e| net_err("send PEERS", e))?;
    }
    finish(cfg, streams)
}

fn connect_joiner(cfg: TcpConfig) -> Result<TcpComm, RuntimeError> {
    validate(&cfg)?;
    let deadline_at = Instant::now() + cfg.boot_timeout;
    let mut root = dial_retry(&cfg.rendezvous, deadline_at)
        .map_err(|e| net_err("dial rendezvous", e))?;
    root.set_read_timeout(Some(cfg.boot_timeout))
        .map_err(|e| net_err("set handshake timeout", e))?;
    // Listen where the rendezvous route says we are reachable.
    let local_ip = root
        .local_addr()
        .map_err(|e| net_err("local addr", e))?
        .ip();
    let listener = TcpListener::bind(SocketAddr::new(local_ip, 0))
        .map_err(|e| net_err("bind mesh listener", e))?;
    let own_addr = listener
        .local_addr()
        .map_err(|e| net_err("listener addr", e))?
        .to_string();
    let hello = format!("{} {own_addr}", cfg.world).into_bytes();
    write_frame(&mut root, FrameKind::Hello, cfg.rank, 0, 0, 0.0, &hello)
        .map_err(|e| net_err("send HELLO", e))?;
    let peers = read_frame(&mut root)
        .map_err(|e| net_err("read PEERS", e))?
        .ok_or_else(|| RuntimeError::Net("rank 0 closed before PEERS".to_owned()))?;
    if peers.kind != FrameKind::Peers {
        return Err(RuntimeError::Net(format!(
            "expected PEERS, got {:?}",
            peers.kind
        )));
    }
    let table: Vec<Vec<u8>> = Wire::decode(&peers.payload)
        .map_err(|e| net_err("decode PEERS", e))?;
    if table.len() != cfg.world {
        return Err(RuntimeError::Net(format!(
            "PEERS table has {} entries for world {}",
            table.len(),
            cfg.world
        )));
    }
    let mut streams: Vec<Option<TcpStream>> = (0..cfg.world).map(|_| None).collect();
    streams[0] = Some(root);
    // Dial every lower-ranked peer; accept every higher-ranked one.
    for (j, addr_bytes) in table.iter().enumerate().take(cfg.rank).skip(1) {
        let addr = std::str::from_utf8(addr_bytes)
            .map_err(|e| net_err("peer addr", e))?;
        let mut stream =
            dial_retry(addr, deadline_at).map_err(|e| net_err("dial peer", e))?;
        write_frame(&mut stream, FrameKind::Ident, cfg.rank, 0, 0, 0.0, &[])
            .map_err(|e| net_err("send IDENT", e))?;
        streams[j] = Some(stream);
    }
    while streams.iter().skip(cfg.rank + 1).any(Option::is_none) {
        if Instant::now() >= deadline_at {
            return Err(RuntimeError::Net(
                "bootstrap timed out waiting for higher-rank IDENTs".to_owned(),
            ));
        }
        let (mut stream, _) = listener.accept().map_err(|e| net_err("accept mesh", e))?;
        stream
            .set_read_timeout(Some(cfg.boot_timeout))
            .map_err(|e| net_err("set handshake timeout", e))?;
        let ident = read_frame(&mut stream)
            .map_err(|e| net_err("read IDENT", e))?
            .ok_or_else(|| RuntimeError::Net("peer closed before IDENT".to_owned()))?;
        if ident.kind != FrameKind::Ident {
            return Err(RuntimeError::Net(format!(
                "expected IDENT, got {:?}",
                ident.kind
            )));
        }
        let src = ident.src;
        if src <= cfg.rank || src >= cfg.world {
            return Err(RuntimeError::Net(format!("IDENT from invalid rank {src}")));
        }
        if streams[src].is_some() {
            return Err(RuntimeError::Net(format!("duplicate IDENT from rank {src}")));
        }
        streams[src] = Some(stream);
    }
    finish(cfg, streams)
}

/// Dials `addr` with exponential backoff until `deadline_at` — the
/// joiner side may simply have started before the listener exists.
fn dial_retry(addr: &str, deadline_at: Instant) -> io::Result<TcpStream> {
    let mut backoff = RETRY_BACKOFF;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + backoff >= deadline_at {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_RETRY_BACKOFF);
            }
        }
    }
}

/// All links up: build the plane, spawn one reader per peer.
fn finish(cfg: TcpConfig, streams: Vec<Option<TcpStream>>) -> Result<TcpComm, RuntimeError> {
    let mut writers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(cfg.world);
    let mut reader_streams = Vec::new();
    let mut peers = Vec::new();
    for (r, slot) in streams.into_iter().enumerate() {
        match slot {
            None => writers.push(None),
            Some(stream) => {
                stream
                    .set_read_timeout(None)
                    .map_err(|e| net_err("clear handshake timeout", e))?;
                stream.set_nodelay(true).ok();
                let reader = stream.try_clone().map_err(|e| net_err("clone stream", e))?;
                reader_streams.push(reader.try_clone().map_err(|e| net_err("clone stream", e))?);
                peers.push((r, reader));
                writers.push(Some(Mutex::new(stream)));
            }
        }
    }
    let net = NetPlane {
        local: cfg.rank,
        writers,
    };
    let plane = build_net_plane(cfg.world, cfg.plan, cfg.sink, cfg.policy, net);
    let readers = peers
        .into_iter()
        .map(|(peer, stream)| {
            let plane = Arc::clone(&plane);
            std::thread::Builder::new()
                .name(format!("net-reader-{peer}"))
                .spawn(move || reader_loop(plane, peer, stream))
                .expect("spawn reader thread")
        })
        .collect();
    Ok(TcpComm {
        comm: comm_for(Arc::clone(&plane), cfg.rank),
        handle: handle_for(Arc::clone(&plane)),
        guard: Some(NetGuard {
            plane,
            readers,
            reader_streams,
        }),
    })
}
