//! Wire framing for the TCP transport: fixed 44-byte little-endian
//! header, length-prefixed payload, CRC-32 payload checksum.
//!
//! Every byte that crosses a socket is one frame. The header carries
//! the schema-v3 causal stamps (`lamport`, `gen`) *in the framing*,
//! not inside the payload — the network twin of the in-process
//! [`crate::comm`] envelope, so every `Wire`-encoded message of every
//! collective schedule is stamped without touching the codec.
//!
//! Layout (offsets in bytes, all fields little-endian):
//!
//! | off | size | field   | meaning                                  |
//! |-----|------|---------|------------------------------------------|
//! | 0   | 4    | magic   | `b"FPM1"`                                |
//! | 4   | 1    | version | frame protocol version (currently 1)     |
//! | 5   | 1    | kind    | [`FrameKind`] discriminant               |
//! | 6   | 2    | reserved| zero                                     |
//! | 8   | 4    | src     | sending rank                             |
//! | 12  | 8    | lamport | sender's Lamport clock at enqueue        |
//! | 20  | 8    | gen     | barrier generation (kind-dependent)      |
//! | 28  | 8    | delay   | injected delivery delay, seconds (f64)   |
//! | 36  | 4    | len     | payload length                           |
//! | 40  | 4    | crc     | CRC-32 (IEEE) of the payload             |
//!
//! A reader rejects a frame *before allocating* its payload if the
//! magic, version, or length cap ([`MAX_FRAME_LEN`]) fails — the
//! socket-facing twin of the [`crate::wire`] decode hardening.

use std::io::{self, Read, Write};

/// Frame magic: `b"FPM1"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"FPM1");

/// Frame protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Header length in bytes.
pub const HEADER_LEN: usize = 44;

/// Hard cap on a frame payload, matching the decode-side payload cap
/// ([`crate::wire::MAX_WIRE_LEN`]): an oversized length prefix is a
/// protocol error rejected before any allocation.
pub const MAX_FRAME_LEN: usize = crate::wire::MAX_WIRE_LEN;

/// What a frame means to the transport state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Bootstrap: joiner -> rank 0. Payload: `world listen_addr` as
    /// UTF-8 bytes; `src` is the joiner's claimed rank.
    Hello = 0,
    /// Bootstrap: rank 0 -> joiner. Payload: per-rank listener
    /// addresses (`Vec<Vec<u8>>`, UTF-8 each, rank order).
    Peers = 1,
    /// Bootstrap: higher rank -> lower rank on a fresh mesh link,
    /// identifying the initiator (`src`). No payload.
    Ident = 2,
    /// A point-to-point message envelope: payload is the
    /// `Wire`-encoded application bytes; `lamport` is the causal
    /// stamp merged at delivery; `delay` a fault-injected delivery
    /// hold.
    Data = 3,
    /// Barrier arrival announcement to the hub: `gen` is the joined
    /// generation, `lamport` the arriver's clock. No payload.
    Arrive = 4,
    /// Barrier completion broadcast from the hub: `gen` is the *new*
    /// generation, `lamport` the joined clock, payload the agreed
    /// membership (`Vec<bool>`, rank order).
    Release = 5,
    /// Graceful goodbye: the sender is leaving (teardown or
    /// fail-stop). Peers map it onto the rank-death path. No payload.
    Bye = 6,
}

impl FrameKind {
    fn from_u8(x: u8) -> Option<Self> {
        Some(match x {
            0 => FrameKind::Hello,
            1 => FrameKind::Peers,
            2 => FrameKind::Ident,
            3 => FrameKind::Data,
            4 => FrameKind::Arrive,
            5 => FrameKind::Release,
            6 => FrameKind::Bye,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame meaning.
    pub kind: FrameKind,
    /// Sending rank.
    pub src: usize,
    /// Sender's Lamport clock at enqueue time.
    pub lamport: u64,
    /// Barrier generation (meaning depends on `kind`).
    pub gen: u64,
    /// Injected delivery delay, seconds.
    pub delay: f64,
    /// Payload bytes (already checksum-verified).
    pub payload: Vec<u8>,
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn corrupt(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Encodes one frame into a single buffer (header + payload), ready
/// for one atomic `write_all` under the per-peer writer lock.
pub fn encode_frame(
    kind: FrameKind,
    src: usize,
    lamport: u64,
    gen: u64,
    delay: f64,
    payload: &[u8],
) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload exceeds cap");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(kind as u8);
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&(src as u32).to_le_bytes());
    buf.extend_from_slice(&lamport.to_le_bytes());
    buf.extend_from_slice(&gen.to_le_bytes());
    buf.extend_from_slice(&delay.to_bits().to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Writes one frame to `w`.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    src: usize,
    lamport: u64,
    gen: u64,
    delay: f64,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&encode_frame(kind, src, lamport, gen, delay, payload))
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed its write half); an EOF inside a
/// frame, a bad magic/version/kind, an oversized length prefix, or a
/// checksum mismatch is an [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    // First byte distinguishes clean close from a truncated frame.
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("eof after {got} header bytes"),
                ))
            }
            n => got += n,
        }
    }
    let word = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().expect("4 bytes"));
    let quad = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().expect("8 bytes"));
    if word(0) != MAGIC {
        return Err(corrupt(format!("bad magic {:#010x}", word(0))));
    }
    if header[4] != VERSION {
        return Err(corrupt(format!("unsupported frame version {}", header[4])));
    }
    let kind = FrameKind::from_u8(header[5])
        .ok_or_else(|| corrupt(format!("unknown frame kind {}", header[5])))?;
    let len = word(36) as usize;
    if len > MAX_FRAME_LEN {
        return Err(corrupt(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let crc = word(40);
    let actual = crc32(&payload);
    if crc != actual {
        return Err(corrupt(format!(
            "payload checksum mismatch: header {crc:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(Some(Frame {
        kind,
        src: word(8) as usize,
        lamport: quad(12),
        gen: quad(20),
        delay: f64::from_bits(quad(28)),
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let buf = encode_frame(FrameKind::Data, 3, 41, 7, 0.25, b"payload");
        let mut r = &buf[..];
        let f = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Data);
        assert_eq!(f.src, 3);
        assert_eq!(f.lamport, 41);
        assert_eq!(f.gen, 7);
        assert_eq!(f.delay, 0.25);
        assert_eq!(f.payload, b"payload");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn corrupt_frames_are_rejected_not_trusted() {
        // Flipped payload byte: checksum catches it.
        let mut buf = encode_frame(FrameKind::Data, 0, 0, 0, 0.0, b"abc");
        *buf.last_mut().unwrap() ^= 0xFF;
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Bad magic.
        let mut buf = encode_frame(FrameKind::Bye, 0, 0, 0, 0.0, b"");
        buf[0] ^= 0xFF;
        assert!(read_frame(&mut &buf[..]).is_err());
        // Hostile length prefix: rejected before allocation.
        let mut buf = encode_frame(FrameKind::Data, 0, 0, 0, 0.0, b"");
        buf[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("cap"), "{err}");
        // Truncated mid-frame: UnexpectedEof, not a hang or panic.
        let buf = encode_frame(FrameKind::Data, 0, 0, 0, 0.0, b"abcdef");
        let err = read_frame(&mut &buf[..HEADER_LEN + 2]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
