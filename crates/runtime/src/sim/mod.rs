//! The discrete-event simulation core: `10⁴`–`10⁶` ranks on one host.
//!
//! The thread-backed sim ([`crate::RuntimeConfig::sim`]) runs one OS
//! thread per rank, which caps practical scale near `p = 64`. This
//! module replaces the threads with **resumable per-rank state
//! machines** driven by a single-threaded binary-heap event queue:
//! every rank is a few vector slots (virtual clock, Lamport clock, op
//! counter, liveness), collectives execute as *cohorts* against the
//! exact same Hockney + per-round schedule charges
//! ([`fupermod_platform::comm::SimComm`]), and the only per-message
//! state is the live mailbox entries — memory is
//! `O(live events + per-rank state)` instead of `O(threads)`.
//!
//! # Contract
//!
//! [`EventSim`] mirrors the thread backend's op lifecycle instruction
//! for instruction: `op_begin` (op count, Lamport tick, scheduled
//! death, straggler latency), the fault-plan send rules (drop counts,
//! bounded exponential backoff, delivery delays), the Lamport merge at
//! delivery, the barrier-generation join and membership agreement, and
//! the deposited collective schedule charges. On fault-free plans and
//! under fail-stop death the virtual clocks it produces are
//! **bit-identical** to the thread-backed sim (pinned by the
//! `event_parity` integration tests at `p ∈ {1, 4, 16, 64}` across
//! `hub`/`ring`/`tree`/`auto`); at large `p` closed-form fast paths
//! (uniform-ring charge, `O(q log q)` butterfly schedule, subtree-sum
//! tree accounting) keep a `p = 100k` collective in milliseconds.
//! Event ordering, tie-breaks, determinism guarantees and the memory
//! model are documented in `docs/RUNTIME.md` §9.
//!
//! Select the engine with [`RuntimeConfig::with_engine`]
//! (CLI: `--sim-engine thread|event`).
//!
//! [`RuntimeConfig::with_engine`]: crate::RuntimeConfig::with_engine

mod engine;
mod ops;

pub mod balance;

pub use engine::{EventSim, RankResults, RecvTicket, SendTicket};

/// Which simulation engine executes a sim-backed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// One OS thread per rank (the original backend): real
    /// concurrency, practical up to a few hundred ranks.
    #[default]
    Thread,
    /// Single-threaded discrete-event interpreter: `10⁴`–`10⁶` ranks,
    /// bit-identical virtual time at small `p`.
    Event,
}

impl SimEngine {
    /// Parses a CLI engine name.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "thread" => Ok(SimEngine::Thread),
            "event" => Ok(SimEngine::Event),
            other => Err(format!(
                "unknown sim engine '{other}' (expected thread|event)"
            )),
        }
    }

    /// The CLI name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            SimEngine::Thread => "thread",
            SimEngine::Event => "event",
        }
    }
}
