//! The event interpreter: per-rank state machines, the binary-heap
//! dispatch queue, and instruction-level mirrors of the thread
//! backend's op lifecycle (`op_begin` / `op_end` / fault-plan send
//! rules / Lamport delivery merge / barrier-generation join).
//!
//! Everything here is single-threaded: a "rank" is a handful of
//! vector slots, and the only dynamically sized state is the live
//! mailbox entries plus the per-collective scratch of the currently
//! dispatching cohort.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use fupermod_core::trace::{TraceEvent, TraceSink};
use fupermod_platform::comm::{SimComm, Topology};

use crate::collective::AlgorithmPolicy;
use crate::comm::RuntimeConfig;
use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::sim::SimEngine;
use crate::wire::Wire;

/// Per-rank collective outcome: `None` = the rank was not
/// participating (it had already died or halted on an earlier error).
pub type RankResults<T> = Vec<Option<Result<T, RuntimeError>>>;

/// A deposited virtual-time charge, applied when the generation
/// completes (mirror of the thread backend's `pending_charge`).
pub(super) enum ChargeSpec {
    /// Explicit per-round `(src, dst, bytes)` hop plan.
    Rounds(Vec<Vec<(usize, usize, f64)>>),
    /// Closed-form uniform ring: `rounds` rounds of `bytes`-sized
    /// nearest-neighbour hops from bit-identical clocks
    /// ([`SimComm::charge_uniform_ring`]).
    UniformRing {
        /// Framed per-hop message size, bytes.
        bytes: f64,
        /// Number of ring rounds.
        rounds: usize,
    },
}

/// One undelivered message (mirror of the thread backend's mailbox
/// envelope).
pub(super) struct Env {
    pub(super) bytes: Vec<u8>,
    /// Injected delivery delay charged to the receiver, seconds.
    pub(super) delay: f64,
    /// Sender's Lamport stamp at send time.
    pub(super) lamport: u64,
    /// Post-time clock snapshot for `isend` (charged with
    /// [`SimComm::arrive`] instead of a fresh [`SimComm::send`]).
    pub(super) vready: Option<f64>,
}

/// Everything an op mirror needs to finish: the start stamp for the
/// trace event and the generation current when the op began.
#[derive(Clone, Copy)]
pub struct OpStart {
    pub(super) virt: f64,
    pub(super) gen: u64,
}

/// A collective's cohort: the ranks that entered it, in `(clock,
/// rank)` dispatch order, each with its begin stamp.
pub(super) type Cohort = Vec<(usize, OpStart)>;

/// Pending nonblocking send: finish with [`EventSim::isend_wait`].
pub struct SendTicket {
    pub(super) rank: usize,
    pub(super) dst: usize,
    pub(super) bytes_len: u64,
    pub(super) start: OpStart,
}

/// Pending nonblocking receive: finish with [`EventSim::irecv_wait`].
pub struct RecvTicket {
    pub(super) rank: usize,
    pub(super) src: usize,
    pub(super) start: OpStart,
}

/// What happened to one collective-phase send (tolerant call sites
/// map [`SendFate::DeadDst`] to "counted but lost").
pub(super) enum SendFate {
    /// Enqueued: deliver with [`EventSim::deliver`].
    Delivered {
        /// Sender's Lamport stamp at send time.
        stamp: u64,
        /// Injected delivery delay, seconds.
        delay: f64,
    },
    /// The destination is dead (`RankDead { rank: dst }` on the
    /// non-tolerant paths).
    DeadDst,
    /// A drop rule exhausted the retry budget.
    Exhausted(RuntimeError),
}

/// The discrete-event simulation engine: every rank of the simulated
/// communicator as a resumable state machine, dispatched from a
/// binary-heap event queue in `(virtual clock, rank)` order.
///
/// See the [module docs](crate::sim) for the parity contract and
/// `docs/RUNTIME.md` §9 for ordering/determinism details.
pub struct EventSim {
    pub(super) size: usize,
    pub(super) sim: SimComm,
    pub(super) plan: FaultPlan,
    pub(super) sink: Arc<dyn TraceSink>,
    pub(super) policy: AlgorithmPolicy,
    /// Fail-stop flags (mirror of `PlaneState::dead`).
    pub(super) dead: Vec<bool>,
    /// Membership agreed at the last completed generation.
    pub(super) agreed_alive: Vec<bool>,
    /// Schema-v3 Lamport clocks.
    pub(super) lamport: Vec<u64>,
    /// Per-rank op counters (death rules fire on these).
    pub(super) ops: Vec<u64>,
    /// Barrier generation counter.
    pub(super) generation: u64,
    /// Deterministic fault-rule counters (mirror order: rule index).
    pub(super) delay_counts: Vec<u64>,
    pub(super) drop_counts: Vec<u64>,
    /// Charge deposited by the current collective's electing rank.
    pub(super) pending_charge: Option<ChargeSpec>,
    /// Point-to-point mailboxes, FIFO per `(src, dst)` pair.
    pub(super) mail: HashMap<(usize, usize), VecDeque<Env>>,
    /// Which ranks are still executing their program (false once a
    /// rank's program returned an error — dead or halted).
    pub(super) running: Vec<bool>,
    /// Dispatched event counter (op begins/ends, deliveries,
    /// coalesced fast-path rounds) for events/sec reporting.
    pub(super) events: u64,
    /// Scratch heap for clock-ordered cohort dispatch.
    pub(super) heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl std::fmt::Debug for EventSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSim")
            .field("size", &self.size)
            .field("generation", &self.generation)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl EventSim {
    /// Builds an engine over `topo` with a fault plan, trace sink and
    /// collective policy.
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty.
    pub fn new(
        topo: Topology,
        plan: FaultPlan,
        sink: Arc<dyn TraceSink>,
        policy: AlgorithmPolicy,
    ) -> Self {
        let size = topo.size();
        assert!(size > 0, "communicator needs at least one rank");
        Self {
            size,
            sim: SimComm::with_topology(topo),
            delay_counts: vec![0; plan.delays.len()],
            drop_counts: vec![0; plan.drops.len()],
            plan,
            sink,
            policy,
            dead: vec![false; size],
            agreed_alive: vec![true; size],
            lamport: vec![0; size],
            ops: vec![0; size],
            generation: 0,
            pending_charge: None,
            mail: HashMap::new(),
            running: vec![true; size],
            events: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Builds an engine from a [`RuntimeConfig`] that selected the
    /// event engine and a sim topology.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::App`] when the config is thread-backed (no
    /// topology) or the topology size disagrees with `size`.
    pub fn from_config(config: &RuntimeConfig, size: usize) -> Result<Self, RuntimeError> {
        debug_assert_eq!(config.engine(), SimEngine::Event);
        let Some(topo) = config.sim_topology_ref() else {
            return Err(RuntimeError::App(
                "the event engine needs the sim backend (a topology); \
                 thread-clock runs must use --sim-engine thread"
                    .to_owned(),
            ));
        };
        if topo.size() != size {
            return Err(RuntimeError::App(format!(
                "sim topology size mismatch: topology has {} ranks, run asked for {size}",
                topo.size()
            )));
        }
        Ok(Self::new(
            topo.clone(),
            config.plan_ref().clone(),
            Arc::clone(config.sink_ref()),
            config.policy_ref(),
        ))
    }

    // ----- inspection --------------------------------------------------

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Per-rank virtual clocks, seconds.
    pub fn virtual_times(&self) -> Vec<f64> {
        (0..self.size).map(|r| self.sim.time(r)).collect()
    }

    /// Maximum virtual time across ranks.
    pub fn max_time(&self) -> f64 {
        self.sim.max_time()
    }

    /// Total virtual seconds spent communicating.
    pub fn comm_seconds(&self) -> f64 {
        self.sim.comm_seconds()
    }

    /// Liveness snapshot.
    pub fn alive(&self) -> Vec<bool> {
        self.dead.iter().map(|&d| !d).collect()
    }

    /// Ranks that have died, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter_map(|(r, &d)| d.then_some(r))
            .collect()
    }

    /// Whether `rank`'s program is still executing (alive and no op
    /// has returned an error).
    pub fn is_running(&self, rank: usize) -> bool {
        self.running[rank]
    }

    /// Total dispatched events so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Schema-v3 Lamport clocks snapshot.
    pub fn lamports(&self) -> Vec<u64> {
        self.lamport.clone()
    }

    /// Stops dispatching ops for `rank` (its simulated program ended,
    /// normally or on error).
    pub fn halt(&mut self, rank: usize) {
        self.running[rank] = false;
    }

    // ----- op lifecycle mirrors ---------------------------------------

    pub(super) fn fault(&self, rank: usize, kind: &str, peer: i64, attempt: u32, seconds: f64) {
        fupermod_core::telemetry::record_fault(kind);
        self.sink.record(&TraceEvent::Fault {
            rank,
            kind: kind.to_owned(),
            peer,
            attempt,
            seconds,
        });
    }

    pub(super) fn check_rank(&self, op: &'static str, rank: usize) -> Result<(), RuntimeError> {
        if rank >= self.size {
            return Err(RuntimeError::InvalidRank {
                op,
                rank,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Common op prologue mirror: self-death check, op counting,
    /// Lamport tick, scheduled death, straggler latency.
    pub(super) fn op_begin(
        &mut self,
        op: &'static str,
        rank: usize,
    ) -> Result<OpStart, RuntimeError> {
        if self.dead[rank] {
            return Err(RuntimeError::RankDead { op, rank });
        }
        self.events += 1;
        self.ops[rank] += 1;
        self.lamport[rank] = self.lamport[rank].wrapping_add(1);
        let gen = self.generation;
        if let Some(after) = self.plan.death_after(rank) {
            if self.ops[rank] > after {
                self.mark_dead(rank);
                self.fault(rank, "death", -1, 0, 0.0);
                return Err(RuntimeError::RankDead { op, rank });
            }
        }
        let straggle = self.plan.straggler_comm_seconds(rank);
        if straggle > 0.0 {
            self.fault(rank, "straggler", -1, 0, straggle);
            self.sim.advance(rank, straggle);
        }
        Ok(OpStart {
            virt: self.sim.time(rank),
            gen,
        })
    }

    /// Common op epilogue mirror: latency metric + schema-v3 `comm`
    /// trace event with the rank's post-op Lamport stamp.
    #[allow(clippy::too_many_arguments)] // one flat epilogue, mirroring the thread backend's
    pub(super) fn op_end(
        &mut self,
        rank: usize,
        op: &'static str,
        peer: i64,
        bytes: u64,
        start: &OpStart,
        algorithm: &str,
        rounds: u64,
        gen: u64,
    ) {
        self.events += 1;
        let seconds = self.sim.time(rank) - start.virt;
        let lamport = self.lamport[rank];
        fupermod_core::trace::metrics().record_comm_latency(op, seconds);
        self.sink.record(&TraceEvent::Comm {
            rank,
            op: op.to_owned(),
            peer,
            bytes,
            seconds,
            algorithm: algorithm.to_owned(),
            rounds,
            lamport,
            gen,
        });
    }

    /// Fail-stop mirror. (The thread backend also completes a barrier
    /// the death unblocks; engine cohorts complete synchronously, so
    /// there is never a half-arrived barrier to finish here.)
    pub(super) fn mark_dead(&mut self, rank: usize) {
        if self.dead[rank] {
            return;
        }
        self.dead[rank] = true;
        self.running[rank] = false;
    }

    /// Completes the current barrier generation: Lamport join over
    /// all clocks (dead ones included), membership agreement, and the
    /// deposited virtual-time charge — one deterministic sequence,
    /// exactly as the thread backend applies them under its lock.
    pub(super) fn complete_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        let join = self
            .lamport
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .wrapping_add(1);
        for (c, &dead) in self.lamport.iter_mut().zip(&self.dead) {
            if !dead {
                *c = join;
            }
        }
        for (agreed, &dead) in self.agreed_alive.iter_mut().zip(&self.dead) {
            *agreed = !dead;
        }
        if let Some(charge) = self.pending_charge.take() {
            match charge {
                ChargeSpec::Rounds(rounds) => self
                    .sim
                    .schedule(&rounds)
                    .expect("schedule hops use valid distinct ranks by construction"),
                ChargeSpec::UniformRing { bytes, rounds } => {
                    self.sim.charge_uniform_ring(bytes, rounds);
                }
            }
        }
    }

    /// Ranks agreed alive at the last completed generation, ascending.
    pub(super) fn agreed_live(&self) -> Vec<usize> {
        self.agreed_alive
            .iter()
            .enumerate()
            .filter_map(|(r, &alive)| alive.then_some(r))
            .collect()
    }

    // ----- fault-plan send machinery ----------------------------------

    /// The raw-send mirror: drop rules with bounded exponential
    /// backoff (each retry re-checks death), then delay rules, then
    /// the Lamport stamp. Deterministic rule-counter order is the
    /// call order, which cohort dispatch fixes (docs/RUNTIME.md §9).
    ///
    /// Does **not** enqueue — collective paths deliver through
    /// [`EventSim::deliver`]; the p2p paths enqueue the returned
    /// stamp/delay as a mailbox envelope.
    pub(super) fn send_eval(
        &mut self,
        op: &'static str,
        src: usize,
        dst: usize,
    ) -> SendFate {
        let mut attempt: u32 = 0;
        loop {
            if self.dead[src] {
                return SendFate::Exhausted(RuntimeError::RankDead { op, rank: src });
            }
            if self.dead[dst] {
                return SendFate::DeadDst;
            }
            let mut dropped: Option<(u32, f64)> = None;
            for (count, rule) in self.drop_counts.iter_mut().zip(&self.plan.drops) {
                if rule.src.is_none_or(|s| s == src) && rule.dst.is_none_or(|d| d == dst) {
                    *count += 1;
                    if count.is_multiple_of(rule.every) {
                        let backoff =
                            rule.backoff_seconds * f64::from(1u32 << attempt.min(16));
                        dropped = Some((rule.max_retries, backoff));
                    }
                    break;
                }
            }
            if let Some((max_retries, backoff)) = dropped {
                self.fault(src, "drop", dst as i64, attempt, 0.0);
                if attempt >= max_retries {
                    return SendFate::Exhausted(RuntimeError::RetriesExhausted {
                        op,
                        src,
                        dst,
                        attempts: attempt + 1,
                    });
                }
                attempt += 1;
                self.fault(src, "retry", dst as i64, attempt, backoff);
                if backoff > 0.0 {
                    self.sim.advance(src, backoff);
                }
                continue;
            }
            let mut delay = 0.0;
            for (count, rule) in self.delay_counts.iter_mut().zip(&self.plan.delays) {
                if rule.src.is_none_or(|s| s == src) && rule.dst.is_none_or(|d| d == dst) {
                    *count += 1;
                    if count.is_multiple_of(rule.every) {
                        delay = rule.seconds;
                    }
                    break;
                }
            }
            if delay > 0.0 {
                self.fault(src, "delay", dst as i64, 0, delay);
            }
            return SendFate::Delivered {
                stamp: self.lamport[src],
                delay,
            };
        }
    }

    /// Receive-side mirror for collective deliveries: Lamport merge
    /// plus the injected-delay charge (the delivery itself is costed
    /// by the deposited schedule, never per message).
    pub(super) fn deliver(&mut self, dst: usize, stamp: u64, delay: f64) {
        self.events += 1;
        let merged = self.lamport[dst].max(stamp.wrapping_add(1));
        self.lamport[dst] = merged;
        if delay > 0.0 {
            self.sim.advance(dst, delay);
        }
    }

    // ----- point-to-point (mailbox) paths -----------------------------

    /// Raw-send mirror that enqueues into the `(src, dst)` mailbox.
    pub(super) fn raw_send_at(
        &mut self,
        op: &'static str,
        src: usize,
        dst: usize,
        bytes: Vec<u8>,
        vready: Option<f64>,
    ) -> Result<(), RuntimeError> {
        match self.send_eval(op, src, dst) {
            SendFate::Delivered { stamp, delay } => {
                self.events += 1;
                self.mail.entry((src, dst)).or_default().push_back(Env {
                    bytes,
                    delay,
                    lamport: stamp,
                    vready,
                });
                Ok(())
            }
            SendFate::DeadDst => Err(RuntimeError::RankDead { op, rank: dst }),
            SendFate::Exhausted(e) => Err(e),
        }
    }

    /// Nonblocking-receive mirror of the thread backend's `try_take`:
    /// FIFO per `(src, dst)` pair, Lamport merge, Hockney charge
    /// (post-time snapshot for `isend`, fresh hop otherwise), and the
    /// injected-delay charge. `Ok(None)` means no mail yet with the
    /// sender still alive.
    pub(super) fn try_take(
        &mut self,
        op: &'static str,
        rank: usize,
        src: usize,
        charge_p2p: bool,
    ) -> Result<Option<Vec<u8>>, RuntimeError> {
        if self.dead[rank] {
            return Err(RuntimeError::RankDead { op, rank });
        }
        if let Some(env) = self.mail.get_mut(&(src, rank)).and_then(VecDeque::pop_front) {
            self.events += 1;
            self.lamport[rank] = self.lamport[rank].max(env.lamport.wrapping_add(1));
            if charge_p2p {
                match env.vready {
                    Some(ready) => self.sim.arrive(rank, ready),
                    None => self.sim.send(src, rank, env.bytes.len() as f64),
                }
            }
            if env.delay > 0.0 {
                self.sim.advance(rank, env.delay);
            }
            return Ok(Some(env.bytes));
        }
        if self.dead[src] {
            return Err(RuntimeError::RankDead { op, rank: src });
        }
        Ok(None)
    }

    /// Blocking-receive mirror. In virtual time a message that has
    /// not been produced by now never will be (the engine has already
    /// dispatched every event that could produce it), so "would
    /// block" resolves immediately to the thread backend's deadline
    /// outcome: the waiter times out and is marked dead.
    pub(super) fn blocking_take(
        &mut self,
        op: &'static str,
        rank: usize,
        src: usize,
        charge_p2p: bool,
    ) -> Result<Vec<u8>, RuntimeError> {
        match self.try_take(op, rank, src, charge_p2p)? {
            Some(bytes) => Ok(bytes),
            None => {
                let deadline = self.plan.deadline.unwrap_or(crate::comm::DEFAULT_DEADLINE_SECS);
                self.mark_dead(rank);
                // Thread mirror: the timeout fault event carries no
                // peer (the waiter only knows its own deadline fired).
                self.fault(rank, "timeout", -1, 0, deadline);
                Err(RuntimeError::Timeout {
                    op,
                    rank,
                    deadline,
                })
            }
        }
    }

    // ----- public point-to-point API ----------------------------------

    /// Blocking typed send mirror.
    ///
    /// # Errors
    ///
    /// As the thread backend: invalid rank, dead endpoint, exhausted
    /// drop retries.
    pub fn send<T: Wire>(&mut self, src: usize, dst: usize, value: &T) -> Result<(), RuntimeError> {
        const OP: &str = "send";
        self.check_rank(OP, dst)?;
        let start = self.op_begin(OP, src)?;
        let bytes = value.to_bytes();
        let n = bytes.len() as u64;
        self.raw_send_at(OP, src, dst, bytes, None)?;
        self.op_end(src, OP, dst as i64, n, &start, "direct", 1, start.gen);
        Ok(())
    }

    /// Blocking typed receive mirror (charges the Hockney hop cost).
    ///
    /// # Errors
    ///
    /// As the thread backend: invalid rank, dead endpoint, decode
    /// failure, or timeout when no matching message exists.
    pub fn recv<T: Wire>(&mut self, rank: usize, src: usize) -> Result<T, RuntimeError> {
        const OP: &str = "recv";
        self.check_rank(OP, src)?;
        let start = self.op_begin(OP, rank)?;
        let bytes = self.blocking_take(OP, rank, src, true)?;
        let value = super::ops::decode_as::<T>(OP, &bytes)?;
        self.op_end(
            rank,
            OP,
            src as i64,
            bytes.len() as u64,
            &start,
            "direct",
            1,
            start.gen,
        );
        Ok(value)
    }

    /// Nonblocking send mirror: posts the message with a post-time
    /// clock snapshot (the receiver is charged `max(own clock, post
    /// snapshot + hop cost)` at completion, so overlapped compute
    /// hides communication exactly as on the thread backend).
    ///
    /// # Errors
    ///
    /// As [`EventSim::send`]. Note the sender's clock advances by the
    /// post cost even when the destination is already dead — the
    /// mirror of the thread backend's post-before-death-check order.
    pub fn isend<T: Wire>(
        &mut self,
        src: usize,
        dst: usize,
        value: &T,
    ) -> Result<SendTicket, RuntimeError> {
        const OP: &str = "isend";
        self.check_rank(OP, dst)?;
        let start = self.op_begin(OP, src)?;
        let bytes = value.to_bytes();
        let n = bytes.len() as u64;
        let ready = self.sim.post_send(src, dst, bytes.len() as f64);
        self.raw_send_at(OP, src, dst, bytes, Some(ready))?;
        Ok(SendTicket {
            rank: src,
            dst,
            bytes_len: n,
            start,
        })
    }

    /// Completes a posted send (emits the `isend` trace event).
    pub fn isend_wait(&mut self, ticket: SendTicket) {
        self.op_end(
            ticket.rank,
            "isend",
            ticket.dst as i64,
            ticket.bytes_len,
            &ticket.start,
            "direct",
            1,
            ticket.start.gen,
        );
    }

    /// Posts a nonblocking receive (mirror: posting never fails on a
    /// dead sender — death surfaces at the wait).
    ///
    /// # Errors
    ///
    /// Invalid rank, or the receiver itself is dead.
    pub fn irecv_post(&mut self, rank: usize, src: usize) -> Result<RecvTicket, RuntimeError> {
        const OP: &str = "irecv";
        self.check_rank(OP, src)?;
        let start = self.op_begin(OP, rank)?;
        Ok(RecvTicket { rank, src, start })
    }

    /// Completes a posted receive.
    ///
    /// # Errors
    ///
    /// Dead sender with no pending message, decode failure, or
    /// timeout.
    pub fn irecv_wait<T: Wire>(&mut self, ticket: RecvTicket) -> Result<T, RuntimeError> {
        const OP: &str = "irecv";
        let bytes = self.blocking_take(OP, ticket.rank, ticket.src, true)?;
        let value = super::ops::decode_as::<T>(OP, &bytes)?;
        self.op_end(
            ticket.rank,
            OP,
            ticket.src as i64,
            bytes.len() as u64,
            &ticket.start,
            "direct",
            1,
            ticket.start.gen,
        );
        Ok(value)
    }

    // ----- cohort dispatch --------------------------------------------

    /// Key for clock-ordered dispatch: finite non-negative `f64`
    /// clocks compare identically to their bit patterns, and the rank
    /// index breaks ties deterministically.
    pub(super) fn clock_key(&self, rank: usize) -> (u64, usize) {
        (self.sim.time(rank).to_bits(), rank)
    }

    /// Dispatches `op_begin` for every running rank in `(clock,
    /// rank)` heap order. Returns the cohort (ranks that entered the
    /// collective, in dispatch order, with their start stamps) and
    /// the ranks whose begin failed (scheduled death).
    pub(super) fn begin_cohort(
        &mut self,
        op: &'static str,
    ) -> (Cohort, Vec<(usize, RuntimeError)>) {
        debug_assert!(self.heap.is_empty());
        for rank in 0..self.size {
            if self.running[rank] {
                self.heap.push(Reverse(self.clock_key(rank)));
            }
        }
        let mut cohort = Vec::new();
        let mut failed = Vec::new();
        while let Some(Reverse((_, rank))) = self.heap.pop() {
            match self.op_begin(op, rank) {
                Ok(start) => cohort.push((rank, start)),
                Err(e) => failed.push((rank, e)),
            }
        }
        (cohort, failed)
    }

    /// Pops the cohort in final `(clock, rank)` order for epilogue
    /// dispatch.
    pub(super) fn cohort_end_order(&mut self, cohort: &[(usize, OpStart)]) -> Vec<usize> {
        debug_assert!(self.heap.is_empty());
        for &(rank, _) in cohort {
            self.heap.push(Reverse(self.clock_key(rank)));
        }
        let mut order = Vec::with_capacity(cohort.len());
        while let Some(Reverse((_, rank))) = self.heap.pop() {
            order.push(rank);
        }
        order
    }
}
