//! Cohort collectives for the event engine: every collective runs as
//! one synchronous dispatch over the ranks still executing, mirroring
//! the thread backend's data phases instruction for instruction —
//! same sends (and therefore the same fault-rule counter ticks), same
//! Lamport merges, same `moved` byte accounting, same deposited
//! schedule charges — so virtual clocks and schema-v3 trace streams
//! stay bit-identical at small `p` while closed-form fast paths keep
//! `p = 10⁵` collectives in milliseconds.
//!
//! Dispatch order is deterministic: `op_begin` fires in `(clock
//! bits, rank)` order, data-phase sends in ascending rank (or
//! schedule-position) order, epilogues in final `(clock bits, rank)`
//! order — see `docs/RUNTIME.md` §9 for the full ordering contract
//! and the places where the thread backend is inherently racy (drop
//! cascades, mid-operation starvation) and the engine's order is
//! canonical.

use std::collections::HashMap;
use std::sync::Arc;

use crate::collective::{self, Resolved};
use crate::comm::ReduceOp;
use crate::error::RuntimeError;
use crate::wire::Wire;

use super::engine::{ChargeSpec, Cohort, EventSim, OpStart, RankResults, SendFate};

/// Absolute-rank-indexed payload slots (mirror of the thread
/// backend's `Slots`): `None` marks a dead rank or a contribution
/// lost to one.
pub(super) type Slots = Vec<Option<Vec<u8>>>;

/// Per-abs-rank data-phase outcome for the cohort: the payload plus
/// the rank's `moved` byte count for its `comm` trace event.
type PhaseResults<T> = Vec<Option<Result<(T, u64), RuntimeError>>>;

/// `vec![None; n]` for slot types whose payload is not `Clone`
/// (`RuntimeError` isn't).
fn blanks<T>(n: usize) -> Vec<Option<T>> {
    (0..n).map(|_| None).collect()
}

/// Mirror of the thread backend's `decode_as`: retags decode errors
/// with the operation name.
pub(super) fn decode_as<T: Wire>(op: &'static str, bytes: &[u8]) -> Result<T, RuntimeError> {
    T::decode(bytes).map_err(|e| match e {
        RuntimeError::Decode { detail, .. } => RuntimeError::Decode { what: op, detail },
        other => other,
    })
}

/// Converts a pure [`collective`] schedule into a deposit-ready
/// charge (mirror of the thread backend's `charge_of`).
fn charge_rounds(rounds: &collective::Rounds) -> ChargeSpec {
    ChargeSpec::Rounds(
        rounds
            .iter()
            .map(|r| r.iter().map(|&(s, d, b)| (s, d, b as f64)).collect())
            .collect(),
    )
}

/// Encoded length of an `Option<Vec<u8>>` frame: 1 tag byte, plus
/// length prefix and payload when present.
fn framed_len(present: bool, payload_len: u64) -> u64 {
    if present {
        9 + payload_len
    } else {
        1
    }
}

/// Encoded length of a [`Slots`] bundle with the given present-slot
/// payload lengths (`Vec` length prefix + one tag byte per slot +
/// length prefix and payload per present slot).
fn bundle_len(size: usize, present: impl Iterator<Item = u64>) -> u64 {
    8 + size as u64 + present.map(|n| 8 + n).sum::<u64>()
}

/// Lifecycle of one schedule position while a general (fault-aware)
/// data phase replays the thread backend's per-rank programs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PState {
    /// Dead before the data phase (agreed-live hole or `op_begin`
    /// death): every edge touching it degrades.
    Hole,
    /// Executing its per-rank program normally.
    Active,
    /// Its program returned an error (exhausted drop retries) but the
    /// rank is alive — receivers waiting on it starve.
    Failed,
    /// Fail-stopped mid-phase by a deadline starvation.
    Starved,
}

/// One pending schedule-edge delivery captured in a send pass and
/// consumed in the matching receive pass.
#[derive(Clone, Copy)]
struct Inflight {
    /// Whether the frame carries a payload (`Option` framing) or, for
    /// bundle edges, whether the sender's bundle was good.
    present: bool,
    /// Sender's Lamport stamp at send time.
    stamp: u64,
    /// Injected delivery delay, seconds.
    delay: f64,
    /// Framed message length, bytes.
    msg_len: u64,
}

impl EventSim {
    // ----- shared driver plumbing -------------------------------------

    /// Mirror of the thread backend's deadline starvation: a rank
    /// blocked on a sender that is alive but no longer sending hits
    /// the plan deadline and fail-stops.
    fn starve(&mut self, op: &'static str, rank: usize) -> RuntimeError {
        let deadline = self
            .plan
            .deadline
            .unwrap_or(crate::comm::DEFAULT_DEADLINE_SECS);
        self.mark_dead(rank);
        self.fault(rank, "timeout", -1, 0, deadline);
        RuntimeError::Timeout { op, rank, deadline }
    }

    /// Pass 2 of a star fan-in: the collector's `collect_payloads`,
    /// consuming leaf send fates in ascending src order. Delivered
    /// contributions are marked `present`; the first exhausted sender
    /// starves the collector (later fates are left unconsumed, as the
    /// collector's program has ended).
    fn collect_fan_in(
        &mut self,
        op: &'static str,
        collector: usize,
        fates: &[Option<SendFate>],
        present: &mut [bool],
    ) -> Option<RuntimeError> {
        let mut err: Option<RuntimeError> = None;
        for (src, fate) in fates.iter().enumerate() {
            match fate {
                Some(SendFate::Delivered { stamp, delay }) if err.is_none() => {
                    self.deliver(collector, *stamp, *delay);
                    present[src] = true;
                }
                Some(SendFate::Exhausted(_)) if err.is_none() => {
                    err = Some(self.starve(op, collector));
                }
                Some(SendFate::DeadDst) => unreachable!("collector checked alive above"),
                _ => {}
            }
        }
        err
    }

    /// Begins a collective: `op_begin` for every running rank in
    /// `(clock, rank)` order, scheduled deaths surfaced into `out`,
    /// and the agreed-liveness abandonment check (a rank that is
    /// agreed-alive but no longer running would deadline-stall the
    /// thread backend; the engine surfaces a typed error instead —
    /// docs/RUNTIME.md §9). Returns `None` when there is no cohort to
    /// run.
    fn collective_prologue<T>(
        &mut self,
        op: &'static str,
        out: &mut RankResults<T>,
    ) -> Option<(Cohort, Vec<bool>)> {
        let (members, failed) = self.begin_cohort(op);
        for (rank, e) in failed {
            out[rank] = Some(Err(e));
        }
        if members.is_empty() {
            return None;
        }
        let mut in_cohort = vec![false; self.size];
        for &(r, _) in &members {
            in_cohort[r] = true;
        }
        let ghost = (0..self.size).find(|&r| self.agreed_alive[r] && !self.dead[r] && !in_cohort[r]);
        if let Some(ghost) = ghost {
            for &(r, _) in &members {
                self.halt(r);
                out[r] = Some(Err(RuntimeError::App(format!(
                    "{op}: rank {ghost} is agreed-alive but no longer participating; \
                     the thread backend would deadline-stall here (docs/RUNTIME.md §9)"
                ))));
            }
            return None;
        }
        Some((members, in_cohort))
    }

    /// Completes the collective's closing barrier generation exactly
    /// as the thread backend would: the generation completes (Lamport
    /// join, membership agreement, deposited charge) iff at least one
    /// cohort rank is still alive to arrive. Returns the `gen` stamp
    /// every arriving rank records.
    fn close_cohort(&mut self, members: &[(usize, OpStart)]) -> u64 {
        let gen = self.generation;
        if members.iter().any(|&(r, _)| !self.dead[r]) {
            self.complete_generation();
        }
        gen
    }

    /// Round count of a rootless schedule over the (post-completion)
    /// agreed live ranks — mirror of the thread backend's
    /// `rootless_rounds`.
    fn rootless_rounds(&self, resolved: Resolved) -> u64 {
        let p = self.agreed_live().len();
        if p <= 1 {
            return 0;
        }
        match resolved {
            Resolved::Hub => 2,
            Resolved::Ring => (p - 1) as u64,
            Resolved::Tree => {
                let q2 = collective::prev_pow2(p);
                u64::from(collective::ceil_log2(q2)) + if p > q2 { 2 } else { 0 }
            }
        }
    }

    /// Round count of a rooted schedule over the (post-completion)
    /// agreed live ranks — mirror of the thread backend's
    /// `rooted_rounds`.
    fn rooted_rounds(&self, resolved: Resolved) -> u64 {
        let p = self.agreed_live().len();
        if p <= 1 {
            return 0;
        }
        match resolved {
            Resolved::Hub => 1,
            Resolved::Ring | Resolved::Tree => u64::from(collective::ceil_log2(p)),
        }
    }

    /// Finishes a collective: epilogues dispatch in final `(clock,
    /// rank)` order; a successful rank emits its `comm` trace event,
    /// an errored rank halts (the mirror of `?`-propagation ending
    /// the thread backend's rank closure) without one.
    #[allow(clippy::too_many_arguments)] // one flat epilogue, mirroring the thread backend's
    fn collective_epilogue<T>(
        &mut self,
        op: &'static str,
        peer: i64,
        algorithm: &'static str,
        rounds: u64,
        gen: u64,
        members: &[(usize, OpStart)],
        mut phase: PhaseResults<T>,
        out: &mut RankResults<T>,
    ) {
        let order = self.cohort_end_order(members);
        let starts: HashMap<usize, OpStart> = members.iter().copied().collect();
        for rank in order {
            match phase[rank]
                .take()
                .expect("every cohort rank has a data-phase outcome")
            {
                Ok((value, moved)) => {
                    let start = starts[&rank];
                    self.op_end(rank, op, peer, moved, &start, algorithm, rounds, gen);
                    out[rank] = Some(Ok(value));
                }
                Err(e) => {
                    self.halt(rank);
                    out[rank] = Some(Err(e));
                }
            }
        }
    }

    /// Rejects an out-of-range root exactly as the thread backend's
    /// `check_rank` does — before any op accounting, for every
    /// running rank.
    fn reject_invalid_root<T>(
        &mut self,
        op: &'static str,
        root: usize,
        out: &mut RankResults<T>,
    ) -> bool {
        if root < self.size {
            return false;
        }
        let size = self.size;
        for (rank, slot) in out.iter_mut().enumerate() {
            if self.running[rank] {
                self.halt(rank);
                *slot = Some(Err(RuntimeError::InvalidRank {
                    op,
                    rank: root,
                    size,
                }));
            }
        }
        true
    }

    // ----- barrier ----------------------------------------------------

    /// Collective barrier across all running ranks (mirror of
    /// [`crate::Communicator::barrier`]).
    pub fn barrier(&mut self) -> RankResults<()> {
        const OP: &str = "barrier";
        let mut out: RankResults<()> = blanks(self.size);
        let Some((members, _)) = self.collective_prologue(OP, &mut out) else {
            return out;
        };
        let resolved = self.policy.barrier.resolve_rooted(self.size);
        let live = self.agreed_live();
        let rounds = match resolved {
            Resolved::Hub => {
                let hub = live[0];
                let zeros = vec![0u64; live.len()];
                vec![
                    collective::star_gather_round(&live, hub, &zeros),
                    collective::star_scatter_round(&live, hub, &zeros),
                ]
            }
            Resolved::Ring | Resolved::Tree => collective::barrier_tree_rounds(&live),
        };
        let n_rounds = rounds.len() as u64;
        // The barrier's charge is a first-deposit-wins default, never
        // an overwrite (raw_barrier_arrive mirror).
        if self.pending_charge.is_none() {
            self.pending_charge = Some(charge_rounds(&rounds));
        }
        let gen = self.close_cohort(&members);
        let mut phase: PhaseResults<()> = blanks(self.size);
        for &(r, _) in &members {
            phase[r] = Some(Ok(((), 0)));
        }
        self.collective_epilogue(OP, -1, resolved.name(), n_rounds, gen, &members, phase, &mut out);
        out
    }

    // ----- rootless all-gather core -----------------------------------

    /// Data phase shared by `allgatherv`, `allgatherv_available` and
    /// the ring/tree `allreduce` (mirror of the thread backend's
    /// `allgather_slots`). `own` holds each cohort rank's encoded
    /// contribution, absolute-rank-indexed.
    fn allgather_phase(
        &mut self,
        op: &'static str,
        resolved: Resolved,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
    ) -> PhaseResults<Arc<Slots>> {
        let mut phase: PhaseResults<Arc<Slots>> = blanks(self.size);
        if self.size == 1 {
            // Size-1 communicator shortcut: the thread backend returns
            // the caller's own slot with zero bytes moved and no
            // schedule deposit, before the resolution dispatch.
            if in_cohort[0] {
                if let Some(bytes) = own[0].clone() {
                    phase[0] = Some(Ok((Arc::new(vec![Some(bytes)]), 0)));
                }
            }
            return phase;
        }
        match resolved {
            Resolved::Hub => self.allgather_hub_phase(op, own, in_cohort, &mut phase),
            Resolved::Ring => self.allgather_ring_phase(op, own, in_cohort, &mut phase),
            Resolved::Tree => self.allgather_butterfly_phase(op, own, in_cohort, &mut phase),
        }
        phase
    }

    /// Hub all-gather mirror: star fan-in of contributions to the
    /// lowest agreed-live rank, star fan-out of the full slot vector.
    /// Every receiving rank decodes the identical blob, so one shared
    /// `Arc` stands in for all the per-rank copies.
    fn allgather_hub_phase(
        &mut self,
        op: &'static str,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
        phase: &mut PhaseResults<Arc<Slots>>,
    ) {
        let size = self.size;
        let live = self.agreed_live();
        let hub = live[0];
        if self.dead[hub] {
            // Hub death is fatal for the hub schedule: every leaf's
            // non-tolerant send to it fails.
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: hub }));
                }
            }
            return;
        }
        // Pass 1 — leaf sends, ascending (each leaf's program sends
        // immediately; the hub consumes later).
        let mut fates: Vec<Option<SendFate>> = (0..size).map(|_| None).collect();
        for src in 0..size {
            if src != hub && in_cohort[src] {
                fates[src] = Some(self.send_eval(op, src, hub));
            }
        }
        // Pass 2 — the hub's collect_payloads, ascending src order.
        let mut present = vec![false; size];
        present[hub] = true;
        let hub_err = self.collect_fan_in(op, hub, &fates, &mut present);
        for (src, fate) in fates.into_iter().enumerate() {
            if let Some(SendFate::Exhausted(e)) = fate {
                phase[src] = Some(Err(e));
            }
        }
        if let Some(e) = hub_err {
            // The hub fail-stopped mid-collect: every leaf still
            // waiting for the blob sees a dead sender.
            phase[hub] = Some(Err(e));
            for r in 0..size {
                if r != hub && in_cohort[r] && phase[r].is_none() {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: hub }));
                }
            }
            return;
        }
        // Blob fan-out. The blob bytes are never materialised — only
        // their encoded length matters for clocks and accounting.
        let own_len = |r: usize| own[r].as_ref().map_or(0, |b| b.len() as u64);
        let blob_len = bundle_len(
            size,
            (0..size).filter(|&r| present[r]).map(own_len),
        );
        let hub_own_len = own_len(hub);
        let mut hub_moved = hub_own_len;
        let mut fanout_err: Option<RuntimeError> = None;
        let mut delivered = vec![false; size];
        for &dst in &live {
            if dst == hub {
                continue;
            }
            if self.dead[dst] {
                // send_tolerant: a dead destination's edge drops, but
                // the hub still counts the bytes it pushed.
                hub_moved += blob_len;
                continue;
            }
            match self.send_eval(op, hub, dst) {
                SendFate::Delivered { stamp, delay } => {
                    hub_moved += blob_len;
                    self.deliver(dst, stamp, delay);
                    delivered[dst] = true;
                }
                SendFate::DeadDst => {
                    hub_moved += blob_len;
                }
                SendFate::Exhausted(e) => {
                    fanout_err = Some(e);
                    break;
                }
            }
        }
        let slots: Slots = (0..size)
            .map(|r| if present[r] { own[r].clone() } else { None })
            .collect();
        let shared = Arc::new(slots);
        if let Some(e) = fanout_err {
            phase[hub] = Some(Err(e));
        } else {
            let in_lens: Vec<u64> = live
                .iter()
                .map(|&r| if present[r] { own_len(r) } else { 0 })
                .collect();
            let out_lens = vec![blob_len; live.len()];
            let rounds = vec![
                collective::star_gather_round(&live, hub, &in_lens),
                collective::star_scatter_round(&live, hub, &out_lens),
            ];
            self.pending_charge = Some(charge_rounds(&rounds));
            phase[hub] = Some(Ok((Arc::clone(&shared), hub_moved)));
        }
        for r in 0..size {
            if r == hub || !in_cohort[r] || phase[r].is_some() {
                continue;
            }
            if delivered[r] {
                phase[r] = Some(Ok((Arc::clone(&shared), own_len(r) + blob_len)));
            } else {
                // The hub's program erred before reaching this leaf:
                // it waits on an alive-but-silent sender and starves.
                phase[r] = Some(Err(self.starve(op, r)));
            }
        }
    }

    /// Ring all-gather mirror. Takes the closed-form fast path when
    /// the round structure is provably uniform (fault-free, no holes,
    /// equal contributions, uniform link, bit-identical clocks);
    /// otherwise replays the `q - 1` pipelined rounds with per-rank
    /// presence tracking, exactly as the thread ranks would run them.
    fn allgather_ring_phase(
        &mut self,
        op: &'static str,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
        phase: &mut PhaseResults<Arc<Slots>>,
    ) {
        let size = self.size;
        let live = self.agreed_live();
        let q = live.len();
        if q == 1 {
            // One agreed rank: its held vector is just its own slot,
            // and the thread backend deposits nothing.
            let r = live[0];
            if in_cohort[r] {
                let mut slots: Slots = vec![None; size];
                slots[r] = own[r].clone();
                phase[r] = Some(Ok((Arc::new(slots), 0)));
            }
            return;
        }
        let own_len: Vec<u64> = live
            .iter()
            .map(|&r| own[r].as_ref().map_or(0, |b| b.len() as u64))
            .collect();

        // Fast path: every round moves the same framed block between
        // clock-synchronised neighbours, so Lamports, moved bytes and
        // the deposited charge all have closed forms.
        let uniform = self.plan.drops.is_empty()
            && self.plan.delays.is_empty()
            && q == size
            && own_len.windows(2).all(|w| w[0] == w[1])
            && self.sim.topology().uniform_link().is_some()
            && {
                let t0 = self.sim.time(0).to_bits();
                (1..size).all(|r| self.sim.time(r).to_bits() == t0)
            }
            && self.lamport.windows(2).all(|w| w[0] == w[1]);
        if uniform {
            let msg = 9 + own_len[0];
            let rounds = q - 1;
            let joined = self.lamport[0].wrapping_add(rounds as u64);
            for c in &mut self.lamport {
                *c = joined;
            }
            self.events += rounds as u64;
            let moved = rounds as u64 * 2 * msg;
            let slots: Slots = (0..size).map(|r| own[r].clone()).collect();
            let shared = Arc::new(slots);
            self.pending_charge = Some(ChargeSpec::UniformRing {
                bytes: msg as f64,
                rounds,
            });
            for slot in phase.iter_mut() {
                *slot = Some(Ok((Arc::clone(&shared), moved)));
            }
            return;
        }

        // General path: O(q²) presence replay (the fault/hole cases
        // the parity and survivor tests pin; large-p runs stay on the
        // fast path above).
        let mut st: Vec<PState> = live
            .iter()
            .map(|&r| if in_cohort[r] { PState::Active } else { PState::Hole })
            .collect();
        let mut errs: Vec<Option<RuntimeError>> = (0..q).map(|_| None).collect();
        let mut has = vec![vec![false; q]; q];
        let mut moved = vec![0u64; q];
        for (pos, row) in has.iter_mut().enumerate() {
            if st[pos] == PState::Active {
                row[pos] = true;
            }
        }
        for k in 0..q - 1 {
            // Pass 1 — every active rank sends its round-k block.
            let mut inbox: Vec<Option<Inflight>> = (0..q).map(|_| None).collect();
            for pos in 0..q {
                if st[pos] != PState::Active {
                    continue;
                }
                let opos = (pos + q - k) % q;
                let present = has[pos][opos];
                let msg_len = framed_len(present, own_len[opos]);
                moved[pos] += msg_len;
                let next = (pos + 1) % q;
                match self.send_eval(op, live[pos], live[next]) {
                    SendFate::Delivered { stamp, delay } => {
                        inbox[next] = Some(Inflight {
                            present,
                            stamp,
                            delay,
                            msg_len,
                        });
                    }
                    SendFate::DeadDst => {}
                    SendFate::Exhausted(e) => {
                        st[pos] = PState::Failed;
                        errs[pos] = Some(e);
                    }
                }
            }
            // Pass 2 — receives: a dead predecessor degrades, an
            // alive-but-failed one starves the receiver.
            for pos in 0..q {
                if st[pos] != PState::Active {
                    continue;
                }
                let prev = (pos + q - 1) % q;
                let orecv = (pos + q - 1 - k) % q;
                match st[prev] {
                    PState::Hole | PState::Starved => {}
                    PState::Failed => {
                        errs[pos] = Some(self.starve(op, live[pos]));
                        st[pos] = PState::Starved;
                    }
                    PState::Active => {
                        let m = inbox[pos].take().expect("active predecessor delivered");
                        self.deliver(live[pos], m.stamp, m.delay);
                        moved[pos] += m.msg_len;
                        if m.present {
                            has[pos][orecv] = true;
                        }
                    }
                }
            }
        }
        if st[0] == PState::Active {
            let lens: Vec<u64> = (0..q)
                .map(|opos| framed_len(has[0][opos], own_len[opos]))
                .collect();
            self.pending_charge = Some(charge_rounds(&collective::ring_rounds(&live, &lens)));
        }
        for pos in 0..q {
            match st[pos] {
                PState::Hole => {}
                PState::Active => {
                    let mut slots: Slots = vec![None; size];
                    for opos in 0..q {
                        if has[pos][opos] {
                            slots[live[opos]] = own[live[opos]].clone();
                        }
                    }
                    phase[live[pos]] = Some(Ok((Arc::new(slots), moved[pos])));
                }
                PState::Failed | PState::Starved => {
                    phase[live[pos]] = Some(Err(errs[pos].take().expect("failure recorded")));
                }
            }
        }
    }

    /// Recursive-doubling all-gather mirror: fold-in from the extras,
    /// `log2 q2` pairwise exchange rounds in the power-of-two core,
    /// fold-out back to the extras. The fault-free/no-hole case takes
    /// an `O(q log q)` fast path (Lamport and slot-count arrays plus
    /// the uniform schedule builder); everything else replays the
    /// full presence-tracked exchange.
    fn allgather_butterfly_phase(
        &mut self,
        op: &'static str,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
        phase: &mut PhaseResults<Arc<Slots>>,
    ) {
        let size = self.size;
        let live = self.agreed_live();
        let q = live.len();
        if q == 1 {
            let r = live[0];
            if in_cohort[r] {
                let mut slots: Slots = vec![None; size];
                slots[r] = own[r].clone();
                phase[r] = Some(Ok((Arc::new(slots), 0)));
            }
            return;
        }
        let q2 = collective::prev_pow2(q);
        let own_len: Vec<u64> = live
            .iter()
            .map(|&r| own[r].as_ref().map_or(0, |b| b.len() as u64))
            .collect();

        let uniform = self.plan.drops.is_empty()
            && self.plan.delays.is_empty()
            && q == size
            && own_len.windows(2).all(|w| w[0] == w[1]);
        if uniform {
            self.butterfly_fast(own, &live, q2, own_len[0], phase);
            return;
        }

        // General path: presence rows over schedule positions,
        // replayed phase by phase in the thread ranks' program order.
        let mut st: Vec<PState> = live
            .iter()
            .map(|&r| if in_cohort[r] { PState::Active } else { PState::Hole })
            .collect();
        let mut errs: Vec<Option<RuntimeError>> = (0..q).map(|_| None).collect();
        let mut has = vec![vec![false; q]; q];
        let mut moved = vec![0u64; q];
        for (pos, row) in has.iter_mut().enumerate() {
            if st[pos] == PState::Active {
                row[pos] = true;
            }
        }
        let row_len = |row: &[bool], own_len: &[u64]| {
            bundle_len(
                size,
                row.iter()
                    .enumerate()
                    .filter(|&(_, &p)| p)
                    .map(|(o, _)| own_len[o]),
            )
        };
        // Phase A — extras fold their single slot into the core.
        let mut inbox: Vec<Option<Inflight>> = (0..q).map(|_| None).collect();
        for e in q2..q {
            if st[e] != PState::Active {
                continue;
            }
            let msg_len = row_len(&has[e], &own_len);
            moved[e] += msg_len;
            match self.send_eval(op, live[e], live[e - q2]) {
                SendFate::Delivered { stamp, delay } => {
                    inbox[e - q2] = Some(Inflight {
                        present: true,
                        stamp,
                        delay,
                        msg_len,
                    });
                }
                SendFate::DeadDst => {}
                SendFate::Exhausted(err) => {
                    st[e] = PState::Failed;
                    errs[e] = Some(err);
                }
            }
        }
        for pos in 0..q.min(q2) {
            if st[pos] != PState::Active || pos + q2 >= q {
                continue;
            }
            let e = pos + q2;
            match st[e] {
                PState::Hole | PState::Starved => {}
                PState::Failed => {
                    errs[pos] = Some(self.starve(op, live[pos]));
                    st[pos] = PState::Starved;
                }
                PState::Active => {
                    let m = inbox[pos].take().expect("active extra delivered");
                    self.deliver(live[pos], m.stamp, m.delay);
                    moved[pos] += m.msg_len;
                    let (head, tail) = has.split_at_mut(e);
                    for (mine, theirs) in head[pos].iter_mut().zip(&tail[0]) {
                        *mine |= *theirs;
                    }
                }
            }
        }
        // Phase B — pairwise exchange rounds inside the core.
        let mut mask = 1usize;
        while mask < q2 {
            let snap = has.clone();
            let mut inbox: Vec<Option<Inflight>> = (0..q).map(|_| None).collect();
            for pos in 0..q2 {
                if st[pos] != PState::Active {
                    continue;
                }
                let partner = pos ^ mask;
                let msg_len = row_len(&snap[pos], &own_len);
                moved[pos] += msg_len;
                match self.send_eval(op, live[pos], live[partner]) {
                    SendFate::Delivered { stamp, delay } => {
                        inbox[partner] = Some(Inflight {
                            present: true,
                            stamp,
                            delay,
                            msg_len,
                        });
                    }
                    SendFate::DeadDst => {}
                    SendFate::Exhausted(err) => {
                        st[pos] = PState::Failed;
                        errs[pos] = Some(err);
                    }
                }
            }
            for pos in 0..q2 {
                if st[pos] != PState::Active {
                    continue;
                }
                let partner = pos ^ mask;
                match st[partner] {
                    PState::Hole | PState::Starved => {}
                    PState::Failed => {
                        errs[pos] = Some(self.starve(op, live[pos]));
                        st[pos] = PState::Starved;
                    }
                    PState::Active => {
                        let m = inbox[pos].take().expect("active partner delivered");
                        self.deliver(live[pos], m.stamp, m.delay);
                        moved[pos] += m.msg_len;
                        for (o, theirs) in snap[partner].iter().enumerate() {
                            if *theirs {
                                has[pos][o] = true;
                            }
                        }
                    }
                }
            }
            mask <<= 1;
        }
        // Phase C — fold the full result back out to the extras.
        let mut inbox: Vec<Option<Inflight>> = (0..q).map(|_| None).collect();
        for pos in 0..q.min(q2) {
            if st[pos] != PState::Active || pos + q2 >= q {
                continue;
            }
            let msg_len = row_len(&has[pos], &own_len);
            moved[pos] += msg_len;
            match self.send_eval(op, live[pos], live[pos + q2]) {
                SendFate::Delivered { stamp, delay } => {
                    inbox[pos + q2] = Some(Inflight {
                        present: true,
                        stamp,
                        delay,
                        msg_len,
                    });
                }
                SendFate::DeadDst => {}
                SendFate::Exhausted(err) => {
                    st[pos] = PState::Failed;
                    errs[pos] = Some(err);
                }
            }
        }
        for e in q2..q {
            if st[e] != PState::Active {
                continue;
            }
            let core = e - q2;
            match st[core] {
                PState::Hole | PState::Starved => {}
                PState::Failed => {
                    errs[e] = Some(self.starve(op, live[e]));
                    st[e] = PState::Starved;
                }
                PState::Active => {
                    let m = inbox[e].take().expect("active core delivered");
                    self.deliver(live[e], m.stamp, m.delay);
                    moved[e] += m.msg_len;
                    let (head, tail) = has.split_at_mut(e);
                    for (theirs, mine) in head[core].iter().zip(tail[0].iter_mut()) {
                        *mine |= *theirs;
                    }
                }
            }
        }
        if st[0] == PState::Active {
            // Mirror: absent slots are charged at live[0]'s own
            // contribution length.
            let lens: Vec<u64> = (0..q)
                .map(|o| if has[0][o] { own_len[o] } else { own_len[0] })
                .collect();
            self.pending_charge = Some(charge_rounds(&collective::butterfly_rounds(
                size, &live, &lens,
            )));
        }
        for pos in 0..q {
            match st[pos] {
                PState::Hole => {}
                PState::Active => {
                    let mut slots: Slots = vec![None; size];
                    for opos in 0..q {
                        if has[pos][opos] {
                            slots[live[opos]] = own[live[opos]].clone();
                        }
                    }
                    phase[live[pos]] = Some(Ok((Arc::new(slots), moved[pos])));
                }
                PState::Failed | PState::Starved => {
                    phase[live[pos]] = Some(Err(errs[pos].take().expect("failure recorded")));
                }
            }
        }
    }

    /// Fault-free butterfly fast path: Lamports and per-position slot
    /// counts evolve by the same `O(q log q)` recurrences the message
    /// exchange would produce, and the charge comes from the uniform
    /// schedule builder.
    fn butterfly_fast(
        &mut self,
        own: &[Option<Vec<u8>>],
        live: &[usize],
        q2: usize,
        m: u64,
        phase: &mut PhaseResults<Arc<Slots>>,
    ) {
        let size = self.size;
        let q = live.len();
        let esl = |c: u64| 8 + size as u64 + c * (8 + m);
        let mut lam: Vec<u64> = live.iter().map(|&r| self.lamport[r]).collect();
        let mut cnt = vec![1u64; q];
        let mut moved = vec![0u64; q];
        // Fold-in.
        for e in q2..q {
            let core = e - q2;
            moved[e] += esl(1);
            lam[core] = lam[core].max(lam[e].wrapping_add(1));
            moved[core] += esl(1);
            cnt[core] += 1;
        }
        // Pairwise exchange rounds.
        let mut mask = 1usize;
        while mask < q2 {
            let lam_snap = lam.clone();
            let cnt_snap = cnt.clone();
            for pos in 0..q2 {
                let partner = pos ^ mask;
                moved[pos] += esl(cnt_snap[pos]) + esl(cnt_snap[partner]);
                lam[pos] = lam_snap[pos].max(lam_snap[partner].wrapping_add(1));
                cnt[pos] = cnt_snap[pos] + cnt_snap[partner];
            }
            mask <<= 1;
        }
        // Fold-out.
        for e in q2..q {
            let core = e - q2;
            moved[core] += esl(cnt[core]);
            moved[e] += esl(cnt[core]);
            lam[e] = lam[e].max(lam[core].wrapping_add(1));
        }
        for (pos, &r) in live.iter().enumerate() {
            self.lamport[r] = lam[pos];
        }
        self.events += u64::from(collective::ceil_log2(q2)) + if q > q2 { 2 } else { 0 };
        let slots: Slots = (0..size).map(|r| own[r].clone()).collect();
        let shared = Arc::new(slots);
        self.pending_charge = Some(charge_rounds(&collective::butterfly_rounds_uniform(
            size, live, m,
        )));
        for (pos, &r) in live.iter().enumerate() {
            phase[r] = Some(Ok((Arc::clone(&shared), moved[pos])));
        }
    }

    // ----- rootless public ops ----------------------------------------

    /// Shared prologue + data phase of the `allgatherv` variants:
    /// encodes contributions, resolves the schedule (every cohort rank
    /// must agree — mixed per-rank resolutions would deadlock the
    /// thread backend and are rejected with a typed error), runs the
    /// slot phase and closes the generation.
    #[allow(clippy::type_complexity)] // internal plumbing tuple
    fn allgatherv_slots<T: Wire, U>(
        &mut self,
        op: &'static str,
        values: &[T],
        out: &mut RankResults<U>,
    ) -> Option<(
        Vec<(usize, OpStart)>,
        Resolved,
        PhaseResults<Arc<Slots>>,
        u64,
        u64,
    )> {
        assert_eq!(values.len(), self.size, "one input value per rank");
        let (members, in_cohort) = self.collective_prologue(op, out)?;
        let mut own: Vec<Option<Vec<u8>>> = vec![None; self.size];
        for &(r, _) in &members {
            own[r] = Some(values[r].to_bytes());
        }
        let mut resolved: Option<Resolved> = None;
        let mut mixed = false;
        for &(r, _) in &members {
            let len = own[r].as_ref().expect("cohort rank encoded").len() as u64;
            let rr = self.policy.allgatherv.resolve_allgatherv(self.size, len);
            match resolved {
                None => resolved = Some(rr),
                Some(prev) if prev.name() == rr.name() => {}
                Some(_) => mixed = true,
            }
        }
        if mixed {
            for &(r, _) in &members {
                self.halt(r);
                out[r] = Some(Err(RuntimeError::App(format!(
                    "{op}: contribution sizes straddle the auto ring/tree crossover, so \
                     ranks resolve different schedules; the thread backend would deadlock \
                     here (docs/RUNTIME.md §9)"
                ))));
            }
            return None;
        }
        let resolved = resolved.expect("non-empty cohort");
        let phase = self.allgather_phase(op, resolved, &own, &in_cohort);
        let gen = self.close_cohort(&members);
        let rounds = self.rootless_rounds(resolved);
        Some((members, resolved, phase, gen, rounds))
    }

    /// Strict all-gather (mirror of
    /// [`crate::Communicator::allgatherv`]): a `None` hole — a
    /// contribution lost to a dead rank — is a [`RuntimeError::RankDead`]
    /// error on every rank that sees it. `values` is absolute-rank
    /// indexed; entries of non-running ranks are ignored.
    pub fn allgatherv<T: Wire>(&mut self, values: &[T]) -> RankResults<Arc<Vec<T>>> {
        const OP: &str = "allgatherv";
        let mut out: RankResults<Arc<Vec<T>>> = blanks(self.size);
        let Some((members, resolved, mut phase, gen, rounds)) =
            self.allgatherv_slots(OP, values, &mut out)
        else {
            return out;
        };
        // Decode each distinct shared slot vector once (memoised by
        // Arc identity); failure paths re-derive the exact per-rank
        // error by replaying the ascending scan.
        let mut memo: HashMap<*const Slots, Option<Arc<Vec<T>>>> = HashMap::new();
        let mut decoded: PhaseResults<Arc<Vec<T>>> = blanks(self.size);
        for r in 0..self.size {
            let Some(entry) = phase[r].take() else { continue };
            decoded[r] = Some(match entry {
                Err(e) => Err(e),
                Ok((slots, moved)) => {
                    let good = memo
                        .entry(Arc::as_ptr(&slots))
                        .or_insert_with(|| strict_slots::<T>(OP, &slots).ok().map(Arc::new))
                        .clone();
                    match good {
                        Some(arc) => Ok((arc, moved)),
                        None => Err(strict_slots::<T>(OP, &slots)
                            .err()
                            .expect("memoised decode failure replays")),
                    }
                }
            });
        }
        self.collective_epilogue(OP, -1, resolved.name(), rounds, gen, &members, decoded, &mut out);
        out
    }

    /// Degradation-tolerant all-gather (mirror of
    /// [`crate::Communicator::allgatherv_available`]): holes come back
    /// as `None` instead of erroring.
    pub fn allgatherv_available<T: Wire>(
        &mut self,
        values: &[T],
    ) -> RankResults<Arc<Vec<Option<T>>>> {
        const OP: &str = "allgatherv";
        let mut out: RankResults<Arc<Vec<Option<T>>>> = blanks(self.size);
        let Some((members, resolved, mut phase, gen, rounds)) =
            self.allgatherv_slots(OP, values, &mut out)
        else {
            return out;
        };
        let mut memo: HashMap<*const Slots, Option<Arc<Vec<Option<T>>>>> = HashMap::new();
        let mut decoded: PhaseResults<Arc<Vec<Option<T>>>> = blanks(self.size);
        for r in 0..self.size {
            let Some(entry) = phase[r].take() else { continue };
            decoded[r] = Some(match entry {
                Err(e) => Err(e),
                Ok((slots, moved)) => {
                    let good = memo
                        .entry(Arc::as_ptr(&slots))
                        .or_insert_with(|| available_slots::<T>(OP, &slots).ok().map(Arc::new))
                        .clone();
                    match good {
                        Some(arc) => Ok((arc, moved)),
                        None => Err(available_slots::<T>(OP, &slots)
                            .err()
                            .expect("memoised decode failure replays")),
                    }
                }
            });
        }
        self.collective_epilogue(OP, -1, resolved.name(), rounds, gen, &members, decoded, &mut out);
        out
    }

    /// All-reduce (mirror of [`crate::Communicator::allreduce`]):
    /// every schedule gathers raw contributions and folds them in the
    /// pinned ascending-rank, left-associated order, so hub, ring and
    /// tree stay bitwise identical.
    pub fn allreduce(&mut self, values: &[f64], rop: ReduceOp) -> RankResults<f64> {
        const OP: &str = "allreduce";
        assert_eq!(values.len(), self.size, "one input value per rank");
        let mut out: RankResults<f64> = blanks(self.size);
        let Some((members, in_cohort)) = self.collective_prologue(OP, &mut out) else {
            return out;
        };
        let mut own: Vec<Option<Vec<u8>>> = vec![None; self.size];
        for &(r, _) in &members {
            own[r] = Some(values[r].to_bytes());
        }
        let resolved = self.policy.allreduce.resolve_allreduce(self.size);
        let phase: PhaseResults<f64> = match resolved {
            Resolved::Hub => self.allreduce_hub_phase(OP, &own, &in_cohort, rop),
            Resolved::Ring | Resolved::Tree => {
                let mut slots_phase = self.allgather_phase(OP, resolved, &own, &in_cohort);
                let mut memo: HashMap<*const Slots, Option<f64>> = HashMap::new();
                let mut folded: PhaseResults<f64> = blanks(self.size);
                for r in 0..self.size {
                    let Some(entry) = slots_phase[r].take() else {
                        continue;
                    };
                    folded[r] = Some(match entry {
                        Err(e) => Err(e),
                        Ok((slots, moved)) => {
                            let hit = *memo
                                .entry(Arc::as_ptr(&slots))
                                .or_insert_with(|| fold_slots(OP, &slots, rop).ok());
                            match hit {
                                Some(v) => Ok((v, moved)),
                                None => Err(fold_slots(OP, &slots, rop)
                                    .expect_err("memoised fold failure replays")),
                            }
                        }
                    });
                }
                folded
            }
        };
        let gen = self.close_cohort(&members);
        let rounds = self.rootless_rounds(resolved);
        self.collective_epilogue(OP, -1, resolved.name(), rounds, gen, &members, phase, &mut out);
        out
    }

    /// Hub all-reduce mirror: star fan-in of raw contributions, fold
    /// at the hub, star fan-out of the 8-byte folded value.
    fn allreduce_hub_phase(
        &mut self,
        op: &'static str,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
        rop: ReduceOp,
    ) -> PhaseResults<f64> {
        let size = self.size;
        let mut phase: PhaseResults<f64> = blanks(size);
        let live = self.agreed_live();
        let hub = live[0];
        if self.dead[hub] {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: hub }));
                }
            }
            return phase;
        }
        // Pass 1 — leaf sends, ascending.
        let mut fates: Vec<Option<SendFate>> = (0..size).map(|_| None).collect();
        for src in 0..size {
            if src != hub && in_cohort[src] {
                fates[src] = Some(self.send_eval(op, src, hub));
            }
        }
        // Pass 2 — the hub's collect_payloads, ascending src order.
        let mut present = vec![false; size];
        present[hub] = true;
        let hub_err = self.collect_fan_in(op, hub, &fates, &mut present);
        for (src, fate) in fates.into_iter().enumerate() {
            if let Some(SendFate::Exhausted(e)) = fate {
                phase[src] = Some(Err(e));
            }
        }
        let hub_err = hub_err.or_else(|| {
            // The hub folds before fanning out; a fold error ends its
            // program and every waiting leaf starves.
            let slots: Slots = (0..size)
                .map(|r| if present[r] { own[r].clone() } else { None })
                .collect();
            fold_slots(op, &slots, rop).err()
        });
        if let Some(e) = hub_err {
            phase[hub] = Some(Err(e));
            for r in 0..size {
                if r != hub && in_cohort[r] && phase[r].is_none() {
                    phase[r] = Some(Err(self.starve(op, r)));
                }
            }
            return phase;
        }
        let slots: Slots = (0..size)
            .map(|r| if present[r] { own[r].clone() } else { None })
            .collect();
        let folded = fold_slots(op, &slots, rop).expect("fold checked above");
        // Fan-out of the 8-byte folded value, tolerant of dead
        // destinations.
        let mut fanout_err: Option<RuntimeError> = None;
        let mut delivered = vec![false; size];
        for &dst in &live {
            if dst == hub || self.dead[dst] {
                continue;
            }
            match self.send_eval(op, hub, dst) {
                SendFate::Delivered { stamp, delay } => {
                    self.deliver(dst, stamp, delay);
                    delivered[dst] = true;
                }
                SendFate::DeadDst => {}
                SendFate::Exhausted(e) => {
                    fanout_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = fanout_err {
            phase[hub] = Some(Err(e));
        } else {
            let lens = vec![8u64; live.len()];
            let rounds = vec![
                collective::star_gather_round(&live, hub, &lens),
                collective::star_scatter_round(&live, hub, &lens),
            ];
            self.pending_charge = Some(charge_rounds(&rounds));
            phase[hub] = Some(Ok((folded, 8 * live.len() as u64)));
        }
        for r in 0..size {
            if r == hub || !in_cohort[r] || phase[r].is_some() {
                continue;
            }
            if delivered[r] {
                phase[r] = Some(Ok((folded, 16)));
            } else {
                phase[r] = Some(Err(self.starve(op, r)));
            }
        }
        phase
    }

    // ----- rooted ops -------------------------------------------------

    /// Degradation-tolerant gather (mirror of
    /// [`crate::Communicator::gather_available`]): the root receives
    /// `Some` slot vector with holes where contributions died,
    /// everyone else `None`.
    pub fn gather_available<T: Wire>(
        &mut self,
        root: usize,
        values: &[T],
    ) -> RankResults<Option<Arc<Vec<Option<T>>>>> {
        const OP: &str = "gatherv";
        assert_eq!(values.len(), self.size, "one input value per rank");
        let mut out: RankResults<Option<Arc<Vec<Option<T>>>>> = blanks(self.size);
        if self.reject_invalid_root(OP, root, &mut out) {
            return out;
        }
        let Some((members, in_cohort)) = self.collective_prologue(OP, &mut out) else {
            return out;
        };
        let resolved = self.policy.gatherv.resolve_rooted(self.size);
        let mut own: Vec<Option<Vec<u8>>> = vec![None; self.size];
        for &(r, _) in &members {
            own[r] = Some(values[r].to_bytes());
        }
        let mut raw: PhaseResults<Option<Slots>> = match resolved {
            Resolved::Hub => self.gather_hub_phase(OP, root, &own, &in_cohort),
            Resolved::Ring | Resolved::Tree => self.gather_tree_phase(OP, root, &own, &in_cohort),
        };
        let gen = self.close_cohort(&members);
        let rounds = self.rooted_rounds(resolved);
        let mut decoded: PhaseResults<Option<Arc<Vec<Option<T>>>>> = blanks(self.size);
        for r in 0..self.size {
            let Some(entry) = raw[r].take() else { continue };
            decoded[r] = Some(match entry {
                Err(e) => Err(e),
                Ok((None, moved)) => Ok((None, moved)),
                Ok((Some(slots), moved)) => match available_slots::<T>(OP, &slots) {
                    Ok(v) => Ok((Some(Arc::new(v)), moved)),
                    Err(e) => Err(e),
                },
            });
        }
        self.collective_epilogue(
            OP,
            root as i64,
            resolved.name(),
            rounds,
            gen,
            &members,
            decoded,
            &mut out,
        );
        out
    }

    /// Strict gather (mirror of [`crate::Communicator::gatherv`]):
    /// the root additionally rejects any hole — after its `comm`
    /// trace event, exactly like the thread backend's
    /// post-`gather_impl` scan.
    pub fn gatherv<T: Wire + Clone>(
        &mut self,
        root: usize,
        values: &[T],
    ) -> RankResults<Option<Arc<Vec<T>>>> {
        const OP: &str = "gatherv";
        let avail = self.gather_available::<T>(root, values);
        let mut out: RankResults<Option<Arc<Vec<T>>>> = blanks(self.size);
        for (r, entry) in avail.into_iter().enumerate() {
            let Some(res) = entry else { continue };
            out[r] = Some(match res {
                Err(e) => Err(e),
                Ok(None) => Ok(None),
                Ok(Some(slots)) => match slots.iter().position(Option::is_none) {
                    Some(rank) => {
                        self.halt(r);
                        Err(RuntimeError::RankDead { op: OP, rank })
                    }
                    None => Ok(Some(Arc::new(
                        slots
                            .iter()
                            .map(|s| s.clone().expect("no holes checked"))
                            .collect(),
                    ))),
                },
            });
        }
        out
    }

    /// Hub gather mirror: one star fan-in round to the op's root (not
    /// the agreed hub). Leaves send non-tolerantly and finish; only
    /// the root collects.
    fn gather_hub_phase(
        &mut self,
        op: &'static str,
        root: usize,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
    ) -> PhaseResults<Option<Slots>> {
        let size = self.size;
        let mut phase: PhaseResults<Option<Slots>> = blanks(size);
        if self.dead[root] {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: root }));
                }
            }
            return phase;
        }
        let own_len = |r: usize| own[r].as_ref().map_or(0, |b| b.len() as u64);
        // Pass 1 — leaf sends, ascending.
        let mut fates: Vec<Option<SendFate>> = (0..size).map(|_| None).collect();
        for src in 0..size {
            if src != root && in_cohort[src] {
                fates[src] = Some(self.send_eval(op, src, root));
            }
        }
        // Pass 2 — the root's collect_payloads, ascending src order.
        let mut present = vec![false; size];
        present[root] = true;
        let root_err = self.collect_fan_in(op, root, &fates, &mut present);
        for (src, fate) in fates.into_iter().enumerate() {
            if let Some(SendFate::Exhausted(e)) = fate {
                phase[src] = Some(Err(e));
            }
        }
        // Leaves are done the moment their send returns — a gather
        // has no fan-out for them to wait on.
        for r in 0..size {
            if r != root && in_cohort[r] && phase[r].is_none() {
                phase[r] = Some(Ok((None, own_len(r))));
            }
        }
        match root_err {
            Some(e) => phase[root] = Some(Err(e)),
            None => {
                let live = self.agreed_live();
                let lens: Vec<u64> = live
                    .iter()
                    .map(|&r| if present[r] { own_len(r) } else { 0 })
                    .collect();
                let moved = own_len(root) + lens.iter().sum::<u64>();
                let slots: Slots = (0..size)
                    .map(|r| if present[r] { own[r].clone() } else { None })
                    .collect();
                let rounds = vec![collective::star_gather_round(&live, root, &lens)];
                self.pending_charge = Some(charge_rounds(&rounds));
                phase[root] = Some(Ok((Some(slots), moved)));
            }
        }
        phase
    }

    /// Tree gather mirror: the reverse binomial tree, replayed
    /// children-before-parents. Per-subtree member lists are *moved*
    /// into the parent on delivery, so the whole phase is `O(q)` in
    /// memory and only the root ever materialises a slot vector.
    fn gather_tree_phase(
        &mut self,
        op: &'static str,
        root: usize,
        own: &[Option<Vec<u8>>],
        in_cohort: &[bool],
    ) -> PhaseResults<Option<Slots>> {
        let size = self.size;
        let mut phase: PhaseResults<Option<Slots>> = blanks(size);
        let live = self.agreed_live();
        let q = live.len();
        let Some(vroot) = live.iter().position(|&r| r == root) else {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: root }));
                }
            }
            return phase;
        };
        let abs = |v: usize| live[(v + vroot) % q];
        let own_len = |r: usize| own[r].as_ref().map_or(0, |b| b.len() as u64);
        let mut members_of: Vec<Vec<usize>> = (0..q).map(|v| vec![abs(v)]).collect();
        let mut cnt: Vec<u64> = vec![1; q];
        let mut sum: Vec<u64> = (0..q).map(|v| own_len(abs(v))).collect();
        let mut st: Vec<PState> = (0..q)
            .map(|v| {
                if in_cohort[abs(v)] {
                    PState::Active
                } else {
                    PState::Hole
                }
            })
            .collect();
        let mut errs: Vec<Option<RuntimeError>> = (0..q).map(|_| None).collect();
        let mut moved: Vec<u64> = (0..q).map(|v| own_len(abs(v))).collect();
        let mut inbox: Vec<Option<Inflight>> = (0..q).map(|_| None).collect();
        // Children have higher virtual indices, so one descending pass
        // sees every child's send before its parent consumes it.
        for vi in (0..q).rev() {
            if st[vi] != PState::Active {
                continue;
            }
            for &(_, child_vi) in collective::binomial_children(vi, q).iter().rev() {
                match st[child_vi] {
                    PState::Hole | PState::Starved => {}
                    PState::Failed => {
                        errs[vi] = Some(self.starve(op, abs(vi)));
                        st[vi] = PState::Starved;
                        break;
                    }
                    PState::Active => {
                        let m = inbox[child_vi].take().expect("active child sent");
                        self.deliver(abs(vi), m.stamp, m.delay);
                        moved[vi] += m.msg_len;
                        let kids = std::mem::take(&mut members_of[child_vi]);
                        members_of[vi].extend(kids);
                        let (c, s) = (cnt[child_vi], sum[child_vi]);
                        cnt[vi] += c;
                        sum[vi] += s;
                    }
                }
            }
            if st[vi] != PState::Active || vi == 0 {
                continue;
            }
            let parent = collective::binomial_parent(vi).expect("vi > 0 has a parent");
            let msg_len = 8 + size as u64 + 8 * cnt[vi] + sum[vi];
            moved[vi] += msg_len;
            match self.send_eval(op, abs(vi), abs(parent)) {
                SendFate::Delivered { stamp, delay } => {
                    inbox[vi] = Some(Inflight {
                        present: true,
                        stamp,
                        delay,
                        msg_len,
                    });
                }
                SendFate::DeadDst => {}
                SendFate::Exhausted(e) => {
                    st[vi] = PState::Failed;
                    errs[vi] = Some(e);
                }
            }
        }
        for vi in 0..q {
            let r = abs(vi);
            match st[vi] {
                PState::Hole => {}
                PState::Active => {
                    if vi == 0 {
                        let mut slots: Slots = vec![None; size];
                        for &m in &members_of[0] {
                            slots[m] = own[m].clone();
                        }
                        let lens_by_vi: Vec<u64> = (0..q)
                            .map(|v| slots[abs(v)].as_ref().map_or(0, |b| b.len() as u64))
                            .collect();
                        self.pending_charge =
                            Some(charge_rounds(&collective::gatherv_rounds(
                                size, &live, vroot, &lens_by_vi,
                            )));
                        phase[r] = Some(Ok((Some(slots), moved[0])));
                    } else {
                        phase[r] = Some(Ok((None, moved[vi])));
                    }
                }
                PState::Failed | PState::Starved => {
                    phase[r] = Some(Err(errs[vi].take().expect("failure recorded")));
                }
            }
        }
        phase
    }

    /// Broadcast (mirror of [`crate::Communicator::bcast`] with the
    /// root's value supplied): every surviving rank decodes the
    /// root's payload; a rank the payload never reached errs
    /// `RankDead { rank: root }`.
    pub fn bcast<T: Wire>(&mut self, root: usize, value: &T) -> RankResults<T> {
        const OP: &str = "bcast";
        let mut out: RankResults<T> = blanks(self.size);
        if self.reject_invalid_root(OP, root, &mut out) {
            return out;
        }
        let Some((members, in_cohort)) = self.collective_prologue(OP, &mut out) else {
            return out;
        };
        let resolved = self.policy.bcast.resolve_rooted(self.size);
        let bytes = value.to_bytes();
        let phase: PhaseResults<T> = match resolved {
            Resolved::Hub => self.bcast_hub_phase(OP, root, &bytes, &in_cohort),
            Resolved::Ring | Resolved::Tree => self.bcast_tree_phase(OP, root, &bytes, &in_cohort),
        };
        let gen = self.close_cohort(&members);
        let rounds = self.rooted_rounds(resolved);
        self.collective_epilogue(
            OP,
            root as i64,
            resolved.name(),
            rounds,
            gen,
            &members,
            phase,
            &mut out,
        );
        out
    }

    /// Hub broadcast mirror: the root fans the raw payload out to
    /// every live rank.
    fn bcast_hub_phase<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        bytes: &[u8],
        in_cohort: &[bool],
    ) -> PhaseResults<T> {
        let size = self.size;
        let mut phase: PhaseResults<T> = blanks(size);
        if self.dead[root] {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: root }));
                }
            }
            return phase;
        }
        let live = self.agreed_live();
        let blob_len = bytes.len() as u64;
        let mut root_err: Option<RuntimeError> = None;
        let mut delivered = vec![false; size];
        for &dst in &live {
            if dst == root || self.dead[dst] {
                continue;
            }
            match self.send_eval(op, root, dst) {
                SendFate::Delivered { stamp, delay } => {
                    self.deliver(dst, stamp, delay);
                    delivered[dst] = true;
                }
                SendFate::DeadDst => {}
                SendFate::Exhausted(e) => {
                    root_err = Some(e);
                    break;
                }
            }
        }
        match root_err {
            Some(e) => phase[root] = Some(Err(e)),
            None => {
                let lens = vec![blob_len; live.len()];
                let rounds = vec![collective::star_scatter_round(&live, root, &lens)];
                self.pending_charge = Some(charge_rounds(&rounds));
                phase[root] = Some(match decode_as::<T>(op, bytes) {
                    Ok(v) => Ok((v, blob_len)),
                    Err(e) => Err(e),
                });
            }
        }
        for r in 0..size {
            if r == root || !in_cohort[r] || phase[r].is_some() {
                continue;
            }
            if delivered[r] {
                phase[r] = Some(match decode_as::<T>(op, bytes) {
                    Ok(v) => Ok((v, blob_len)),
                    Err(e) => Err(e),
                });
            } else {
                phase[r] = Some(Err(self.starve(op, r)));
            }
        }
        phase
    }

    /// Tree broadcast mirror: the framed payload flows root-outward
    /// down the binomial tree; a dead hop degrades its whole subtree
    /// to the poison (`None`) frame.
    fn bcast_tree_phase<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        bytes: &[u8],
        in_cohort: &[bool],
    ) -> PhaseResults<T> {
        let size = self.size;
        let mut phase: PhaseResults<T> = blanks(size);
        let live = self.agreed_live();
        let q = live.len();
        let Some(vroot) = live.iter().position(|&r| r == root) else {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: root }));
                }
            }
            return phase;
        };
        let abs = |v: usize| live[(v + vroot) % q];
        let blob_len = bytes.len() as u64;
        let mut inbox: Vec<TreeMail> = vec![TreeMail::Degrade; q];
        // Parents have lower virtual indices, so one ascending pass
        // sees every parent's send before its child consumes it.
        for vi in 0..q {
            let r = abs(vi);
            if !in_cohort[r] {
                continue;
            }
            let present = if vi == 0 {
                true
            } else {
                match inbox[vi] {
                    TreeMail::Got {
                        present,
                        stamp,
                        delay,
                        ..
                    } => {
                        // A broadcast rank's `moved` counts only the
                        // frame it forwards, never what it received.
                        self.deliver(r, stamp, delay);
                        present
                    }
                    TreeMail::Degrade => false,
                    TreeMail::Starve => {
                        phase[r] = Some(Err(self.starve(op, r)));
                        continue;
                    }
                }
            };
            let msg_len = framed_len(present, blob_len);
            let mut err: Option<RuntimeError> = None;
            let children = collective::binomial_children(vi, q);
            for (i, &(_, child_vi)) in children.iter().enumerate() {
                match self.send_eval(op, r, abs(child_vi)) {
                    SendFate::Delivered { stamp, delay } => {
                        inbox[child_vi] = TreeMail::Got {
                            present,
                            stamp,
                            delay,
                            msg_len,
                        };
                    }
                    SendFate::DeadDst => {}
                    SendFate::Exhausted(e) => {
                        err = Some(e);
                        for &(_, rest) in &children[i + 1..] {
                            inbox[rest] = TreeMail::Starve;
                        }
                        break;
                    }
                }
            }
            if let Some(e) = err {
                phase[r] = Some(Err(e));
                continue;
            }
            if vi == 0 {
                self.pending_charge = Some(charge_rounds(&collective::bcast_rounds(
                    &live, vroot, msg_len,
                )));
            }
            phase[r] = Some(if present {
                match decode_as::<T>(op, bytes) {
                    Ok(v) => Ok((v, msg_len)),
                    Err(e) => Err(e),
                }
            } else {
                Err(RuntimeError::RankDead { op, rank: root })
            });
        }
        phase
    }

    /// Scatter (mirror of [`crate::Communicator::scatterv`] with the
    /// root's parts supplied): rank `r` receives `parts[r]`. A
    /// wrong-arity `parts` is rejected by the root with
    /// [`RuntimeError::SizeMismatch`] while everyone else starves,
    /// exactly as the thread backend behaves.
    pub fn scatterv<T: Wire>(&mut self, root: usize, parts: &[T]) -> RankResults<T> {
        const OP: &str = "scatterv";
        let mut out: RankResults<T> = blanks(self.size);
        if self.reject_invalid_root(OP, root, &mut out) {
            return out;
        }
        let Some((members, in_cohort)) = self.collective_prologue(OP, &mut out) else {
            return out;
        };
        let resolved = self.policy.scatterv.resolve_rooted(self.size);
        let phase: PhaseResults<T> = if in_cohort[root] && parts.len() != self.size {
            // The root rejects the arity before any data moves; every
            // other cohort rank waits on it and starves.
            let mut phase: PhaseResults<T> = blanks(self.size);
            phase[root] = Some(Err(RuntimeError::SizeMismatch {
                op: OP,
                expected: self.size,
                got: parts.len(),
            }));
            for r in 0..self.size {
                if r != root && in_cohort[r] {
                    phase[r] = Some(Err(self.starve(OP, r)));
                }
            }
            phase
        } else {
            let encoded: Vec<Vec<u8>> = parts.iter().map(Wire::to_bytes).collect();
            match resolved {
                Resolved::Hub => self.scatterv_hub_phase(OP, root, &encoded, &in_cohort),
                Resolved::Ring | Resolved::Tree => {
                    self.scatterv_tree_phase(OP, root, &encoded, &in_cohort)
                }
            }
        };
        let gen = self.close_cohort(&members);
        let rounds = self.rooted_rounds(resolved);
        self.collective_epilogue(
            OP,
            root as i64,
            resolved.name(),
            rounds,
            gen,
            &members,
            phase,
            &mut out,
        );
        out
    }

    /// Hub scatter mirror: the root pushes each live rank its own
    /// encoded part.
    fn scatterv_hub_phase<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        encoded: &[Vec<u8>],
        in_cohort: &[bool],
    ) -> PhaseResults<T> {
        let size = self.size;
        let mut phase: PhaseResults<T> = blanks(size);
        if self.dead[root] {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: root }));
                }
            }
            return phase;
        }
        let live = self.agreed_live();
        let mut sent = 0u64;
        let mut root_err: Option<RuntimeError> = None;
        let mut delivered = vec![false; size];
        for &dst in &live {
            if dst == root {
                continue;
            }
            // The root counts the bytes it pushed whether or not the
            // destination survived to take them.
            sent += encoded[dst].len() as u64;
            if self.dead[dst] {
                continue;
            }
            match self.send_eval(op, root, dst) {
                SendFate::Delivered { stamp, delay } => {
                    self.deliver(dst, stamp, delay);
                    delivered[dst] = true;
                }
                SendFate::DeadDst => {}
                SendFate::Exhausted(e) => {
                    root_err = Some(e);
                    break;
                }
            }
        }
        match root_err {
            Some(e) => phase[root] = Some(Err(e)),
            None => {
                let lens: Vec<u64> = live.iter().map(|&r| encoded[r].len() as u64).collect();
                let rounds = vec![collective::star_scatter_round(&live, root, &lens)];
                self.pending_charge = Some(charge_rounds(&rounds));
                phase[root] = Some(match decode_as::<T>(op, &encoded[root]) {
                    Ok(v) => Ok((v, sent)),
                    Err(e) => Err(e),
                });
            }
        }
        for r in 0..size {
            if r == root || !in_cohort[r] || phase[r].is_some() {
                continue;
            }
            if delivered[r] {
                phase[r] = Some(match decode_as::<T>(op, &encoded[r]) {
                    Ok(v) => Ok((v, encoded[r].len() as u64)),
                    Err(e) => Err(e),
                });
            } else {
                phase[r] = Some(Err(self.starve(op, r)));
            }
        }
        phase
    }

    /// Tree scatter mirror: sub-bundles flow root-outward down the
    /// binomial tree; a dead hop poisons its whole subtree, which
    /// keeps forwarding the empty bundle so descendants degrade in
    /// one hop instead of timing out.
    fn scatterv_tree_phase<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        encoded: &[Vec<u8>],
        in_cohort: &[bool],
    ) -> PhaseResults<T> {
        let size = self.size;
        let mut phase: PhaseResults<T> = blanks(size);
        let live = self.agreed_live();
        let q = live.len();
        let Some(vroot) = live.iter().position(|&r| r == root) else {
            for r in 0..size {
                if in_cohort[r] {
                    phase[r] = Some(Err(RuntimeError::RankDead { op, rank: root }));
                }
            }
            return phase;
        };
        let abs = |v: usize| live[(v + vroot) % q];
        // Subtree (slot count, payload bytes) per virtual index gives
        // every good bundle's encoded length in closed form; children
        // have higher vi, so one descending pass suffices.
        let mut cnt: Vec<u64> = vec![1; q];
        let mut sum: Vec<u64> = (0..q)
            .map(|v| encoded.get(abs(v)).map_or(0, |b| b.len() as u64))
            .collect();
        for vi in (0..q).rev() {
            for (_, c) in collective::binomial_children(vi, q) {
                let (ac, asum) = (cnt[c], sum[c]);
                cnt[vi] += ac;
                sum[vi] += asum;
            }
        }
        let mut inbox: Vec<TreeMail> = vec![TreeMail::Degrade; q];
        for vi in 0..q {
            let r = abs(vi);
            if !in_cohort[r] {
                continue;
            }
            let mut moved = 0u64;
            let good = if vi == 0 {
                // The root deposits at bundle-obtain time, before its
                // first child send (thread mirror).
                let lens_by_vi: Vec<u64> =
                    (0..q).map(|v| encoded[abs(v)].len() as u64).collect();
                self.pending_charge = Some(charge_rounds(&collective::scatterv_rounds(
                    size, &live, vroot, &lens_by_vi,
                )));
                true
            } else {
                match inbox[vi] {
                    TreeMail::Got {
                        present,
                        stamp,
                        delay,
                        msg_len,
                    } => {
                        self.deliver(r, stamp, delay);
                        moved += msg_len;
                        present
                    }
                    TreeMail::Degrade => false,
                    TreeMail::Starve => {
                        phase[r] = Some(Err(self.starve(op, r)));
                        continue;
                    }
                }
            };
            let mut err: Option<RuntimeError> = None;
            let children = collective::binomial_children(vi, q);
            for (i, &(_, child_vi)) in children.iter().enumerate() {
                let msg_len = if good {
                    8 + size as u64 + 8 * cnt[child_vi] + sum[child_vi]
                } else {
                    8 + size as u64
                };
                moved += msg_len;
                match self.send_eval(op, r, abs(child_vi)) {
                    SendFate::Delivered { stamp, delay } => {
                        inbox[child_vi] = TreeMail::Got {
                            present: good,
                            stamp,
                            delay,
                            msg_len,
                        };
                    }
                    SendFate::DeadDst => {}
                    SendFate::Exhausted(e) => {
                        err = Some(e);
                        for &(_, rest) in &children[i + 1..] {
                            inbox[rest] = TreeMail::Starve;
                        }
                        break;
                    }
                }
            }
            if let Some(e) = err {
                phase[r] = Some(Err(e));
                continue;
            }
            phase[r] = Some(if good {
                match decode_as::<T>(op, &encoded[r]) {
                    Ok(v) => Ok((v, moved)),
                    Err(e) => Err(e),
                }
            } else {
                Err(RuntimeError::RankDead { op, rank: root })
            });
        }
        phase
    }
}

/// What one rooted-tree rank finds in its parent slot when its turn
/// comes.
#[derive(Clone, Copy)]
enum TreeMail {
    /// Delivered frame/bundle from the parent.
    Got {
        /// Whether the payload survived the root-to-here path.
        present: bool,
        /// Sender's Lamport stamp at send time.
        stamp: u64,
        /// Injected delivery delay, seconds.
        delay: f64,
        /// Framed message length, bytes.
        msg_len: u64,
    },
    /// The parent died before sending: degrade to the poison frame.
    Degrade,
    /// The parent is alive but its program ended in an error: the
    /// waiter hits the deadline and fail-stops.
    Starve,
}

/// Strict decode of one slot vector in ascending rank order: the
/// first hole is a [`RuntimeError::RankDead`], the first undecodable
/// payload a [`RuntimeError::Decode`] — whichever comes first (thread
/// backend `allgatherv` mirror).
fn strict_slots<T: Wire>(op: &'static str, slots: &Slots) -> Result<Vec<T>, RuntimeError> {
    let mut values = Vec::with_capacity(slots.len());
    for (rank, slot) in slots.iter().enumerate() {
        match slot {
            Some(bytes) => values.push(decode_as::<T>(op, bytes)?),
            None => return Err(RuntimeError::RankDead { op, rank }),
        }
    }
    Ok(values)
}

/// Hole-tolerant decode of one slot vector (thread backend
/// `allgatherv_available` mirror).
fn available_slots<T: Wire>(
    op: &'static str,
    slots: &Slots,
) -> Result<Vec<Option<T>>, RuntimeError> {
    let mut values = Vec::with_capacity(slots.len());
    for slot in slots {
        values.push(match slot {
            Some(bytes) => Some(decode_as::<T>(op, bytes)?),
            None => None,
        });
    }
    Ok(values)
}

/// Folds gathered raw contributions left-associated, in ascending
/// rank order, skipping `None` slots — the pinned reduction order of
/// the thread backend's `fold_slots`.
fn fold_slots(op: &'static str, slots: &Slots, rop: ReduceOp) -> Result<f64, RuntimeError> {
    let mut acc: Option<f64> = None;
    for slot in slots.iter().flatten() {
        let x = decode_as::<f64>(op, slot)?;
        acc = Some(match acc {
            None => x,
            Some(a) => rop.fold(a, x),
        });
    }
    acc.ok_or(RuntimeError::NoContributions { op })
}
