//! The distributed balancing loop on the event engine: the exact
//! program from [`crate::executor`] — *partition → measure →
//! rebalance* — re-expressed as lockstep per-rank state machines over
//! [`EventSim`] instead of N rank threads.
//!
//! Every phase runs all live ranks in ascending rank order (the
//! deterministic serialisation of the thread backend's racy
//! interleaving, see `docs/RUNTIME.md` §9), so on a fault-free plan
//! the absorbed observations, the [`DynamicStep`]s, the final sizes
//! and the per-rank virtual clocks are bit-identical to
//! [`crate::run_to_balance_distributed_with`] on the thread-backed
//! sim — and the loop scales to `10⁴`–`10⁶` ranks because a rank is a
//! few vector slots, not an OS thread.

use std::sync::Arc;

use fupermod_core::dynamic::{DynamicContext, DynamicStep};
use fupermod_core::trace::{TraceEvent, TraceSink};
use fupermod_core::{CoreError, Point};

use crate::error::RuntimeError;
use crate::executor::{BalanceOutcome, OverlapMode};
use crate::fault::FaultPlan;

use super::engine::{EventSim, RankResults, RecvTicket};

fn app_err(e: CoreError) -> RuntimeError {
    RuntimeError::App(e.to_string())
}

/// Runs the dynamic partitioning loop on the event engine.
///
/// The mirror of [`crate::run_to_balance_distributed_with`] for
/// [`crate::SimEngine::Event`]: same arguments, same
/// [`BalanceOutcome`], same error contract — rank 0's failure is
/// returned, non-root failures land in
/// [`BalanceOutcome::rank_errors`].
///
/// # Errors
///
/// Rank 0's terminal error, or [`RuntimeError::App`] when `config`
/// has no sim topology (the event engine has no wall clock to fall
/// back on).
///
/// # Panics
///
/// Panics if the context built by `make_ctx` does not have `size`
/// processes.
pub fn run_event_balance<F, M>(
    config: &crate::comm::RuntimeConfig,
    size: usize,
    make_ctx: F,
    measure: M,
    max_steps: usize,
    mode: OverlapMode,
) -> Result<BalanceOutcome, RuntimeError>
where
    F: FnOnce() -> DynamicContext,
    M: Fn(usize, u64) -> Result<Point, CoreError>,
{
    let plan = config.plan_ref().clone();
    let sink = config.sink_ref().clone();
    let mut sim = EventSim::from_config(config, size)?;
    let mut ctx = make_ctx().with_trace(sink.clone());
    assert_eq!(
        ctx.dist().sizes().len(),
        size,
        "context size must match communicator size"
    );
    let mut errors: Vec<Option<RuntimeError>> = (0..size).map(|_| None).collect();
    let steps = match mode {
        OverlapMode::Blocking => blocking_loop(
            &mut sim,
            &mut ctx,
            &measure,
            &plan,
            &sink,
            max_steps,
            &mut errors,
        ),
        OverlapMode::Overlapped => overlapped_loop(
            &mut sim,
            &mut ctx,
            &measure,
            &plan,
            &sink,
            max_steps,
            &mut errors,
        ),
    };
    if let Some(e) = errors[0].take() {
        return Err(e);
    }
    Ok(BalanceOutcome {
        steps,
        final_sizes: ctx.dist().sizes(),
        dead_ranks: sim.dead_ranks(),
        rank_errors: errors,
        virtual_time: Some(sim.max_time()),
    })
}

/// Folds a collective's per-rank outcomes: `Ok` payloads go to
/// `on_ok`, the first error each rank hits is kept (the engine has
/// already halted the erroring rank's program).
fn harvest<T>(
    res: RankResults<T>,
    mut on_ok: impl FnMut(usize, T),
    errors: &mut [Option<RuntimeError>],
) {
    for (rank, slot) in res.into_iter().enumerate() {
        match slot {
            None => {}
            Some(Ok(v)) => on_ok(rank, v),
            Some(Err(e)) => record(errors, rank, e),
        }
    }
}

fn record(errors: &mut [Option<RuntimeError>], rank: usize, e: RuntimeError) {
    if errors[rank].is_none() {
        errors[rank] = Some(e);
    }
}

/// Measures one rank's share, applying the straggler compute factor —
/// the mirror of the executor's `measure_share`.
fn measure_share<M>(
    rank: usize,
    d: u64,
    measure: &M,
    factor: f64,
    sink: &Arc<dyn TraceSink>,
) -> Result<Point, RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError>,
{
    let mut point = measure(rank, d.max(1)).map_err(app_err)?;
    if factor != 1.0 {
        let extra = point.t * (factor - 1.0);
        point.t *= factor;
        fupermod_core::telemetry::record_fault("straggler");
        sink.record(&TraceEvent::Fault {
            rank,
            kind: "straggler".to_owned(),
            peer: -1,
            attempt: 0,
            seconds: extra,
        });
    }
    Ok(point)
}

/// Every live rank measures its share, ascending (straggler fault
/// events tick in rank order). A measurement failure halts that
/// rank's program, exactly as the rank closure returning `Err` does
/// on the thread backend.
fn measure_phase<M>(
    sim: &mut EventSim,
    measure: &M,
    plan: &FaultPlan,
    sink: &Arc<dyn TraceSink>,
    my_d: &[u64],
    errors: &mut [Option<RuntimeError>],
) -> Vec<Point>
where
    M: Fn(usize, u64) -> Result<Point, CoreError>,
{
    let mut points = Vec::with_capacity(my_d.len());
    for (rank, &d) in my_d.iter().enumerate() {
        if !sim.is_running(rank) {
            // Placeholder: a halted rank is not in any cohort, so its
            // slot is never read.
            points.push(Point::single(0, 0.0));
            continue;
        }
        match measure_share(rank, d, measure, plan.straggler_factor(rank), sink) {
            Ok(p) => points.push(p),
            Err(e) => {
                record(errors, rank, e);
                sim.halt(rank);
                points.push(Point::single(0, 0.0));
            }
        }
    }
    points
}

/// Rank 0 absorbs the gathered observations: dead ranks are
/// deactivated (their load repartitioned across survivors, with a
/// `degraded` fault event), then the context repartitions.
fn absorb_on_root(
    sim: &mut EventSim,
    ctx: &mut DynamicContext,
    slots: &[Option<Point>],
    sink: &Arc<dyn TraceSink>,
    steps: &mut Vec<DynamicStep>,
    errors: &mut [Option<RuntimeError>],
) -> bool {
    let mut observed = Vec::with_capacity(slots.len());
    for (rank, slot) in slots.iter().enumerate() {
        match slot {
            Some(p) => observed.push(*p),
            None => {
                // Rank died: repartition its load across survivors.
                if ctx.active()[rank] {
                    ctx.deactivate(rank);
                    fupermod_core::telemetry::record_fault("degraded");
                    sink.record(&TraceEvent::Fault {
                        rank: 0,
                        kind: "degraded".to_owned(),
                        peer: rank as i64,
                        attempt: 0,
                        seconds: 0.0,
                    });
                }
                observed.push(Point::single(0, 0.0));
            }
        }
    }
    match ctx.absorb_observed(observed) {
        Ok(step) => {
            let converged = step.converged;
            steps.push(step);
            converged
        }
        Err(e) => {
            record(errors, 0, app_err(e));
            sim.halt(0);
            false
        }
    }
}

/// The blocking loop: `scatterv` shares, measure, `gather_available`
/// onto rank 0, absorb, `scatterv` + `bcast` the convergence flag —
/// the collective sequence of the executor's `root_loop` and
/// `worker_loop`, run for all ranks at once.
fn blocking_loop<M>(
    sim: &mut EventSim,
    ctx: &mut DynamicContext,
    measure: &M,
    plan: &FaultPlan,
    sink: &Arc<dyn TraceSink>,
    max_steps: usize,
    errors: &mut [Option<RuntimeError>],
) -> Vec<DynamicStep>
where
    M: Fn(usize, u64) -> Result<Point, CoreError>,
{
    let size = sim.size();
    let mut steps = Vec::new();
    let mut my_d: Vec<u64> = vec![0; size];
    // Distribute the initial shares.
    let shares = ctx.dist().sizes();
    harvest(sim.scatterv(0, &shares), |r, d| my_d[r] = d, errors);
    for _ in 0..max_steps {
        if (0..size).all(|r| !sim.is_running(r)) {
            break;
        }
        let points = measure_phase(sim, measure, plan, sink, &my_d, errors);
        let mut gathered: Option<Arc<Vec<Option<Point>>>> = None;
        harvest(
            sim.gather_available(0, &points),
            |r, slots| {
                if r == 0 {
                    gathered = slots;
                }
            },
            errors,
        );
        let converged = match gathered {
            Some(slots) => absorb_on_root(sim, ctx, &slots, sink, &mut steps, errors),
            None => false,
        };
        // Redistribute and broadcast convergence — both run even on
        // the converged iteration, mirroring the thread loop.
        let shares = ctx.dist().sizes();
        harvest(sim.scatterv(0, &shares), |r, d| my_d[r] = d, errors);
        harvest(sim.bcast(0, &converged), |_, _| {}, errors);
        if converged {
            break;
        }
    }
    steps
}

/// Sends `[share, converged]` from rank 0 to a worker, tolerating its
/// death — the mirror of the executor's `send_share_tolerant`.
fn send_share_event(
    sim: &mut EventSim,
    dst: usize,
    share: u64,
    converged: bool,
) -> Result<(), RuntimeError> {
    match sim.isend(0, dst, &vec![share, u64::from(converged)]) {
        Ok(ticket) => {
            sim.isend_wait(ticket);
            Ok(())
        }
        Err(RuntimeError::RankDead { rank, .. }) if rank == dst => Ok(()),
        Err(e) => Err(e),
    }
}

/// Receives and decodes a `[share, converged]` message on a worker.
fn recv_share_event(sim: &mut EventSim, rank: usize) -> Result<(u64, bool), RuntimeError> {
    let ticket = sim.irecv_post(rank, 0)?;
    let msg: Vec<u64> = sim.irecv_wait(ticket)?;
    match msg.as_slice() {
        [share, converged] => Ok((*share, *converged != 0)),
        _ => Err(RuntimeError::Decode {
            what: "share",
            detail: format!("share message has {} words, expected 2", msg.len()),
        }),
    }
}

/// The overlapped loop: rank 0 posts the measurement `irecv`s before
/// measuring its own share and pushes refined shares with eager
/// `isend`s; workers push points back with `isend` — the request
/// sequence of the executor's `root_loop_overlapped` and
/// `worker_loop_overlapped`. Phase order within an iteration (root
/// posts → measurements ascending → worker sends → root waits
/// ascending → absorb → share sends → worker receives) preserves the
/// thread backend's data dependencies; virtual-clock overlap comes
/// from the post-time snapshots, not from host concurrency.
fn overlapped_loop<M>(
    sim: &mut EventSim,
    ctx: &mut DynamicContext,
    measure: &M,
    plan: &FaultPlan,
    sink: &Arc<dyn TraceSink>,
    max_steps: usize,
    errors: &mut [Option<RuntimeError>],
) -> Vec<DynamicStep>
where
    M: Fn(usize, u64) -> Result<Point, CoreError>,
{
    let size = sim.size();
    let mut steps = Vec::new();
    let mut my_d: Vec<u64> = vec![0; size];
    // Distribute the initial shares.
    let sizes = ctx.dist().sizes();
    my_d[0] = sizes[0];
    for (dst, &share) in sizes.iter().enumerate().skip(1) {
        if !sim.is_running(0) {
            break;
        }
        if let Err(e) = send_share_event(sim, dst, share, false) {
            record(errors, 0, e);
            sim.halt(0);
        }
    }
    for (rank, slot) in my_d.iter_mut().enumerate().skip(1) {
        if !sim.is_running(rank) {
            continue;
        }
        match recv_share_event(sim, rank) {
            Ok((d, _)) => *slot = d,
            Err(e) => {
                record(errors, rank, e);
                sim.halt(rank);
            }
        }
    }
    for _ in 0..max_steps {
        if (0..size).all(|r| !sim.is_running(r)) {
            break;
        }
        // Rank 0 posts the measurement receives first: worker points
        // are in flight under its own measurement.
        let mut tickets: Vec<Option<RecvTicket>> = Vec::with_capacity(size.saturating_sub(1));
        for src in 1..size {
            if !sim.is_running(0) {
                tickets.push(None);
                continue;
            }
            match sim.irecv_post(0, src) {
                Ok(t) => tickets.push(Some(t)),
                Err(e) => {
                    record(errors, 0, e);
                    sim.halt(0);
                    tickets.push(None);
                }
            }
        }
        // Measurements, ascending rank order; workers push their
        // points to rank 0 as soon as they have them.
        let points = measure_phase(sim, measure, plan, sink, &my_d, errors);
        for (rank, point) in points.iter().enumerate().skip(1) {
            if !sim.is_running(rank) {
                continue;
            }
            let sent = sim
                .isend(rank, 0, point)
                .map(|ticket| sim.isend_wait(ticket));
            if let Err(e) = sent {
                record(errors, rank, e);
                sim.halt(rank);
            }
        }
        // Rank 0 completes its receives in ascending rank order — the
        // same order the blocking gather absorbs in.
        let mut slots: Vec<Option<Point>> = Vec::with_capacity(size);
        if sim.is_running(0) {
            slots.push(Some(points[0]));
        }
        for (i, ticket) in tickets.into_iter().enumerate() {
            if !sim.is_running(0) {
                break;
            }
            let src = i + 1;
            let slot = match ticket {
                None => None,
                Some(ticket) => match sim.irecv_wait::<Point>(ticket) {
                    Ok(point) => Some(point),
                    Err(RuntimeError::RankDead { rank, .. }) if rank == src => None,
                    Err(e) => {
                        record(errors, 0, e);
                        sim.halt(0);
                        break;
                    }
                },
            };
            slots.push(slot);
        }
        let converged = if sim.is_running(0) && slots.len() == size {
            absorb_on_root(sim, ctx, &slots, sink, &mut steps, errors)
        } else {
            false
        };
        // Push the refined shares (tolerating worker death), then the
        // workers pick them up.
        let sizes = ctx.dist().sizes();
        my_d[0] = sizes[0];
        for (dst, &share) in sizes.iter().enumerate().skip(1) {
            if !sim.is_running(0) {
                break;
            }
            if let Err(e) = send_share_event(sim, dst, share, converged) {
                record(errors, 0, e);
                sim.halt(0);
            }
        }
        for (rank, slot) in my_d.iter_mut().enumerate().skip(1) {
            if !sim.is_running(rank) {
                continue;
            }
            match recv_share_event(sim, rank) {
                Ok((d, _)) => *slot = d,
                Err(e) => {
                    record(errors, rank, e);
                    sim.halt(rank);
                }
            }
        }
        if converged {
            break;
        }
    }
    steps
}
