//! The distributed dynamic-balancing executor: the paper's
//! `fupermod_dynamic` loop re-implemented as N communicating rank
//! closures.
//!
//! Each iteration follows the paper's *partition → measure →
//! rebalance* cycle, but the measurement happens **on the ranks**:
//!
//! 1. rank 0 `scatterv`s the current distribution (each rank learns
//!    its share),
//! 2. every rank benchmarks its own share locally (the `measure`
//!    closure),
//! 3. the measured [`Point`]s are gathered onto rank 0
//!    ([`Communicator::gather_available`], so a dead rank yields a
//!    gap instead of an error),
//! 4. rank 0 absorbs the observations into the partial models
//!    ([`DynamicContext::absorb_observed`]), re-partitions, and
//!    `scatterv`s the new shares plus a broadcast convergence flag.
//!
//! On a fault-free plan this is **observation-for-observation
//! identical** to the serial [`DynamicContext::run_to_balance`]: the
//! same model points are absorbed in the same rank order, so the
//! final [`Distribution`](fupermod_core::partition::Distribution) is
//! bit-identical (verified by an integration test). Under faults the
//! loop degrades gracefully: a straggler's inflated times shift load
//! away from it, and a dead rank is deactivated
//! ([`DynamicContext::deactivate`]) so its share is repartitioned
//! across the survivors, with `fault` trace events documenting every
//! injection.

use std::sync::Mutex;

use fupermod_core::dynamic::{DynamicContext, DynamicStep};
use fupermod_core::trace::TraceEvent;
use fupermod_core::{CoreError, Point};

use crate::comm::request::{RecvRequest, Request};
use crate::comm::{run_ranks, Communicator, RuntimeConfig, ThreadedComm};
use crate::error::RuntimeError;

/// How the balancing loop's redistribution phase communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapMode {
    /// Blocking collectives: `scatterv` the shares, `gather_available`
    /// the measurements, `bcast` the convergence flag — three closing
    /// barriers per iteration.
    #[default]
    Blocking,
    /// Nonblocking requests: rank 0 posts `irecv`s for the workers'
    /// measurements *before* measuring its own share (their points
    /// arrive while it computes) and pushes refined shares with
    /// `isend` — redistribution stays in flight under rank 0's own
    /// measurement, and no iteration crosses a barrier. On fault-free
    /// plans the absorbed observations are identical to
    /// [`OverlapMode::Blocking`] point for point, so the steps and the
    /// final distribution are bit-identical.
    Overlapped,
}

/// Result of a distributed balancing run.
#[derive(Debug)]
pub struct BalanceOutcome {
    /// One entry per dynamic iteration, as produced on rank 0 —
    /// identical to the serial loop's steps on a fault-free plan.
    pub steps: Vec<DynamicStep>,
    /// The final distribution's sizes (rank 0's view).
    pub final_sizes: Vec<u64>,
    /// Ranks that died during the run, ascending.
    pub dead_ranks: Vec<usize>,
    /// Per-rank terminal errors (`None` for ranks that finished
    /// cleanly). Dead and timed-out ranks record their fail-stop
    /// error here.
    pub rank_errors: Vec<Option<RuntimeError>>,
    /// Virtual makespan of the run on the sim backend (`None` on the
    /// threaded backend) — the deterministic cost the overlap
    /// benchmarks compare across [`OverlapMode`]s.
    pub virtual_time: Option<f64>,
}

impl BalanceOutcome {
    /// Whether the final step reached the balance tolerance.
    pub fn converged(&self) -> bool {
        self.steps.last().is_some_and(|s| s.converged)
    }
}

fn app_err(e: CoreError) -> RuntimeError {
    RuntimeError::App(e.to_string())
}

/// Runs the dynamic partitioning loop distributed over `size` ranks.
///
/// * `config` selects the backend (thread or sim), fault plan, and
///   trace sink.
/// * `make_ctx` builds the [`DynamicContext`] — it is invoked once,
///   on rank 0's thread (partial models and the partitioner live
///   only there, exactly like the paper's root process).
/// * `measure(rank, d)` benchmarks `d` units on `rank`; it runs
///   concurrently on the rank threads and must be deterministic per
///   `(rank, d)` for reproducible runs.
/// * `max_steps` bounds the number of iterations.
///
/// # Errors
///
/// Returns rank 0's failure, if any: measurement/model errors
/// ([`RuntimeError::App`]) or communication failures. Non-root rank
/// failures are reported in [`BalanceOutcome::rank_errors`].
///
/// # Panics
///
/// Panics if the context built by `make_ctx` does not have `size`
/// processes, or if a rank thread panics.
pub fn run_to_balance_distributed<F, M>(
    config: RuntimeConfig,
    size: usize,
    make_ctx: F,
    measure: M,
    max_steps: usize,
) -> Result<BalanceOutcome, RuntimeError>
where
    F: FnOnce() -> DynamicContext + Send,
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    run_to_balance_distributed_with(config, size, make_ctx, measure, max_steps, OverlapMode::default())
}

/// [`run_to_balance_distributed`] with an explicit [`OverlapMode`]:
/// `Blocking` is the collective path, `Overlapped` pipelines the
/// measurement gathers and share redistribution with nonblocking
/// requests. Both modes produce bit-identical steps and final sizes
/// on fault-free plans.
///
/// # Errors
///
/// Exactly those of [`run_to_balance_distributed`].
///
/// # Panics
///
/// Exactly those of [`run_to_balance_distributed`].
pub fn run_to_balance_distributed_with<F, M>(
    config: RuntimeConfig,
    size: usize,
    make_ctx: F,
    measure: M,
    max_steps: usize,
    mode: OverlapMode,
) -> Result<BalanceOutcome, RuntimeError>
where
    F: FnOnce() -> DynamicContext + Send,
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    if config.engine() == crate::sim::SimEngine::Event {
        // The event engine runs the same per-rank programs as
        // resumable state machines on one thread — no rank threads,
        // no comms to build.
        return crate::sim::balance::run_event_balance(
            &config, size, make_ctx, measure, max_steps, mode,
        );
    }
    let plan = config.plan_ref().clone();
    let sink = config.sink_ref().clone();
    let (comms, handle) = config.build_with_handle(size);
    // `make_ctx` is FnOnce but the rank closure is shared: rank 0
    // takes it out of the slot.
    let ctx_slot = Mutex::new(Some(make_ctx));

    let results = run_ranks(comms, |mut comm: ThreadedComm| {
        let rank = comm.rank();
        let factor = plan.straggler_factor(rank);
        let ctx = (rank == 0).then(|| {
            let make = ctx_slot
                .lock()
                .expect("ctx slot poisoned")
                .take()
                .expect("make_ctx taken once");
            make()
        });
        run_balance_rank(&mut comm, ctx, &measure, max_steps, mode, factor, &sink)
            .map(|r| r.unwrap_or_default())
    });

    let mut rank_errors: Vec<Option<RuntimeError>> = Vec::with_capacity(size);
    let mut root_result: Option<(Vec<DynamicStep>, Vec<u64>)> = None;
    for (rank, result) in results.into_iter().enumerate() {
        match result {
            Ok(payload) => {
                if rank == 0 {
                    root_result = Some(payload);
                }
                rank_errors.push(None);
            }
            Err(e) => {
                if rank == 0 {
                    return Err(e);
                }
                rank_errors.push(Some(e));
            }
        }
    }
    let (steps, final_sizes) = root_result.expect("rank 0 returned Ok");
    Ok(BalanceOutcome {
        steps,
        final_sizes,
        dead_ranks: handle.dead_ranks(),
        rank_errors,
        virtual_time: handle.virtual_time(),
    })
}

/// One rank's whole side of the distributed balancing loop — the
/// per-rank entry point shared by [`run_to_balance_distributed_with`]
/// (which multiplexes all ranks as threads of this process) and the
/// multi-process TCP path (where each OS process drives exactly one
/// rank over [`crate::net::connect`] and calls this directly).
///
/// * `ctx` must be `Some` exactly on rank 0 (the models and the
///   partitioner live only there); workers pass `None`.
/// * `straggler_factor` is this rank's compute inflation
///   ([`crate::fault::FaultPlan::straggler_factor`]) — under TCP each
///   process evaluates its own plan, so the factor is passed in
///   rather than read from a shared plan.
///
/// Returns `Some((steps, final_sizes))` on rank 0, `None` on workers.
///
/// # Errors
///
/// This rank's failure: measurement/model errors
/// ([`RuntimeError::App`]) or communication failures.
///
/// # Panics
///
/// Panics if `ctx` presence does not match the rank, or if rank 0's
/// context does not have `comm.size()` processes.
#[allow(clippy::type_complexity)]
pub fn run_balance_rank<M>(
    comm: &mut ThreadedComm,
    ctx: Option<DynamicContext>,
    measure: &M,
    max_steps: usize,
    mode: OverlapMode,
    straggler_factor: f64,
    sink: &std::sync::Arc<dyn fupermod_core::trace::TraceSink>,
) -> Result<Option<(Vec<DynamicStep>, Vec<u64>)>, RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    let rank = comm.rank();
    let size = comm.size();
    if rank == 0 {
        // Route the context's partition_step/dynamic_converged events
        // into the run's trace sink, so a traced distributed run
        // records its full dynamic history (the report tool rebuilds
        // the imbalance table from it).
        let mut ctx = ctx.expect("rank 0 owns the context").with_trace(sink.clone());
        assert_eq!(
            ctx.dist().sizes().len(),
            size,
            "context size must match communicator size"
        );
        match mode {
            OverlapMode::Blocking => {
                root_loop(comm, &mut ctx, measure, straggler_factor, max_steps, sink)
            }
            OverlapMode::Overlapped => {
                root_loop_overlapped(comm, &mut ctx, measure, straggler_factor, max_steps, sink)
            }
        }
        .map(|steps| Some((steps, ctx.dist().sizes())))
    } else {
        assert!(ctx.is_none(), "only rank 0 owns the context");
        match mode {
            OverlapMode::Blocking => {
                worker_loop(comm, measure, straggler_factor, max_steps, sink)
            }
            OverlapMode::Overlapped => {
                worker_loop_overlapped(comm, measure, straggler_factor, max_steps, sink)
            }
        }
        .map(|()| None)
    }
}

/// Measures this rank's share, applying the straggler compute factor.
fn measure_share<M>(
    rank: usize,
    d: u64,
    measure: &M,
    factor: f64,
    sink: &std::sync::Arc<dyn fupermod_core::trace::TraceSink>,
) -> Result<Point, RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    let mut point = measure(rank, d.max(1)).map_err(app_err)?;
    if factor != 1.0 {
        let extra = point.t * (factor - 1.0);
        point.t *= factor;
        fupermod_core::telemetry::record_fault("straggler");
        sink.record(&TraceEvent::Fault {
            rank,
            kind: "straggler".to_owned(),
            peer: -1,
            attempt: 0,
            seconds: extra,
        });
    }
    Ok(point)
}

fn root_loop<M>(
    comm: &mut ThreadedComm,
    ctx: &mut DynamicContext,
    measure: &M,
    factor: f64,
    max_steps: usize,
    sink: &std::sync::Arc<dyn fupermod_core::trace::TraceSink>,
) -> Result<Vec<DynamicStep>, RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    let mut steps = Vec::new();
    // Distribute the initial shares.
    let mut my_d = comm.scatterv(0, Some(&ctx.dist().sizes()))?;
    for _ in 0..max_steps {
        let point = measure_share(comm.rank(), my_d, measure, factor, sink)?;
        let gathered = comm
            .gather_available(0, &point)?
            .expect("root receives the gather");
        let mut observed = Vec::with_capacity(gathered.len());
        for (rank, slot) in gathered.into_iter().enumerate() {
            match slot {
                Some(p) => observed.push(p),
                None => {
                    // Rank died: repartition its load across survivors.
                    if ctx.active()[rank] {
                        ctx.deactivate(rank);
                        fupermod_core::telemetry::record_fault("degraded");
                        sink.record(&TraceEvent::Fault {
                            rank: comm.rank(),
                            kind: "degraded".to_owned(),
                            peer: rank as i64,
                            attempt: 0,
                            seconds: 0.0,
                        });
                    }
                    observed.push(Point::single(0, 0.0));
                }
            }
        }
        let step = ctx.absorb_observed(observed).map_err(app_err)?;
        let converged = step.converged;
        steps.push(step);
        my_d = comm.scatterv(0, Some(&ctx.dist().sizes()))?;
        comm.bcast(0, Some(&converged))?;
        if converged {
            break;
        }
    }
    Ok(steps)
}

fn worker_loop<M>(
    comm: &mut ThreadedComm,
    measure: &M,
    factor: f64,
    max_steps: usize,
    sink: &std::sync::Arc<dyn fupermod_core::trace::TraceSink>,
) -> Result<(), RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    let mut my_d = comm.scatterv::<u64>(0, None)?;
    for _ in 0..max_steps {
        let point = measure_share(comm.rank(), my_d, measure, factor, sink)?;
        comm.gather_available(0, &point)?;
        my_d = comm.scatterv::<u64>(0, None)?;
        let converged = comm.bcast::<bool>(0, None)?;
        if converged {
            break;
        }
    }
    Ok(())
}

/// Sends `[share, converged]` to a worker, tolerating its death (the
/// survivors keep balancing over the remaining ranks).
fn send_share_tolerant(
    comm: &ThreadedComm,
    dst: usize,
    share: u64,
    converged: bool,
) -> Result<(), RuntimeError> {
    match comm.isend(dst, &vec![share, u64::from(converged)]) {
        Ok(req) => req.wait(),
        Err(RuntimeError::RankDead { rank, .. }) if rank == dst => Ok(()),
        Err(e) => Err(e),
    }
}

/// Overlapped root loop: shares go out as eager `isend`s (no closing
/// barrier), and the `irecv`s for the workers' next measurements are
/// posted *before* rank 0 measures its own share, so the workers'
/// points — and any fault-injected delivery latency on them — are in
/// flight under rank 0's compute. Observations are absorbed in the
/// same ascending rank order as the blocking gather.
fn root_loop_overlapped<M>(
    comm: &ThreadedComm,
    ctx: &mut DynamicContext,
    measure: &M,
    factor: f64,
    max_steps: usize,
    sink: &std::sync::Arc<dyn fupermod_core::trace::TraceSink>,
) -> Result<Vec<DynamicStep>, RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    let size = comm.size();
    let mut steps = Vec::new();
    // Distribute the initial shares.
    let sizes = ctx.dist().sizes();
    let mut my_d = sizes[0];
    for (dst, &share) in sizes.iter().enumerate().skip(1) {
        send_share_tolerant(comm, dst, share, false)?;
    }
    for _ in 0..max_steps {
        // Post the measurement receives first: worker points arrive
        // while rank 0 measures.
        let mut pending: Vec<Option<RecvRequest<'_, Point>>> = Vec::with_capacity(size - 1);
        for src in 1..size {
            match comm.irecv::<Point>(src) {
                Ok(req) => pending.push(Some(req)),
                Err(RuntimeError::RankDead { rank, .. }) if rank == src => pending.push(None),
                Err(e) => return Err(e),
            }
        }
        let own = measure_share(comm.rank(), my_d, measure, factor, sink)?;
        let mut observed = Vec::with_capacity(size);
        observed.push(own);
        for (i, req) in pending.into_iter().enumerate() {
            let src = i + 1;
            let slot = match req {
                None => None,
                Some(req) => match req.wait() {
                    Ok(point) => Some(point),
                    Err(RuntimeError::RankDead { rank, .. }) if rank == src => None,
                    Err(e) => return Err(e),
                },
            };
            match slot {
                Some(point) => observed.push(point),
                None => {
                    // Rank died: repartition its load across survivors.
                    if ctx.active()[src] {
                        ctx.deactivate(src);
                        fupermod_core::telemetry::record_fault("degraded");
                        sink.record(&TraceEvent::Fault {
                            rank: comm.rank(),
                            kind: "degraded".to_owned(),
                            peer: src as i64,
                            attempt: 0,
                            seconds: 0.0,
                        });
                    }
                    observed.push(Point::single(0, 0.0));
                }
            }
        }
        let step = ctx.absorb_observed(observed).map_err(app_err)?;
        let converged = step.converged;
        steps.push(step);
        let sizes = ctx.dist().sizes();
        my_d = sizes[0];
        for (dst, &share) in sizes.iter().enumerate().skip(1) {
            send_share_tolerant(comm, dst, share, converged)?;
        }
        if converged {
            break;
        }
    }
    Ok(steps)
}

/// Overlapped worker loop: receives `[share, converged]` messages and
/// pushes measurements back with eager `isend`s — no barrier crossing.
fn worker_loop_overlapped<M>(
    comm: &ThreadedComm,
    measure: &M,
    factor: f64,
    max_steps: usize,
    sink: &std::sync::Arc<dyn fupermod_core::trace::TraceSink>,
) -> Result<(), RuntimeError>
where
    M: Fn(usize, u64) -> Result<Point, CoreError> + Sync,
{
    let decode_share = |op: &'static str, msg: Vec<u64>| -> Result<(u64, bool), RuntimeError> {
        match msg.as_slice() {
            [share, converged] => Ok((*share, *converged != 0)),
            _ => Err(RuntimeError::Decode {
                what: op,
                detail: format!("share message has {} words, expected 2", msg.len()),
            }),
        }
    };
    let (mut my_d, _) = decode_share("share", comm.irecv::<Vec<u64>>(0)?.wait()?)?;
    for _ in 0..max_steps {
        let point = measure_share(comm.rank(), my_d, measure, factor, sink)?;
        comm.isend(0, &point)?.wait()?;
        let (d, converged) = decode_share("share", comm.irecv::<Vec<u64>>(0)?.wait()?)?;
        my_d = d;
        if converged {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::model::{Model, PiecewiseModel};
    use fupermod_core::partition::GeometricPartitioner;

    fn make_ctx(total: u64, eps: f64, size: usize) -> DynamicContext {
        let models: Vec<Box<dyn Model>> = (0..size)
            .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
            .collect();
        DynamicContext::new(Box::new(GeometricPartitioner::default()), models, total, eps)
    }

    fn measure(rank: usize, d: u64) -> Result<Point, CoreError> {
        let speed = [100.0, 25.0, 50.0][rank];
        Ok(Point::single(d, d as f64 / speed))
    }

    #[test]
    fn distributed_loop_balances_a_three_rank_platform() {
        let outcome = run_to_balance_distributed(
            RuntimeConfig::thread(),
            3,
            || make_ctx(700, 0.05, 3),
            measure,
            20,
        )
        .unwrap();
        assert!(outcome.converged());
        assert!(outcome.dead_ranks.is_empty());
        assert!(outcome.rank_errors.iter().all(Option::is_none));
        // 4:1:2 speeds over 700 units → 400/100/200.
        assert_eq!(outcome.final_sizes, vec![400, 100, 200]);
    }
}
