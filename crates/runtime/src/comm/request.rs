//! MPI-style nonblocking requests: `isend`/`irecv`/`ibcast`/
//! `iallgatherv`, completed by `wait`/`test`/[`wait_all`].
//!
//! # Lifetime and scope rules
//!
//! A request borrows its [`ThreadedComm`] **shared** (`&ThreadedComm`)
//! for as long as it is outstanding, in the spirit of `rsmpi`'s
//! scope-based request pattern: the borrow checker statically
//! guarantees the communicator outlives every in-flight operation,
//! and because every *blocking* [`Communicator`](super::Communicator)
//! operation takes `&mut self`, blocking and nonblocking operations
//! cannot interleave on one handle while a request is outstanding.
//! Multiple requests (shared borrows) can be outstanding at once —
//! that is the point. Payload buffers are encoded eagerly at post
//! time, so no request ever aliases caller memory.
//!
//! # Completion semantics
//!
//! * [`SendRequest`] is **eager**: the message is enqueued (and, on
//!   the sim backend, the sender's virtual clock charged) at post.
//!   `wait` only emits the trace event. Dropping it without `wait`
//!   never loses the message.
//! * [`RecvRequest`] posts nothing; `wait` blocks for the message,
//!   `test` polls for it. Dropping it without `wait` **cancels** the
//!   receive: a matching message stays in the mailbox for the next
//!   `recv`/`irecv` from the same source.
//! * [`BcastRequest`] / [`AllgathervRequest`] are split collectives:
//!   the closing barrier of the underlying BSP collective is joined
//!   at post (root broadcast) or during `wait`/`test`, and the
//!   virtual-time hop plan is charged **from the post-time clocks**
//!   ([`SimComm::schedule_from`](fupermod_platform::comm::SimComm))
//!   when `wait` happens after intervening compute — communication
//!   that fits under the compute costs no virtual time. Dropping one
//!   without `wait` completes it silently (result discarded), so
//!   peers never deadlock at the closing barrier.
//!
//! # Faults and deadlines
//!
//! Fault-plan deaths and deadline violations surface as the same
//! typed [`RuntimeError`]s as the blocking operations, **at `wait`**
//! (or at post, for faults that strike the posting rank itself). The
//! per-operation deadline applies to time spent *inside* `wait` —
//! the interval between post and `wait` is the caller's compute time
//! and is not billed against the deadline. `test` never blocks and
//! never times out.
//!
//! Progress happens inside `wait` and `test` (there is no background
//! progress thread), matching MPI implementations without
//! asynchronous progress: a collective request makes message-passing
//! progress only while its owner drives it.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

use crate::collective::{self, Resolved};
use crate::error::RuntimeError;
use crate::wire::Wire;

use super::{charge_of, OpStart, Slots, ThreadedComm};

use std::mem;

/// A nonblocking operation in flight. Consume it with
/// [`wait`](Request::wait) (block until complete) or
/// [`test`](Request::test) (poll without blocking).
pub trait Request: Sized {
    /// What the operation yields at completion.
    type Output;

    /// Blocks until the operation completes, returning its result.
    /// Fault-plan deaths and deadline violations surface here as
    /// typed [`RuntimeError`]s.
    fn wait(self) -> Result<Self::Output, RuntimeError>;

    /// Polls the operation without blocking: [`Progress::Ready`] with
    /// the result if it could complete, [`Progress::Pending`]
    /// returning the request otherwise.
    fn test(self) -> Result<Progress<Self>, RuntimeError>;
}

/// Outcome of a nonblocking [`Request::test`] poll.
pub enum Progress<R: Request> {
    /// The operation completed; here is its result.
    Ready(R::Output),
    /// The operation would block; the request is handed back to poll
    /// or [`wait`](Request::wait) later.
    Pending(R),
}

/// Completes every request, in order, returning their outputs — or
/// the **first** error encountered. Every request is driven to
/// completion even after an error (collective requests must reach
/// their closing barrier or peers would stall), so `wait_all` never
/// leaves an operation half-finished.
///
/// Completion order of the underlying operations is independent of
/// the vector order: each `wait` only blocks for its own operation,
/// so a message for request 3 arriving before request 0's does not
/// stall anything.
pub fn wait_all<R: Request>(requests: Vec<R>) -> Result<Vec<R::Output>, RuntimeError> {
    let mut outputs = Vec::with_capacity(requests.len());
    let mut first_err: Option<RuntimeError> = None;
    for request in requests {
        match request.wait() {
            Ok(v) => outputs.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        None => Ok(outputs),
        Some(e) => Err(e),
    }
}

/// An in-flight nonblocking send (see [`ThreadedComm::isend`]).
///
/// Eager: the message was enqueued at post time, so dropping this
/// request without `wait` does not lose it — only the trace event of
/// the operation is skipped.
#[must_use = "a request does nothing more unless waited or tested"]
pub struct SendRequest<'c> {
    comm: &'c ThreadedComm,
    start: OpStart,
    dst: usize,
    bytes_len: u64,
}

impl Request for SendRequest<'_> {
    type Output = ();

    fn wait(self) -> Result<(), RuntimeError> {
        self.comm.op_end(
            "isend",
            self.dst as i64,
            self.bytes_len,
            &self.start,
            "direct",
            1,
            self.start.gen,
        );
        Ok(())
    }

    fn test(self) -> Result<Progress<Self>, RuntimeError> {
        self.wait().map(Progress::Ready)
    }
}

/// An in-flight nonblocking receive (see [`ThreadedComm::irecv`]).
///
/// Dropping it without `wait` cancels the receive; a matching
/// message stays in the mailbox for the next `recv`/`irecv` from the
/// same source. Multiple outstanding `irecv`s from the same source
/// match incoming messages in the order they are completed, not the
/// order they were posted.
#[must_use = "a request does nothing more unless waited or tested"]
pub struct RecvRequest<'c, T: Wire> {
    comm: &'c ThreadedComm,
    start: OpStart,
    src: usize,
    _payload: PhantomData<fn() -> T>,
}

impl<T: Wire> RecvRequest<'_, T> {
    fn finish(&self, bytes: &[u8]) -> Result<T, RuntimeError> {
        const OP: &str = "irecv";
        let value = ThreadedComm::decode_as::<T>(OP, bytes)?;
        self.comm.op_end(
            OP,
            self.src as i64,
            bytes.len() as u64,
            &self.start,
            "direct",
            1,
            self.start.gen,
        );
        Ok(value)
    }
}

impl<T: Wire> Request for RecvRequest<'_, T> {
    type Output = T;

    fn wait(self) -> Result<T, RuntimeError> {
        const OP: &str = "irecv";
        let deadline_at = Instant::now() + self.comm.plane.deadline;
        let bytes = self
            .comm
            .raw_recv_deadline(OP, self.src, true, deadline_at)?;
        self.finish(&bytes)
    }

    fn test(self) -> Result<Progress<Self>, RuntimeError> {
        const OP: &str = "irecv";
        match self.comm.try_take(OP, self.src, true)? {
            Some(bytes) => self.finish(&bytes).map(Progress::Ready),
            None => Ok(Progress::Pending(self)),
        }
    }
}

/// How far a split collective has progressed.
enum StepProgress {
    /// Progress needs a message (or barrier completion) that has not
    /// arrived yet.
    Blocked,
    /// The stage completed.
    Done,
}

/// An in-flight nonblocking broadcast (see [`ThreadedComm::ibcast`]).
///
/// The root's data phase (its sends) runs at **post** time, so
/// children can receive the payload while the root computes;
/// non-root data phases run inside `wait`/`test`. Dropping the
/// request without `wait` completes the collective silently — peers
/// never deadlock at the closing barrier — discarding the value and
/// any error.
#[must_use = "a request does nothing more unless waited or tested"]
pub struct BcastRequest<'c, T: Wire> {
    comm: &'c ThreadedComm,
    inner: Option<BcastInner>,
    _payload: PhantomData<fn() -> T>,
}

struct BcastInner {
    start: OpStart,
    root: usize,
    resolved: Resolved,
    /// Bytes moved through this rank, for the trace event.
    moved: u64,
    /// The broadcast blob once this rank holds it.
    bytes: Option<Vec<u8>>,
    /// First data-phase error; takes precedence over barrier errors
    /// (the same rule as the blocking collectives' `close_op`).
    data_err: Option<RuntimeError>,
    /// Closing-barrier generation once this rank arrived.
    gen: Option<u64>,
    /// Data phase finished (successfully or not).
    data_done: bool,
}

impl<T: Wire> BcastRequest<'_, T> {
    const OP: &'static str = "ibcast";

    /// Nonblocking data-phase step for a non-root rank: take the
    /// parent/hub message if present, forward it down the tree.
    fn step_data(&mut self) -> Result<StepProgress, RuntimeError> {
        let inner = self.inner.as_mut().expect("request already completed");
        if inner.data_done {
            return Ok(StepProgress::Done);
        }
        let comm = self.comm;
        match inner.resolved {
            Resolved::Hub => match comm.try_take(Self::OP, inner.root, false) {
                Ok(Some(bytes)) => {
                    inner.moved = bytes.len() as u64;
                    inner.bytes = Some(bytes);
                }
                Ok(None) => return Ok(StepProgress::Blocked),
                Err(e) => inner.data_err = Some(e),
            },
            Resolved::Ring | Resolved::Tree => {
                let (live, vroot, vi) = match comm.bcast_position(Self::OP, inner.root) {
                    Ok(t) => t,
                    Err(e) => {
                        inner.data_err = Some(e);
                        inner.data_done = true;
                        return Ok(StepProgress::Done);
                    }
                };
                let parent_abs = ThreadedComm::pos_to_abs(
                    &live,
                    vroot,
                    collective::binomial_parent(vi).expect("non-root has a parent"),
                );
                let framed = match comm.try_take(Self::OP, parent_abs, false) {
                    Ok(Some(raw)) => {
                        match ThreadedComm::decode_as::<Option<Vec<u8>>>(Self::OP, &raw) {
                            Ok(f) => f,
                            Err(e) => {
                                inner.data_err = Some(e);
                                None
                            }
                        }
                    }
                    Ok(None) => return Ok(StepProgress::Blocked),
                    // A dead parent degrades this edge: the value
                    // never reaches this subtree.
                    Err(RuntimeError::RankDead { rank, .. }) if rank == parent_abs => None,
                    Err(e) => {
                        inner.data_err = Some(e);
                        None
                    }
                };
                // Forward down the tree even when the frame is empty,
                // so descendants degrade in one hop instead of
                // stalling to their deadline.
                let msg = framed.to_bytes();
                let q = live.len();
                for (_, child_vi) in collective::binomial_children(vi, q) {
                    let child_abs = ThreadedComm::pos_to_abs(&live, vroot, child_vi);
                    if let Err(e) = comm.send_tolerant(Self::OP, child_abs, msg.clone()) {
                        if inner.data_err.is_none() {
                            inner.data_err = Some(e);
                        }
                    }
                }
                match framed {
                    Some(bytes) => {
                        inner.moved = msg.len() as u64;
                        inner.bytes = Some(bytes);
                    }
                    None => {
                        if inner.data_err.is_none() {
                            inner.data_err = Some(RuntimeError::RankDead {
                                op: Self::OP,
                                rank: inner.root,
                            });
                        }
                    }
                }
            }
        }
        inner.data_done = true;
        Ok(StepProgress::Done)
    }

    /// Arrives at the closing barrier once the data phase is done.
    fn arrive(&mut self) {
        let inner = self.inner.as_mut().expect("request already completed");
        if inner.gen.is_some() {
            return;
        }
        match self.comm.raw_barrier_arrive(Self::OP, None) {
            Ok(gen) => inner.gen = Some(gen),
            Err(e) => {
                if inner.data_err.is_none() {
                    inner.data_err = Some(e);
                }
            }
        }
    }

    /// Epilogue shared by `wait`, a ready `test` and `Drop`: release
    /// the per-rank collective slot, emit the trace event, surface
    /// the data error (with precedence) or the decoded value.
    fn finish(&mut self, fence: Result<u64, RuntimeError>) -> Result<T, RuntimeError> {
        let inner = self.inner.take().expect("request already completed");
        self.comm.coll_release();
        match (inner.data_err, fence) {
            (Some(e), _) => Err(e),
            (None, Err(e)) => Err(e),
            (None, Ok(gen)) => {
                self.comm.op_end(
                    Self::OP,
                    inner.root as i64,
                    inner.moved,
                    &inner.start,
                    inner.resolved.name(),
                    self.comm.rooted_rounds(inner.resolved),
                    gen,
                );
                let bytes = inner.bytes.expect("no data error implies a value");
                ThreadedComm::decode_as::<T>(Self::OP, &bytes)
            }
        }
    }

    fn complete_blocking(&mut self) -> Result<T, RuntimeError> {
        let deadline_at = Instant::now() + self.comm.plane.deadline;
        loop {
            match self.step_data()? {
                StepProgress::Done => break,
                StepProgress::Blocked => self.comm.park(Self::OP, deadline_at)?,
            }
        }
        self.arrive();
        let fence = match self.inner.as_ref().expect("not completed").gen {
            Some(gen) => self.comm.raw_barrier_wait(Self::OP, gen, deadline_at),
            // Never arrived (the arrival itself failed); the error is
            // already recorded as the data error.
            None => Err(RuntimeError::RankDead {
                op: Self::OP,
                rank: self.comm.rank,
            }),
        };
        self.finish(fence)
    }
}

impl<T: Wire> Request for BcastRequest<'_, T> {
    type Output = T;

    fn wait(mut self) -> Result<T, RuntimeError> {
        self.complete_blocking()
    }

    fn test(mut self) -> Result<Progress<Self>, RuntimeError> {
        match self.step_data()? {
            StepProgress::Blocked => return Ok(Progress::Pending(self)),
            StepProgress::Done => {}
        }
        self.arrive();
        match self.inner.as_ref().expect("not completed").gen {
            Some(gen) => {
                if self.comm.barrier_done(gen) {
                    self.finish(Ok(gen)).map(Progress::Ready)
                } else {
                    Ok(Progress::Pending(self))
                }
            }
            None => {
                let fence = Err(RuntimeError::RankDead {
                    op: Self::OP,
                    rank: self.comm.rank,
                });
                self.finish(fence).map(Progress::Ready)
            }
        }
    }
}

impl<T: Wire> Drop for BcastRequest<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() && !std::thread::panicking() {
            // Complete silently: peers must not be left one arrival
            // short at the closing barrier.
            let _ = self.complete_blocking();
        }
    }
}

/// An in-flight nonblocking all-gather (see
/// [`ThreadedComm::iallgatherv`]).
///
/// The data phase runs inside `wait`/`test` under the schedule the
/// [`AlgorithmPolicy`](crate::AlgorithmPolicy) resolves (hub, ring
/// or recursive-doubling butterfly), resumable message by message —
/// `test` makes exactly as much progress as arrived mail allows.
/// Dropping the request without `wait` completes the collective
/// silently, so peers never deadlock at the closing barrier.
#[must_use = "a request does nothing more unless waited or tested"]
pub struct AllgathervRequest<'c, T: Wire> {
    comm: &'c ThreadedComm,
    inner: Option<AgInner>,
    _payload: PhantomData<fn() -> T>,
}

struct AgInner {
    start: OpStart,
    resolved: Resolved,
    machine: AgMachine,
    moved: u64,
    slots: Option<Slots>,
    data_err: Option<RuntimeError>,
    gen: Option<u64>,
}

/// Resumable data-phase state for the three all-gather schedules.
/// Entry sends of each stage happen on the transition *into* the
/// stage; `step` re-polls only the receives.
enum AgMachine {
    /// Not started: entry sends happen on the first step.
    Start { own: Vec<u8> },
    /// Non-hub rank awaiting the hub's slot blob.
    HubLeaf { hub: usize, own_len: u64 },
    /// Hub rank collecting contributions in ascending rank order.
    HubCenter { held: Slots, next_src: usize },
    /// Ring rank inside round `k`, awaiting the block from `prev`.
    Ring { held: Slots, k: usize },
    /// Folded butterfly rank (`pos >= 2^⌊log p⌋`) awaiting the core
    /// result from its partner.
    BflyFold { held: Slots, partner: usize },
    /// Core butterfly rank: optional fold-in, then the mask rounds.
    BflyCore {
        held: Slots,
        /// Still awaiting the folded partner's contribution.
        fold_pending: bool,
        /// Current exchange mask; `0` means the round's send has not
        /// happened yet (set on entry).
        mask: usize,
        /// The current mask round's send has been posted.
        sent: bool,
        own_len: u64,
    },
    /// Data phase finished.
    Done,
}

impl<T: Wire> AllgathervRequest<'_, T> {
    const OP: &'static str = "iallgatherv";

    /// Nonblocking receive helper with the tolerant-degrade rule:
    /// `Ok(None)` = not yet, `Ok(Some(None))` = source dead (edge
    /// degraded), `Ok(Some(Some(bytes)))` = delivered.
    fn try_take_tolerant(
        comm: &ThreadedComm,
        src: usize,
    ) -> Result<Option<Option<Vec<u8>>>, RuntimeError> {
        match comm.try_take(Self::OP, src, false) {
            Ok(Some(bytes)) => Ok(Some(Some(bytes))),
            Ok(None) => Ok(None),
            Err(RuntimeError::RankDead { rank, .. }) if rank == src => Ok(Some(None)),
            Err(e) => Err(e),
        }
    }

    /// Drives the data phase as far as arrived mail allows. Mirrors
    /// the blocking `allgather_slots` schedules operation for
    /// operation, so the resulting slot vectors (and the deposited
    /// virtual-time charge) are identical to the blocking path's.
    #[allow(clippy::too_many_lines)] // one resumable machine per schedule
    fn step_data(&mut self) -> Result<StepProgress, RuntimeError> {
        let comm = self.comm;
        let size = comm.plane.size;
        let inner = self.inner.as_mut().expect("request already completed");
        loop {
            match &mut inner.machine {
                AgMachine::Done => return Ok(StepProgress::Done),
                AgMachine::Start { own } => {
                    let own = mem::take(own);
                    if size == 1 {
                        inner.slots = Some(vec![Some(own)]);
                        inner.machine = AgMachine::Done;
                        continue;
                    }
                    let live = comm.agreed_live();
                    let q = live.len();
                    let pos = match comm.agreed_pos(Self::OP, &live) {
                        Ok(p) => p,
                        Err(e) => {
                            inner.data_err = Some(e);
                            inner.machine = AgMachine::Done;
                            continue;
                        }
                    };
                    match inner.resolved {
                        Resolved::Hub => {
                            inner.moved = own.len() as u64;
                            let hub = live[0];
                            if comm.rank == hub {
                                let mut held: Slots = vec![None; size];
                                held[comm.rank] = Some(own);
                                inner.machine = AgMachine::HubCenter { held, next_src: 0 };
                            } else {
                                // Hub death is fatal for the hub
                                // schedule — single point of failure.
                                if let Err(e) = comm.raw_send(Self::OP, hub, own.clone()) {
                                    inner.data_err = Some(e);
                                    inner.machine = AgMachine::Done;
                                    continue;
                                }
                                inner.machine = AgMachine::HubLeaf {
                                    hub,
                                    own_len: own.len() as u64,
                                };
                            }
                        }
                        Resolved::Ring => {
                            let mut held: Slots = vec![None; size];
                            held[comm.rank] = Some(own);
                            if q == 1 {
                                inner.slots = Some(held);
                                inner.machine = AgMachine::Done;
                                continue;
                            }
                            // Entry send of round 0: own block to the
                            // next ring neighbour.
                            let next = live[(pos + 1) % q];
                            let msg = held[comm.rank].to_bytes();
                            inner.moved += msg.len() as u64;
                            if let Err(e) = comm.send_tolerant(Self::OP, next, msg) {
                                inner.data_err = Some(e);
                                inner.machine = AgMachine::Done;
                                continue;
                            }
                            inner.machine = AgMachine::Ring { held, k: 0 };
                        }
                        Resolved::Tree => {
                            let q2 = collective::prev_pow2(q);
                            let own_len = own.len() as u64;
                            let mut held: Slots = vec![None; size];
                            held[comm.rank] = Some(own);
                            if q == 1 {
                                inner.slots = Some(held);
                                inner.machine = AgMachine::Done;
                                continue;
                            }
                            if pos >= q2 {
                                let partner = live[pos - q2];
                                let msg = held.to_bytes();
                                inner.moved += msg.len() as u64;
                                if let Err(e) = comm.send_tolerant(Self::OP, partner, msg) {
                                    inner.data_err = Some(e);
                                    inner.machine = AgMachine::Done;
                                    continue;
                                }
                                inner.machine = AgMachine::BflyFold { held, partner };
                            } else {
                                inner.machine = AgMachine::BflyCore {
                                    held,
                                    fold_pending: pos + q2 < q,
                                    mask: 1,
                                    sent: false,
                                    own_len,
                                };
                            }
                        }
                    }
                }
                AgMachine::HubLeaf { hub, own_len } => {
                    let hub = *hub;
                    let own_len = *own_len;
                    match comm.try_take(Self::OP, hub, false) {
                        Ok(None) => return Ok(StepProgress::Blocked),
                        Ok(Some(blob)) => {
                            inner.moved = own_len + blob.len() as u64;
                            match ThreadedComm::decode_as::<Slots>(Self::OP, &blob) {
                                Ok(slots) if slots.len() == size => inner.slots = Some(slots),
                                Ok(slots) => {
                                    inner.data_err = Some(RuntimeError::Decode {
                                        what: Self::OP,
                                        detail: format!(
                                            "hub blob has {} slots, communicator size is {}",
                                            slots.len(),
                                            size
                                        ),
                                    })
                                }
                                Err(e) => inner.data_err = Some(e),
                            }
                            inner.machine = AgMachine::Done;
                        }
                        Err(e) => {
                            inner.data_err = Some(e);
                            inner.machine = AgMachine::Done;
                        }
                    }
                }
                AgMachine::HubCenter { held, next_src } => {
                    while *next_src < size {
                        let src = *next_src;
                        if src == comm.rank {
                            *next_src += 1;
                            continue;
                        }
                        match Self::try_take_tolerant(comm, src)? {
                            None => return Ok(StepProgress::Blocked),
                            Some(slot) => {
                                held[src] = slot;
                                *next_src += 1;
                            }
                        }
                    }
                    // All contributions in: fan the blob out and
                    // deposit the star charge, as the blocking hub
                    // does.
                    let slots = mem::take(held);
                    let live = comm.agreed_live();
                    let hub = comm.rank;
                    let blob = slots.to_bytes();
                    for &dst in &live {
                        if dst == hub {
                            continue;
                        }
                        if let Err(e) = comm.send_tolerant(Self::OP, dst, blob.clone()) {
                            if inner.data_err.is_none() {
                                inner.data_err = Some(e);
                            }
                        }
                        inner.moved += blob.len() as u64;
                    }
                    let in_lens: Vec<u64> = live
                        .iter()
                        .map(|&r| slots[r].as_ref().map_or(0, |b| b.len() as u64))
                        .collect();
                    let out_lens = vec![blob.len() as u64; live.len()];
                    let rounds = vec![
                        collective::star_gather_round(&live, hub, &in_lens),
                        collective::star_scatter_round(&live, hub, &out_lens),
                    ];
                    comm.deposit(charge_of(&rounds));
                    inner.slots = Some(slots);
                    inner.machine = AgMachine::Done;
                }
                AgMachine::Ring { held, k } => {
                    let live = comm.agreed_live();
                    let q = live.len();
                    let pos = comm.agreed_pos(Self::OP, &live)?;
                    let next = live[(pos + 1) % q];
                    let prev = live[(pos + q - 1) % q];
                    while *k < q - 1 {
                        let origin_recv = live[(pos + q - 1 - *k) % q];
                        match Self::try_take_tolerant(comm, prev)? {
                            None => return Ok(StepProgress::Blocked),
                            Some(Some(bytes)) => {
                                inner.moved += bytes.len() as u64;
                                held[origin_recv] = ThreadedComm::decode_as::<Option<Vec<u8>>>(
                                    Self::OP, &bytes,
                                )?;
                            }
                            Some(None) => {} // dead neighbour: hole stays
                        }
                        *k += 1;
                        if *k < q - 1 {
                            // Entry send of the next round.
                            let origin_send = live[(pos + q - *k) % q];
                            let msg = held[origin_send].to_bytes();
                            inner.moved += msg.len() as u64;
                            comm.send_tolerant(Self::OP, next, msg)?;
                        }
                    }
                    let held = mem::take(held);
                    if comm.rank == live[0] {
                        let lens: Vec<u64> = live
                            .iter()
                            .map(|&r| held[r].as_ref().map_or(1, |b| 9 + b.len() as u64))
                            .collect();
                        comm.deposit(charge_of(&collective::ring_rounds(&live, &lens)));
                    }
                    inner.slots = Some(held);
                    inner.machine = AgMachine::Done;
                }
                AgMachine::BflyFold { held, partner } => {
                    let partner = *partner;
                    match Self::try_take_tolerant(comm, partner)? {
                        None => return Ok(StepProgress::Blocked),
                        Some(Some(bytes)) => {
                            inner.moved += bytes.len() as u64;
                            let full: Slots = ThreadedComm::decode_as(Self::OP, &bytes)?;
                            if full.len() == size {
                                super::merge_slots(held, full);
                            }
                        }
                        Some(None) => {}
                    }
                    inner.slots = Some(mem::take(held));
                    inner.machine = AgMachine::Done;
                }
                AgMachine::BflyCore {
                    held,
                    fold_pending,
                    mask,
                    sent,
                    own_len,
                } => {
                    let live = comm.agreed_live();
                    let q = live.len();
                    let pos = comm.agreed_pos(Self::OP, &live)?;
                    let q2 = collective::prev_pow2(q);
                    if *fold_pending {
                        match Self::try_take_tolerant(comm, live[pos + q2])? {
                            None => return Ok(StepProgress::Blocked),
                            Some(Some(bytes)) => {
                                inner.moved += bytes.len() as u64;
                                let folded: Slots = ThreadedComm::decode_as(Self::OP, &bytes)?;
                                if folded.len() == size {
                                    super::merge_slots(held, folded);
                                }
                            }
                            Some(None) => {}
                        }
                        *fold_pending = false;
                    }
                    while *mask < q2 {
                        let partner = live[pos ^ *mask];
                        if !*sent {
                            let msg = held.to_bytes();
                            inner.moved += msg.len() as u64;
                            comm.send_tolerant(Self::OP, partner, msg)?;
                            *sent = true;
                        }
                        match Self::try_take_tolerant(comm, partner)? {
                            None => return Ok(StepProgress::Blocked),
                            Some(Some(bytes)) => {
                                inner.moved += bytes.len() as u64;
                                let theirs: Slots = ThreadedComm::decode_as(Self::OP, &bytes)?;
                                if theirs.len() == size {
                                    super::merge_slots(held, theirs);
                                }
                            }
                            Some(None) => {}
                        }
                        *mask <<= 1;
                        *sent = false;
                    }
                    if pos + q2 < q {
                        let msg = held.to_bytes();
                        inner.moved += msg.len() as u64;
                        comm.send_tolerant(Self::OP, live[pos + q2], msg)?;
                    }
                    let held = mem::take(held);
                    if comm.rank == live[0] {
                        let lens: Vec<u64> = live
                            .iter()
                            .map(|&r| held[r].as_ref().map_or(*own_len, |b| b.len() as u64))
                            .collect();
                        comm.deposit(charge_of(&collective::butterfly_rounds(
                            size, &live, &lens,
                        )));
                    }
                    inner.slots = Some(held);
                    inner.machine = AgMachine::Done;
                }
            }
        }
    }

    fn arrive(&mut self) {
        let inner = self.inner.as_mut().expect("request already completed");
        if inner.gen.is_some() {
            return;
        }
        match self.comm.raw_barrier_arrive(Self::OP, None) {
            Ok(gen) => inner.gen = Some(gen),
            Err(e) => {
                if inner.data_err.is_none() {
                    inner.data_err = Some(e);
                }
            }
        }
    }

    fn finish(&mut self, fence: Result<u64, RuntimeError>) -> Result<Vec<T>, RuntimeError> {
        let inner = self.inner.take().expect("request already completed");
        self.comm.coll_release();
        match (inner.data_err, fence) {
            (Some(e), _) => Err(e),
            (None, Err(e)) => Err(e),
            (None, Ok(gen)) => {
                self.comm.op_end(
                    Self::OP,
                    -1,
                    inner.moved,
                    &inner.start,
                    inner.resolved.name(),
                    self.comm.rootless_rounds(inner.resolved),
                    gen,
                );
                let slots = inner.slots.expect("no data error implies slots");
                let mut values = Vec::with_capacity(slots.len());
                for (rank, slot) in slots.into_iter().enumerate() {
                    match slot {
                        Some(bytes) => {
                            values.push(ThreadedComm::decode_as::<T>(Self::OP, &bytes)?)
                        }
                        None => return Err(RuntimeError::RankDead { op: Self::OP, rank }),
                    }
                }
                Ok(values)
            }
        }
    }

    fn complete_blocking(&mut self) -> Result<Vec<T>, RuntimeError> {
        let deadline_at = Instant::now() + self.comm.plane.deadline;
        loop {
            match self.step_data() {
                Ok(StepProgress::Done) => break,
                Ok(StepProgress::Blocked) => self.comm.park(Self::OP, deadline_at)?,
                Err(e) => {
                    let inner = self.inner.as_mut().expect("not completed");
                    if inner.data_err.is_none() {
                        inner.data_err = Some(e);
                    }
                    inner.machine = AgMachine::Done;
                    break;
                }
            }
        }
        self.arrive();
        let fence = match self.inner.as_ref().expect("not completed").gen {
            Some(gen) => self.comm.raw_barrier_wait(Self::OP, gen, deadline_at),
            None => Err(RuntimeError::RankDead {
                op: Self::OP,
                rank: self.comm.rank,
            }),
        };
        self.finish(fence)
    }
}

impl<T: Wire> Request for AllgathervRequest<'_, T> {
    type Output = Vec<T>;

    fn wait(mut self) -> Result<Vec<T>, RuntimeError> {
        self.complete_blocking()
    }

    fn test(mut self) -> Result<Progress<Self>, RuntimeError> {
        match self.step_data() {
            Ok(StepProgress::Blocked) => return Ok(Progress::Pending(self)),
            Ok(StepProgress::Done) => {}
            Err(e) => {
                let inner = self.inner.as_mut().expect("not completed");
                if inner.data_err.is_none() {
                    inner.data_err = Some(e);
                }
                inner.machine = AgMachine::Done;
            }
        }
        self.arrive();
        match self.inner.as_ref().expect("not completed").gen {
            Some(gen) => {
                if self.comm.barrier_done(gen) {
                    self.finish(Ok(gen)).map(Progress::Ready)
                } else {
                    Ok(Progress::Pending(self))
                }
            }
            None => {
                let fence = Err(RuntimeError::RankDead {
                    op: Self::OP,
                    rank: self.comm.rank,
                });
                self.finish(fence).map(Progress::Ready)
            }
        }
    }
}

impl<T: Wire> Drop for AllgathervRequest<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() && !std::thread::panicking() {
            let _ = self.complete_blocking();
        }
    }
}

impl ThreadedComm {
    /// Posts a nonblocking typed send to `dst` and returns the
    /// request. Eager: the message is enqueued (and, on the sim
    /// backend, the sender's virtual clock charged — one latency,
    /// with the Hockney transfer cost billed to the receiver at
    /// delivery) before this returns, so the value buffer is free to
    /// reuse immediately and dropping the request never loses the
    /// message. Fault-plan drop/delay rules apply exactly as for the
    /// blocking [`send`](super::Communicator::send).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidRank`], [`RuntimeError::RankDead`]
    /// (self or `dst`), or [`RuntimeError::RetriesExhausted`] — all
    /// at post time.
    pub fn isend<T: Wire>(&self, dst: usize, value: &T) -> Result<SendRequest<'_>, RuntimeError> {
        const OP: &str = "isend";
        self.check_rank(OP, dst)?;
        let start = self.op_begin(OP)?;
        let bytes = value.to_bytes();
        let bytes_len = bytes.len() as u64;
        // Charge the sender's virtual clock now (post time); the
        // receiver pays the rest at delivery via `SimComm::arrive`.
        let vready = self.plane.sim.as_ref().map(|s| {
            s.lock()
                .expect("sim poisoned")
                .post_send(self.rank, dst, bytes.len() as f64)
        });
        self.raw_send_at(OP, dst, bytes, vready)?;
        Ok(SendRequest {
            comm: self,
            start,
            dst,
            bytes_len,
        })
    }

    /// Posts a nonblocking typed receive from `src` and returns the
    /// request. Nothing blocks until [`wait`](Request::wait) (or a
    /// [`test`](Request::test) poll); the per-operation deadline is
    /// measured from the entry to `wait`, so compute between post and
    /// `wait` is never billed against it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidRank`] or [`RuntimeError::RankDead`]
    /// (self) at post time; source death, deadline and decode errors
    /// surface at `wait`.
    pub fn irecv<T: Wire>(&self, src: usize) -> Result<RecvRequest<'_, T>, RuntimeError> {
        const OP: &str = "irecv";
        self.check_rank(OP, src)?;
        let start = self.op_begin(OP)?;
        Ok(RecvRequest {
            comm: self,
            start,
            src,
            _payload: PhantomData,
        })
    }

    /// Posts a nonblocking broadcast from `root` (which must supply
    /// `Some(value)`; other ranks pass `None`, exactly as the
    /// blocking [`bcast`](super::Communicator::bcast)) and returns
    /// the request.
    ///
    /// The root's sends happen at post time — children can pick the
    /// payload up while the root computes. On the sim backend the
    /// schedule's hop plan is charged from each participant's
    /// post-time clock, so communication overlapped with
    /// [`advance_compute`](Self::advance_compute) costs no virtual
    /// time; with no intervening compute the charge is bit-identical
    /// to the blocking path's.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidRank`], [`RuntimeError::RankDead`]
    /// (self) and [`RuntimeError::RequestBusy`] (a collective request
    /// is already outstanding on this rank) at post time; everything
    /// else at `wait`.
    pub fn ibcast<T: Wire>(
        &self,
        root: usize,
        value: Option<&T>,
    ) -> Result<BcastRequest<'_, T>, RuntimeError> {
        const OP: &str = "ibcast";
        self.check_rank(OP, root)?;
        self.coll_acquire(OP)?;
        let start = match self.op_begin(OP) {
            Ok(s) => s,
            Err(e) => {
                self.coll_release();
                return Err(e);
            }
        };
        self.note_overlap_base();
        let resolved = self.plane.policy.bcast.resolve_rooted(self.plane.size);
        let mut inner = BcastInner {
            start,
            root,
            resolved,
            moved: 0,
            bytes: None,
            data_err: None,
            gen: None,
            data_done: self.rank == root,
        };
        if self.rank == root {
            match value {
                None => {
                    inner.data_err = Some(RuntimeError::App(
                        "ibcast: root must supply Some(value)".to_owned(),
                    ))
                }
                Some(value) => {
                    let bytes = value.to_bytes();
                    match self.ibcast_root_data(OP, resolved, bytes) {
                        Ok((bytes, moved)) => {
                            inner.bytes = Some(bytes);
                            inner.moved = moved;
                        }
                        Err(e) => inner.data_err = Some(e),
                    }
                }
            }
            // The root's data phase is done; join the closing barrier
            // now so a fast non-root `wait` can already complete it.
            match self.raw_barrier_arrive(OP, None) {
                Ok(gen) => inner.gen = Some(gen),
                Err(e) => {
                    if inner.data_err.is_none() {
                        inner.data_err = Some(e);
                    }
                }
            }
        }
        Ok(BcastRequest {
            comm: self,
            inner: Some(inner),
            _payload: PhantomData,
        })
    }

    /// Posts a nonblocking all-gather of this rank's `value` and
    /// returns the request; `wait` yields every rank's contribution
    /// in rank order, exactly as the blocking
    /// [`allgatherv`](super::Communicator::allgatherv). The data
    /// phase (under the policy-resolved hub/ring/butterfly schedule)
    /// runs inside `wait`/`test`; on the sim backend its hop plan is
    /// charged from each participant's post-time clock.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] (self) and
    /// [`RuntimeError::RequestBusy`] at post time; peer death,
    /// deadline and decode errors at `wait`.
    pub fn iallgatherv<T: Wire>(
        &self,
        value: &T,
    ) -> Result<AllgathervRequest<'_, T>, RuntimeError> {
        const OP: &str = "iallgatherv";
        self.coll_acquire(OP)?;
        let start = match self.op_begin(OP) {
            Ok(s) => s,
            Err(e) => {
                self.coll_release();
                return Err(e);
            }
        };
        self.note_overlap_base();
        let own = value.to_bytes();
        let resolved = self
            .plane
            .policy
            .allgatherv
            .resolve_allgatherv(self.plane.size, own.len() as u64);
        Ok(AllgathervRequest {
            comm: self,
            inner: Some(AgInner {
                start,
                resolved,
                machine: AgMachine::Start { own },
                moved: 0,
                slots: None,
                data_err: None,
                gen: None,
            }),
            _payload: PhantomData,
        })
    }

    /// Credits `seconds` of local computation to this rank's virtual
    /// clock (sim backend). On the thread backend compute is real
    /// wall time, so this is a no-op. Use it between posting a
    /// request and `wait` to model the compute the communication
    /// should hide under.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::App`] if `seconds` is negative or not finite.
    pub fn advance_compute(&self, seconds: f64) -> Result<(), RuntimeError> {
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(RuntimeError::App(format!(
                "advance_compute: seconds must be finite and >= 0 (got {seconds})"
            )));
        }
        if let Some(sim) = &self.plane.sim {
            sim.lock().expect("sim poisoned").advance(self.rank, seconds);
        }
        Ok(())
    }

    /// Root-side `ibcast` data phase: run the sends (and deposit the
    /// virtual-time charge) immediately, returning the root's own
    /// copy of the payload.
    fn ibcast_root_data(
        &self,
        op: &'static str,
        resolved: Resolved,
        bytes: Vec<u8>,
    ) -> Result<(Vec<u8>, u64), RuntimeError> {
        match resolved {
            Resolved::Hub => {
                let live = self.agreed_live();
                for &dst in &live {
                    if dst == self.rank {
                        continue;
                    }
                    self.send_tolerant(op, dst, bytes.clone())?;
                }
                let lens = vec![bytes.len() as u64; live.len()];
                let rounds = vec![collective::star_scatter_round(&live, self.rank, &lens)];
                self.deposit(charge_of(&rounds));
                let n = bytes.len() as u64;
                Ok((bytes, n))
            }
            Resolved::Ring | Resolved::Tree => {
                let (blob, msg_len) = self.bcast_tree_data(op, self.rank, Some(bytes))?;
                let blob = blob.expect("the root always holds its own value");
                Ok((blob, msg_len))
            }
        }
    }

    /// Agreed-tree coordinates of this (non-root) rank for a rooted
    /// schedule: `(live list, virtual root position, virtual index)`.
    fn bcast_position(
        &self,
        op: &'static str,
        root: usize,
    ) -> Result<(Vec<usize>, usize, usize), RuntimeError> {
        let live = self.agreed_live();
        let q = live.len();
        let Some(vroot) = live.iter().position(|&r| r == root) else {
            return Err(RuntimeError::RankDead { op, rank: root });
        };
        let pos = self.agreed_pos(op, &live)?;
        Ok((live, vroot, (pos + q - vroot) % q))
    }

    /// Claims this rank's single outstanding-collective-request slot.
    fn coll_acquire(&self, op: &'static str) -> Result<(), RuntimeError> {
        let mut st = self.plane.lock();
        if st.coll_pending[self.rank] {
            return Err(RuntimeError::RequestBusy {
                op,
                rank: self.rank,
            });
        }
        st.coll_pending[self.rank] = true;
        Ok(())
    }

    /// Releases the outstanding-collective-request slot.
    fn coll_release(&self) {
        self.plane.lock().coll_pending[self.rank] = false;
    }

    /// Records this rank's post-time virtual clock as the overlap
    /// baseline the closing barrier's completer charges the
    /// collective schedule from (sim backend only).
    fn note_overlap_base(&self) {
        if let Some(sim) = &self.plane.sim {
            // Lock order: plane state, then sim — the same order the
            // barrier completer uses.
            let mut st = self.plane.lock();
            let t = sim.lock().expect("sim poisoned").time(self.rank);
            st.overlap_base[self.rank] = Some(t);
        }
    }

    /// Parks the calling rank until mail (or a barrier completion)
    /// may have arrived, or the deadline passes — the blocking glue
    /// between nonblocking `step` attempts.
    fn park(&self, op: &'static str, deadline_at: Instant) -> Result<(), RuntimeError> {
        let plane = &self.plane;
        let mut st = plane.lock();
        let now = Instant::now();
        if now >= deadline_at {
            return Err(self.timeout(op, &mut st));
        }
        let mut wait = (deadline_at - now).min(Duration::from_millis(50));
        if let Some(ready_in) = self.next_delay_wakeup(&st) {
            wait = wait.min(ready_in);
        }
        let _ = plane
            .cv
            .wait_timeout(st, wait)
            .expect("runtime plane poisoned");
        Ok(())
    }
}
