//! The [`Communicator`] trait and its threaded/simulated backends.
//!
//! # Architecture
//!
//! Both backends run rank closures on real OS threads over one shared
//! **data plane** (per-rank mailboxes plus a death-aware
//! sense-reversing barrier). The difference is the clock:
//!
//! * the **thread** backend times operations with wall clocks — real
//!   in-process parallelism, the successor of the deprecated
//!   `fupermod_platform::ThreadComm`;
//! * the **sim** backend additionally drives a Hockney-model
//!   [`SimComm`] (`α + m/β` virtual clocks): every collective is
//!   executed BSP-style (data phase, then a closing barrier) and the
//!   barrier *completer* applies the collective's virtual-time charge
//!   while holding the barrier lock, so for collective-structured
//!   programs the virtual clocks are **deterministic** across runs and
//!   thread schedules.
//!
//! Point-to-point charges in the sim backend are applied by the
//! receiver at delivery; concurrent transfers over disjoint rank pairs
//! commute, so p2p phases that only use disjoint pairs (or that are
//! separated by barriers) stay deterministic too.
//!
//! # Faults and deadlines
//!
//! A [`FaultPlan`] injects message delays, counted
//! message drops (with bounded exponential-backoff retry), straggler
//! latency, and rank death. Every blocking operation carries a
//! deadline ([`DEFAULT_DEADLINE_SECS`] unless the plan overrides it);
//! a rank that exceeds it **fail-stops**: it marks itself dead, wakes
//! every waiter, and returns [`RuntimeError::Timeout`] — the rest of
//! the job observes [`RuntimeError::RankDead`] instead of hanging.
//! Collectives skip dead receivers and deliver posthumous messages
//! (a rank that sent before dying still contributes).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fupermod_core::trace::{null_sink, TraceEvent, TraceSink};
use fupermod_platform::comm::{LinkModel, SimComm, Topology};

use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::wire::Wire;

/// Default per-operation deadline, seconds, when the fault plan does
/// not override it. Generous enough for real benchmarking workloads,
/// small enough that an accidental deadlock fails the test gate
/// instead of hanging it.
pub const DEFAULT_DEADLINE_SECS: f64 = 30.0;

/// Cap on any single injected wall-clock sleep (delay, backoff or
/// straggler latency), seconds. Virtual-clock charges are not capped.
const MAX_WALL_SLEEP_SECS: f64 = 1.0;

/// Reduction operator for [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum contribution.
    Min,
    /// Maximum contribution.
    Max,
}

impl ReduceOp {
    fn fold(self, acc: f64, x: f64) -> f64 {
        match self {
            ReduceOp::Sum => acc + x,
            ReduceOp::Min => acc.min(x),
            ReduceOp::Max => acc.max(x),
        }
    }
}

/// An MPI-style communicator: rank/size, typed point-to-point
/// messaging, and the collectives the FuPerMod algorithms need.
///
/// The API shape follows `rsmpi`: `bcast`/`scatterv` take the payload
/// on the root only, `gatherv` returns it on the root only. All
/// operations return typed [`RuntimeError`]s — never panic, never
/// hang (a per-operation deadline fail-stops the violator).
pub trait Communicator {
    /// This process's rank, `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Liveness snapshot: `alive()[r]` is `false` once rank `r` died.
    fn alive(&self) -> Vec<bool>;

    /// Sends `value` to rank `dst`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] if either endpoint is dead,
    /// [`RuntimeError::RetriesExhausted`] under an exhausting drop
    /// rule, [`RuntimeError::InvalidRank`] for `dst >= size`.
    fn send<T: Wire>(&mut self, dst: usize, value: &T) -> Result<(), RuntimeError>;

    /// Receives the next message from rank `src` (per-pair FIFO).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] if `src` died with no message
    /// pending, [`RuntimeError::Timeout`] past the deadline,
    /// [`RuntimeError::Decode`] on a type mismatch.
    fn recv<T: Wire>(&mut self, src: usize) -> Result<T, RuntimeError>;

    /// Synchronises all live ranks.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] past the deadline (the caller
    /// fail-stops), [`RuntimeError::RankDead`] if called while dead.
    fn barrier(&mut self) -> Result<(), RuntimeError>;

    /// Broadcasts from `root`: the root passes `Some(value)` and every
    /// live rank (root included) receives it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] if `root` is dead; `App` if the
    /// root passes `None`.
    fn bcast<T: Wire>(&mut self, root: usize, value: Option<&T>) -> Result<T, RuntimeError>;

    /// Scatters one part per rank from `root` (root passes
    /// `Some(parts)` with exactly `size` entries).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::SizeMismatch`] for a wrong arity on the root;
    /// otherwise as [`Communicator::bcast`].
    fn scatterv<T: Wire>(&mut self, root: usize, parts: Option<&[T]>) -> Result<T, RuntimeError>;

    /// Gathers one value per rank onto `root`; returns `Some(values)`
    /// on the root and `None` elsewhere. Strict: a dead contributor
    /// is an error (use [`Communicator::gather_available`] to
    /// degrade gracefully).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] on the root if a contributor died.
    fn gatherv<T: Wire>(&mut self, root: usize, value: &T)
        -> Result<Option<Vec<T>>, RuntimeError>;

    /// Fault-tolerant gather: like [`Communicator::gatherv`] but a
    /// dead contributor yields `None` in its slot instead of an
    /// error — the degradation hook the distributed executor uses.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] / [`RuntimeError::RankDead`] for
    /// failures of the caller itself.
    fn gather_available<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError>;

    /// All ranks contribute one value and receive everyone's, in rank
    /// order. Requires rank 0 (the hub) alive; strict like
    /// [`Communicator::gatherv`].
    ///
    /// # Errors
    ///
    /// As [`Communicator::gatherv`] plus hub-death errors.
    fn allgatherv<T: Wire>(&mut self, value: &T) -> Result<Vec<T>, RuntimeError>;

    /// Reduces one `f64` per live rank with `op`; every live rank
    /// receives the result. Dead ranks' contributions are omitted.
    ///
    /// # Errors
    ///
    /// As [`Communicator::allgatherv`].
    fn allreduce(&mut self, value: f64, op: ReduceOp) -> Result<f64, RuntimeError>;
}

/// Which clock a [`ThreadedComm`] runs on.
#[derive(Debug, Clone)]
enum ClockMode {
    /// Wall clocks (real concurrency).
    Wall,
    /// Hockney virtual clocks driven by a [`SimComm`].
    Sim,
}

/// Configuration for building a set of communicator handles.
///
/// ```
/// use fupermod_runtime::{RuntimeConfig, Communicator};
/// let comms = RuntimeConfig::thread().build(2);
/// assert_eq!(comms[1].rank(), 1);
/// ```
pub struct RuntimeConfig {
    plan: FaultPlan,
    sink: Arc<dyn TraceSink>,
    sim: Option<Topology>,
}

impl std::fmt::Debug for RuntimeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("plan", &self.plan)
            .field("sim", &self.sim.is_some())
            .finish_non_exhaustive()
    }
}

impl RuntimeConfig {
    /// The threaded (wall-clock) backend.
    pub fn thread() -> Self {
        Self {
            plan: FaultPlan::none(),
            sink: Arc::new(*null_sink()),
            sim: None,
        }
    }

    /// The simulated backend over a flat topology with `link`.
    pub fn sim(size: usize, link: LinkModel) -> Self {
        Self::sim_topology(Topology::flat(size, link))
    }

    /// The simulated backend over an explicit topology.
    pub fn sim_topology(topo: Topology) -> Self {
        Self {
            plan: FaultPlan::none(),
            sink: Arc::new(*null_sink()),
            sim: Some(topo),
        }
    }

    /// Attaches a fault plan.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Routes `comm`/`fault` trace events to `sink`.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    pub(crate) fn plan_ref(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn sink_ref(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// Builds `size` connected rank handles.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or a sim topology of a different size
    /// was configured.
    pub fn build(self, size: usize) -> Vec<ThreadedComm> {
        self.build_with_handle(size).0
    }

    /// Builds rank handles plus a [`RuntimeHandle`] for inspecting the
    /// shared state (virtual clocks, liveness) after the run.
    ///
    /// # Panics
    ///
    /// As [`RuntimeConfig::build`].
    pub fn build_with_handle(self, size: usize) -> (Vec<ThreadedComm>, RuntimeHandle) {
        assert!(size > 0, "communicator needs at least one rank");
        let sim = self.sim.map(|topo| {
            assert_eq!(topo.size(), size, "sim topology size mismatch");
            Mutex::new(SimComm::with_topology(topo))
        });
        let deadline = self.plan.deadline.unwrap_or(DEFAULT_DEADLINE_SECS);
        let plane = Arc::new(Plane {
            size,
            state: Mutex::new(PlaneState {
                mail: (0..size).map(|_| VecDeque::new()).collect(),
                dead: vec![false; size],
                arrived: 0,
                generation: 0,
                pending_charge: None,
                ops: vec![0; size],
                delay_counts: vec![0; self.plan.delays.len()],
                drop_counts: vec![0; self.plan.drops.len()],
            }),
            cv: Condvar::new(),
            mode: if sim.is_some() {
                ClockMode::Sim
            } else {
                ClockMode::Wall
            },
            sim,
            plan: self.plan,
            deadline: Duration::from_secs_f64(deadline),
            deadline_secs: deadline,
            sink: self.sink,
        });
        let comms = (0..size)
            .map(|rank| ThreadedComm {
                rank,
                plane: Arc::clone(&plane),
            })
            .collect();
        (comms, RuntimeHandle { plane })
    }
}

/// A view onto the shared runtime state that outlives the rank
/// handles — read the virtual clocks and liveness after a run.
#[derive(Clone)]
pub struct RuntimeHandle {
    plane: Arc<Plane>,
}

impl std::fmt::Debug for RuntimeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeHandle")
            .field("size", &self.plane.size)
            .finish_non_exhaustive()
    }
}

impl RuntimeHandle {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.plane.size
    }

    /// Liveness snapshot.
    pub fn alive(&self) -> Vec<bool> {
        let st = self.plane.lock();
        st.dead.iter().map(|&d| !d).collect()
    }

    /// Ranks that have died, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        let st = self.plane.lock();
        st.dead
            .iter()
            .enumerate()
            .filter_map(|(r, &d)| d.then_some(r))
            .collect()
    }

    /// Maximum virtual time across ranks (sim backend only).
    pub fn virtual_time(&self) -> Option<f64> {
        self.plane
            .sim
            .as_ref()
            .map(|s| s.lock().expect("sim poisoned").max_time())
    }

    /// Total virtual seconds spent communicating (sim backend only).
    pub fn virtual_comm_seconds(&self) -> Option<f64> {
        self.plane
            .sim
            .as_ref()
            .map(|s| s.lock().expect("sim poisoned").comm_seconds())
    }
}

struct Envelope {
    src: usize,
    bytes: Vec<u8>,
    /// Injected delivery delay, seconds (0 = none). Wall mode holds
    /// the message until `sent_at + delay`; sim mode delivers
    /// immediately and charges the receiver's virtual clock.
    delay: f64,
    sent_at: Instant,
}

/// A virtual-time charge for one collective, deposited by its root
/// and applied atomically by the closing barrier's completer.
enum Charge {
    Barrier,
    Bcast { root: usize, bytes: f64 },
    Scatterv { root: usize, bytes: Vec<f64> },
    Gatherv { root: usize, bytes: Vec<f64> },
    Allgatherv { bytes: Vec<f64> },
    Allreduce { bytes: f64 },
}

struct PlaneState {
    mail: Vec<VecDeque<Envelope>>,
    dead: Vec<bool>,
    arrived: usize,
    generation: u64,
    pending_charge: Option<Charge>,
    ops: Vec<u64>,
    delay_counts: Vec<u64>,
    drop_counts: Vec<u64>,
}

impl PlaneState {
    fn live_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }
}

struct Plane {
    size: usize,
    state: Mutex<PlaneState>,
    cv: Condvar,
    mode: ClockMode,
    sim: Option<Mutex<SimComm>>,
    plan: FaultPlan,
    deadline: Duration,
    deadline_secs: f64,
    sink: Arc<dyn TraceSink>,
}

impl Plane {
    fn lock(&self) -> MutexGuard<'_, PlaneState> {
        self.state.lock().expect("runtime plane poisoned")
    }

    fn fault(&self, rank: usize, kind: &str, peer: i64, attempt: u32, seconds: f64) {
        self.sink.record(&TraceEvent::Fault {
            rank,
            kind: kind.to_owned(),
            peer,
            attempt,
            seconds,
        });
    }

    /// Completes the current barrier generation: applies the pending
    /// virtual-time charge (while holding the state lock, so charges
    /// form one deterministic sequence) and wakes everyone.
    fn complete_generation(&self, st: &mut PlaneState) {
        st.arrived = 0;
        st.generation = st.generation.wrapping_add(1);
        if let Some(charge) = st.pending_charge.take() {
            if let Some(sim) = &self.sim {
                let mut sim = sim.lock().expect("sim poisoned");
                apply_charge(&mut sim, &charge);
            }
        }
        self.cv.notify_all();
    }

    /// Marks `rank` dead (fail-stop), completes a barrier the death
    /// unblocks, and wakes every waiter.
    fn mark_dead(&self, st: &mut PlaneState, rank: usize) {
        if st.dead[rank] {
            return;
        }
        st.dead[rank] = true;
        if st.arrived > 0 && st.arrived >= st.live_count() {
            self.complete_generation(st);
        }
        self.cv.notify_all();
    }

    /// Charges `seconds` of injected latency to `rank`: virtual time
    /// in sim mode, a (capped) wall sleep in thread mode. Call
    /// without holding the state lock in wall mode.
    fn charge_latency(&self, rank: usize, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        match self.mode {
            ClockMode::Sim => {
                if let Some(sim) = &self.sim {
                    sim.lock().expect("sim poisoned").advance(rank, seconds);
                }
            }
            ClockMode::Wall => {
                std::thread::sleep(Duration::from_secs_f64(
                    seconds.min(MAX_WALL_SLEEP_SECS),
                ));
            }
        }
    }

    fn virtual_time_of(&self, rank: usize) -> f64 {
        self.sim
            .as_ref()
            .map_or(0.0, |s| s.lock().expect("sim poisoned").time(rank))
    }
}

fn apply_charge(sim: &mut SimComm, charge: &Charge) {
    match charge {
        Charge::Barrier => sim.barrier(),
        Charge::Bcast { root, bytes } => sim.bcast(*root, *bytes),
        Charge::Scatterv { root, bytes } => sim
            .scatterv(*root, bytes)
            .expect("charge arity is communicator-sized by construction"),
        Charge::Gatherv { root, bytes } => sim
            .gatherv(*root, bytes)
            .expect("charge arity is communicator-sized by construction"),
        Charge::Allgatherv { bytes } => sim
            .allgatherv(bytes)
            .expect("charge arity is communicator-sized by construction"),
        Charge::Allreduce { bytes } => sim.allreduce(*bytes),
    }
}

/// A per-rank handle onto the shared threaded/simulated runtime.
///
/// Handles are built by [`RuntimeConfig::build`] and moved onto rank
/// threads (see [`run_ranks`]). All methods are available through the
/// [`Communicator`] trait.
pub struct ThreadedComm {
    rank: usize,
    plane: Arc<Plane>,
}

impl std::fmt::Debug for ThreadedComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedComm")
            .field("rank", &self.rank)
            .field("size", &self.plane.size)
            .finish_non_exhaustive()
    }
}

/// Everything an op needs to finish: start stamps for the trace event.
struct OpStart {
    wall: Instant,
    virt: f64,
}

impl ThreadedComm {
    /// This rank's current virtual time (sim backend; `None` on the
    /// thread backend).
    pub fn virtual_time(&self) -> Option<f64> {
        self.plane
            .sim
            .as_ref()
            .map(|s| s.lock().expect("sim poisoned").time(self.rank))
    }

    /// Whether `rank` is still alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        let st = self.plane.lock();
        rank < self.plane.size && !st.dead[rank]
    }

    fn check_rank(&self, op: &'static str, rank: usize) -> Result<(), RuntimeError> {
        if rank >= self.plane.size {
            return Err(RuntimeError::InvalidRank {
                op,
                rank,
                size: self.plane.size,
            });
        }
        Ok(())
    }

    /// Common op prologue: self-death check, op counting, scheduled
    /// death, straggler latency. Returns the start stamps.
    fn op_begin(&self, op: &'static str) -> Result<OpStart, RuntimeError> {
        let plane = &self.plane;
        {
            let mut st = plane.lock();
            if st.dead[self.rank] {
                return Err(RuntimeError::RankDead {
                    op,
                    rank: self.rank,
                });
            }
            st.ops[self.rank] += 1;
            if let Some(after) = plane.plan.death_after(self.rank) {
                if st.ops[self.rank] > after {
                    plane.mark_dead(&mut st, self.rank);
                    drop(st);
                    plane.fault(self.rank, "death", -1, 0, 0.0);
                    return Err(RuntimeError::RankDead {
                        op,
                        rank: self.rank,
                    });
                }
            }
        }
        let straggle = plane.plan.straggler_comm_seconds(self.rank);
        if straggle > 0.0 {
            plane.fault(self.rank, "straggler", -1, 0, straggle);
            plane.charge_latency(self.rank, straggle);
        }
        Ok(OpStart {
            wall: Instant::now(),
            virt: plane.virtual_time_of(self.rank),
        })
    }

    /// Common op epilogue: emits the schema-v2 `comm` trace event.
    fn op_end(&self, op: &'static str, peer: i64, bytes: u64, start: &OpStart) {
        let seconds = match self.plane.mode {
            ClockMode::Wall => start.wall.elapsed().as_secs_f64(),
            ClockMode::Sim => self.plane.virtual_time_of(self.rank) - start.virt,
        };
        self.plane.sink.record(&TraceEvent::Comm {
            rank: self.rank,
            op: op.to_owned(),
            peer,
            bytes,
            seconds,
        });
    }

    /// Fail-stop on a deadline violation.
    fn timeout(&self, op: &'static str, st: &mut PlaneState) -> RuntimeError {
        self.plane.mark_dead(st, self.rank);
        self.plane
            .fault(self.rank, "timeout", -1, 0, self.plane.deadline_secs);
        RuntimeError::Timeout {
            op,
            rank: self.rank,
            deadline: self.plane.deadline_secs,
        }
    }

    /// Enqueues `bytes` to `dst`, evaluating drop and delay rules.
    /// Does not charge virtual time (p2p charges happen at delivery;
    /// collective data phases are charged by their closing barrier).
    fn raw_send(&self, op: &'static str, dst: usize, bytes: Vec<u8>) -> Result<(), RuntimeError> {
        let plane = &self.plane;
        let mut attempt: u32 = 0;
        loop {
            let mut st = plane.lock();
            if st.dead[self.rank] {
                return Err(RuntimeError::RankDead {
                    op,
                    rank: self.rank,
                });
            }
            if st.dead[dst] {
                return Err(RuntimeError::RankDead { op, rank: dst });
            }
            // First matching drop rule governs this attempt.
            let mut dropped: Option<(u32, f64)> = None;
            for (i, rule) in plane.plan.drops.iter().enumerate() {
                if rule.src.is_none_or(|s| s == self.rank) && rule.dst.is_none_or(|d| d == dst) {
                    st.drop_counts[i] += 1;
                    if st.drop_counts[i].is_multiple_of(rule.every) {
                        let backoff =
                            rule.backoff_seconds * f64::from(1u32 << attempt.min(16));
                        dropped = Some((rule.max_retries, backoff));
                    }
                    break;
                }
            }
            if let Some((max_retries, backoff)) = dropped {
                drop(st);
                plane.fault(self.rank, "drop", dst as i64, attempt, 0.0);
                if attempt >= max_retries {
                    return Err(RuntimeError::RetriesExhausted {
                        op,
                        src: self.rank,
                        dst,
                        attempts: attempt + 1,
                    });
                }
                attempt += 1;
                plane.fault(self.rank, "retry", dst as i64, attempt, backoff);
                plane.charge_latency(self.rank, backoff);
                continue;
            }
            // First matching delay rule governs this message.
            let mut delay = 0.0;
            for (i, rule) in plane.plan.delays.iter().enumerate() {
                if rule.src.is_none_or(|s| s == self.rank) && rule.dst.is_none_or(|d| d == dst) {
                    st.delay_counts[i] += 1;
                    if st.delay_counts[i].is_multiple_of(rule.every) {
                        delay = rule.seconds;
                    }
                    break;
                }
            }
            st.mail[dst].push_back(Envelope {
                src: self.rank,
                bytes,
                delay,
                sent_at: Instant::now(),
            });
            plane.cv.notify_all();
            drop(st);
            if delay > 0.0 {
                plane.fault(self.rank, "delay", dst as i64, 0, delay);
            }
            return Ok(());
        }
    }

    /// Dequeues the next message from `src` (per-pair FIFO), waiting
    /// up to the deadline. `charge_p2p` applies the Hockney p2p cost
    /// at delivery (public `recv`); collective data phases pass
    /// `false` and are charged by their closing barrier instead.
    fn raw_recv(
        &self,
        op: &'static str,
        src: usize,
        charge_p2p: bool,
    ) -> Result<Vec<u8>, RuntimeError> {
        let plane = &self.plane;
        let deadline_at = Instant::now() + plane.deadline;
        let mut st = plane.lock();
        loop {
            if st.dead[self.rank] {
                return Err(RuntimeError::RankDead {
                    op,
                    rank: self.rank,
                });
            }
            if let Some(idx) = st.mail[self.rank].iter().position(|e| e.src == src) {
                let ready = match plane.mode {
                    ClockMode::Sim => true,
                    ClockMode::Wall => {
                        let env = &st.mail[self.rank][idx];
                        env.delay <= 0.0
                            || env.sent_at.elapsed().as_secs_f64() >= env.delay
                    }
                };
                if ready {
                    let env = st.mail[self.rank].remove(idx).expect("index just found");
                    drop(st);
                    if let Some(sim) = &plane.sim {
                        let mut sim = sim.lock().expect("sim poisoned");
                        if charge_p2p {
                            sim.send(src, self.rank, env.bytes.len() as f64);
                        }
                        if env.delay > 0.0 {
                            sim.advance(self.rank, env.delay);
                        }
                    }
                    return Ok(env.bytes);
                }
            } else if st.dead[src] {
                return Err(RuntimeError::RankDead { op, rank: src });
            }
            let now = Instant::now();
            if now >= deadline_at {
                return Err(self.timeout(op, &mut st));
            }
            let wait = (deadline_at - now).min(Duration::from_millis(50));
            let (guard, _) = plane
                .cv
                .wait_timeout(st, wait)
                .expect("runtime plane poisoned");
            st = guard;
        }
    }

    /// Sense-reversing, death-aware barrier. `default_charge` is
    /// deposited if no collective already deposited one (used by the
    /// public `barrier`).
    fn raw_barrier(
        &self,
        op: &'static str,
        default_charge: Option<Charge>,
    ) -> Result<(), RuntimeError> {
        let plane = &self.plane;
        let deadline_at = Instant::now() + plane.deadline;
        let mut st = plane.lock();
        if st.dead[self.rank] {
            return Err(RuntimeError::RankDead {
                op,
                rank: self.rank,
            });
        }
        if let Some(charge) = default_charge {
            if st.pending_charge.is_none() {
                st.pending_charge = Some(charge);
            }
        }
        st.arrived += 1;
        let gen = st.generation;
        if st.arrived >= st.live_count() {
            plane.complete_generation(&mut st);
            return Ok(());
        }
        loop {
            let now = Instant::now();
            if now >= deadline_at {
                st.arrived = st.arrived.saturating_sub(1);
                return Err(self.timeout(op, &mut st));
            }
            let wait = (deadline_at - now).min(Duration::from_millis(50));
            let (guard, _) = plane
                .cv
                .wait_timeout(st, wait)
                .expect("runtime plane poisoned");
            st = guard;
            if st.generation != gen {
                return Ok(());
            }
            if st.arrived >= st.live_count() {
                plane.complete_generation(&mut st);
                return Ok(());
            }
        }
    }

    /// Liveness snapshot under the lock.
    fn alive_snapshot(&self) -> Vec<bool> {
        let st = self.plane.lock();
        st.dead.iter().map(|&d| !d).collect()
    }

    fn decode_as<T: Wire>(op: &'static str, bytes: &[u8]) -> Result<T, RuntimeError> {
        T::decode(bytes).map_err(|e| match e {
            RuntimeError::Decode { detail, .. } => RuntimeError::Decode { what: op, detail },
            other => other,
        })
    }

    /// Hub-side gather core shared by `gatherv`, `gather_available`,
    /// `allgatherv` and `allreduce`: returns each live rank's payload
    /// (`None` for dead contributors).
    fn collect_payloads(
        &self,
        op: &'static str,
        own: &[u8],
    ) -> Result<Vec<Option<Vec<u8>>>, RuntimeError> {
        let mut slots: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.plane.size);
        for src in 0..self.plane.size {
            if src == self.rank {
                slots.push(Some(own.to_vec()));
                continue;
            }
            match self.raw_recv(op, src, false) {
                Ok(bytes) => slots.push(Some(bytes)),
                Err(RuntimeError::RankDead { rank, .. }) if rank == src => slots.push(None),
                Err(other) => return Err(other),
            }
        }
        Ok(slots)
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.plane.size
    }

    fn alive(&self) -> Vec<bool> {
        self.alive_snapshot()
    }

    fn send<T: Wire>(&mut self, dst: usize, value: &T) -> Result<(), RuntimeError> {
        const OP: &str = "send";
        self.check_rank(OP, dst)?;
        let start = self.op_begin(OP)?;
        let bytes = value.to_bytes();
        let n = bytes.len() as u64;
        self.raw_send(OP, dst, bytes)?;
        self.op_end(OP, dst as i64, n, &start);
        Ok(())
    }

    fn recv<T: Wire>(&mut self, src: usize) -> Result<T, RuntimeError> {
        const OP: &str = "recv";
        self.check_rank(OP, src)?;
        let start = self.op_begin(OP)?;
        let bytes = self.raw_recv(OP, src, true)?;
        let value = Self::decode_as::<T>(OP, &bytes)?;
        self.op_end(OP, src as i64, bytes.len() as u64, &start);
        Ok(value)
    }

    fn barrier(&mut self) -> Result<(), RuntimeError> {
        const OP: &str = "barrier";
        let start = self.op_begin(OP)?;
        self.raw_barrier(OP, Some(Charge::Barrier))?;
        self.op_end(OP, -1, 0, &start);
        Ok(())
    }

    fn bcast<T: Wire>(&mut self, root: usize, value: Option<&T>) -> Result<T, RuntimeError> {
        const OP: &str = "bcast";
        self.check_rank(OP, root)?;
        let start = self.op_begin(OP)?;
        let (result, bytes_moved) = if self.rank == root {
            let value = value.ok_or_else(|| {
                RuntimeError::App("bcast: root must supply Some(value)".to_owned())
            })?;
            let bytes = value.to_bytes();
            let alive = self.alive_snapshot();
            for (dst, &ok) in alive.iter().enumerate() {
                if dst == self.rank || !ok {
                    continue;
                }
                match self.raw_send(OP, dst, bytes.clone()) {
                    Ok(()) => {}
                    Err(RuntimeError::RankDead { rank, .. }) if rank == dst => {}
                    Err(other) => return Err(other),
                }
            }
            {
                let mut st = self.plane.lock();
                st.pending_charge = Some(Charge::Bcast {
                    root,
                    bytes: bytes.len() as f64,
                });
            }
            (Self::decode_as::<T>(OP, &bytes)?, bytes.len() as u64)
        } else {
            let bytes = self.raw_recv(OP, root, false)?;
            (Self::decode_as::<T>(OP, &bytes)?, bytes.len() as u64)
        };
        self.raw_barrier(OP, None)?;
        self.op_end(OP, root as i64, bytes_moved, &start);
        Ok(result)
    }

    fn scatterv<T: Wire>(&mut self, root: usize, parts: Option<&[T]>) -> Result<T, RuntimeError> {
        const OP: &str = "scatterv";
        self.check_rank(OP, root)?;
        let start = self.op_begin(OP)?;
        let (result, bytes_moved) = if self.rank == root {
            let parts = parts.ok_or_else(|| {
                RuntimeError::App("scatterv: root must supply Some(parts)".to_owned())
            })?;
            if parts.len() != self.plane.size {
                return Err(RuntimeError::SizeMismatch {
                    op: OP,
                    expected: self.plane.size,
                    got: parts.len(),
                });
            }
            let encoded: Vec<Vec<u8>> = parts.iter().map(Wire::to_bytes).collect();
            let alive = self.alive_snapshot();
            let mut charge = vec![0.0; self.plane.size];
            let mut sent = 0u64;
            for (dst, (&ok, bytes)) in alive.iter().zip(&encoded).enumerate() {
                if dst == self.rank || !ok {
                    continue;
                }
                match self.raw_send(OP, dst, bytes.clone()) {
                    Ok(()) => {
                        charge[dst] = bytes.len() as f64;
                        sent += bytes.len() as u64;
                    }
                    Err(RuntimeError::RankDead { rank, .. }) if rank == dst => {}
                    Err(other) => return Err(other),
                }
            }
            {
                let mut st = self.plane.lock();
                st.pending_charge = Some(Charge::Scatterv {
                    root,
                    bytes: charge,
                });
            }
            (Self::decode_as::<T>(OP, &encoded[self.rank])?, sent)
        } else {
            let bytes = self.raw_recv(OP, root, false)?;
            (Self::decode_as::<T>(OP, &bytes)?, bytes.len() as u64)
        };
        self.raw_barrier(OP, None)?;
        self.op_end(OP, root as i64, bytes_moved, &start);
        Ok(result)
    }

    fn gatherv<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<T>>, RuntimeError> {
        const OP: &str = "gatherv";
        match self.gather_impl(OP, root, value, false)? {
            None => Ok(None),
            Some(slots) => {
                let mut out = Vec::with_capacity(slots.len());
                for (rank, slot) in slots.into_iter().enumerate() {
                    match slot {
                        Some(v) => out.push(v),
                        None => return Err(RuntimeError::RankDead { op: OP, rank }),
                    }
                }
                Ok(Some(out))
            }
        }
    }

    fn gather_available<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError> {
        self.gather_impl("gatherv", root, value, true)
    }

    fn allgatherv<T: Wire>(&mut self, value: &T) -> Result<Vec<T>, RuntimeError> {
        const OP: &str = "allgatherv";
        let start = self.op_begin(OP)?;
        let own = value.to_bytes();
        let hub = 0usize;
        let mut lens = vec![0.0; self.plane.size];
        let result;
        let mut bytes_moved = own.len() as u64;
        if self.rank == hub {
            let slots = self.collect_payloads(OP, &own)?;
            let mut values = Vec::with_capacity(slots.len());
            let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(slots.len());
            for (rank, slot) in slots.into_iter().enumerate() {
                match slot {
                    Some(bytes) => {
                        lens[rank] = bytes.len() as f64;
                        values.push(Self::decode_as::<T>(OP, &bytes)?);
                        payloads.push(bytes);
                    }
                    None => return Err(RuntimeError::RankDead { op: OP, rank }),
                }
            }
            // Length-prefixed framing so zero-size payloads still
            // yield one slot per rank.
            let blob = payloads.to_bytes();
            let alive = self.alive_snapshot();
            for (dst, &ok) in alive.iter().enumerate() {
                if dst == hub || !ok {
                    continue;
                }
                match self.raw_send(OP, dst, blob.clone()) {
                    Ok(()) => {}
                    Err(RuntimeError::RankDead { rank, .. }) if rank == dst => {}
                    Err(other) => return Err(other),
                }
            }
            {
                let mut st = self.plane.lock();
                st.pending_charge = Some(Charge::Allgatherv { bytes: lens });
            }
            result = values;
        } else {
            match self.raw_send(OP, hub, own) {
                Ok(()) => {}
                Err(other) => return Err(other),
            }
            let blob = self.raw_recv(OP, hub, false)?;
            bytes_moved += blob.len() as u64;
            let payloads: Vec<Vec<u8>> = Self::decode_as(OP, &blob)?;
            let mut values = Vec::with_capacity(payloads.len());
            for bytes in &payloads {
                values.push(Self::decode_as::<T>(OP, bytes)?);
            }
            result = values;
        }
        self.raw_barrier(OP, None)?;
        self.op_end(OP, -1, bytes_moved, &start);
        Ok(result)
    }

    fn allreduce(&mut self, value: f64, op: ReduceOp) -> Result<f64, RuntimeError> {
        const OP: &str = "allreduce";
        let start = self.op_begin(OP)?;
        let hub = 0usize;
        let own = value.to_bytes();
        let result;
        if self.rank == hub {
            let slots = self.collect_payloads(OP, &own)?;
            let mut acc: Option<f64> = None;
            for slot in slots.iter().flatten() {
                let x = Self::decode_as::<f64>(OP, slot)?;
                acc = Some(match acc {
                    None => x,
                    Some(a) => op.fold(a, x),
                });
            }
            let folded = acc.expect("hub contributes at least itself");
            let bytes = folded.to_bytes();
            let alive = self.alive_snapshot();
            for (dst, &ok) in alive.iter().enumerate() {
                if dst == hub || !ok {
                    continue;
                }
                match self.raw_send(OP, dst, bytes.clone()) {
                    Ok(()) => {}
                    Err(RuntimeError::RankDead { rank, .. }) if rank == dst => {}
                    Err(other) => return Err(other),
                }
            }
            {
                let mut st = self.plane.lock();
                st.pending_charge = Some(Charge::Allreduce { bytes: 8.0 });
            }
            result = folded;
        } else {
            self.raw_send(OP, hub, own)?;
            let bytes = self.raw_recv(OP, hub, false)?;
            result = Self::decode_as::<f64>(OP, &bytes)?;
        }
        self.raw_barrier(OP, None)?;
        self.op_end(OP, -1, 8, &start);
        Ok(result)
    }
}

impl ThreadedComm {
    /// Shared implementation of `gatherv`/`gather_available`.
    fn gather_impl<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        value: &T,
        _tolerant: bool,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError> {
        self.check_rank(op, root)?;
        let start = self.op_begin(op)?;
        let own = value.to_bytes();
        let mut bytes_moved = own.len() as u64;
        let result = if self.rank == root {
            let slots = self.collect_payloads(op, &own)?;
            let mut lens = vec![0.0; self.plane.size];
            let mut values = Vec::with_capacity(slots.len());
            for (rank, slot) in slots.into_iter().enumerate() {
                match slot {
                    Some(bytes) => {
                        lens[rank] = bytes.len() as f64;
                        bytes_moved += bytes.len() as u64;
                        values.push(Some(Self::decode_as::<T>(op, &bytes)?));
                    }
                    None => values.push(None),
                }
            }
            {
                let mut st = self.plane.lock();
                st.pending_charge = Some(Charge::Gatherv { root, bytes: lens });
            }
            Some(values)
        } else {
            match self.raw_send(op, root, own) {
                Ok(()) => {}
                // Root death is fatal for a gather.
                Err(other) => return Err(other),
            }
            None
        };
        self.raw_barrier(op, None)?;
        self.op_end(op, root as i64, bytes_moved, &start);
        Ok(result)
    }
}

/// Runs one closure per rank on scoped threads and returns their
/// results in rank order. The closure receives the rank's
/// communicator handle by value.
///
/// # Panics
///
/// Propagates a panicking rank closure.
pub fn run_ranks<R, F>(comms: Vec<ThreadedComm>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadedComm) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(json: &str) -> FaultPlan {
        FaultPlan::from_json(json).unwrap()
    }

    fn fast_plan() -> FaultPlan {
        plan(r#"{"deadline": 5.0}"#)
    }

    #[test]
    fn send_recv_round_trip() {
        let comms = RuntimeConfig::thread()
            .with_plan(fast_plan())
            .build(2);
        let out = run_ranks(comms, |mut c| -> Result<Option<Vec<f64>>, RuntimeError> {
            if c.rank() == 0 {
                c.send(1, &vec![1.0f64, 2.0, 3.0])?;
                Ok(None)
            } else {
                Ok(Some(c.recv::<Vec<f64>>(0)?))
            }
        });
        assert_eq!(out[1].as_ref().unwrap().as_ref().unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(2);
        let out = run_ranks(comms, |mut c| -> Result<Vec<u64>, RuntimeError> {
            if c.rank() == 0 {
                for i in 0..10u64 {
                    c.send(1, &i)?;
                }
                Ok(vec![])
            } else {
                (0..10).map(|_| c.recv::<u64>(0)).collect()
            }
        });
        assert_eq!(out[1].as_ref().unwrap(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn collectives_on_thread_backend() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(4);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            let r = c.rank();
            // bcast from a non-zero root.
            let v = c.bcast(2, (r == 2).then_some(&42u64))?;
            assert_eq!(v, 42);
            // scatterv: rank r receives r * 10.
            let parts: Option<Vec<u64>> = (r == 1).then(|| (0..4).map(|i| i * 10).collect());
            let mine = c.scatterv(1, parts.as_deref())?;
            assert_eq!(mine, r as u64 * 10);
            // gatherv back onto 3.
            let gathered = c.gatherv(3, &mine)?;
            if r == 3 {
                assert_eq!(gathered.unwrap(), vec![0, 10, 20, 30]);
            } else {
                assert!(gathered.is_none());
            }
            // allgatherv.
            let all = c.allgatherv(&(r as u64))?;
            assert_eq!(all, vec![0, 1, 2, 3]);
            // allreduce.
            assert_eq!(c.allreduce(r as f64, ReduceOp::Sum)?, 6.0);
            assert_eq!(c.allreduce(r as f64, ReduceOp::Max)?, 3.0);
            assert_eq!(c.allreduce(r as f64, ReduceOp::Min)?, 0.0);
            c.barrier()?;
            Ok(())
        });
        for r in out {
            r.unwrap();
        }
    }

    #[test]
    fn sim_backend_charges_virtual_time_deterministically() {
        let run = || {
            let (comms, handle) = RuntimeConfig::sim(4, LinkModel::ethernet())
                .with_plan(fast_plan())
                .build_with_handle(4);
            let out = run_ranks(comms, |mut c| -> Result<f64, RuntimeError> {
                let r = c.rank();
                let _ = c.bcast(0, (r == 0).then_some(&vec![0.0f64; 128]))?;
                let all = c.allgatherv(&vec![r as f64; 64])?;
                assert_eq!(all.len(), 4, "one contribution per rank");
                assert!(all.iter().all(|v| v.len() == 64));
                let parts: Option<Vec<Vec<f64>>> =
                    (r == 0).then(|| (0..4).map(|i| vec![0.0; 32 * (i + 1)]).collect());
                let mine = c.scatterv(0, parts.as_deref())?;
                assert_eq!(mine.len(), 32 * (r + 1));
                c.barrier()?;
                c.allreduce(1.0, ReduceOp::Sum)
            });
            for r in out {
                assert_eq!(r.unwrap(), 4.0);
            }
            handle.virtual_time().unwrap()
        };
        let t1 = run();
        let t2 = run();
        assert!(t1 > 0.0, "virtual time must advance: {t1}");
        assert_eq!(t1.to_bits(), t2.to_bits(), "sim clocks must be deterministic");
    }

    #[test]
    fn p2p_sim_charge_at_delivery() {
        let (comms, handle) = RuntimeConfig::sim(2, LinkModel::ethernet())
            .with_plan(fast_plan())
            .build_with_handle(2);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                c.send(1, &vec![1.0f64; 1000])?;
            } else {
                let v: Vec<f64> = c.recv(0)?;
                assert_eq!(v.len(), 1000);
                assert!(c.virtual_time().unwrap() > 0.0);
            }
            Ok(())
        });
        for r in out {
            r.unwrap();
        }
        assert!(handle.virtual_time().unwrap() > 0.0);
        assert!(handle.virtual_comm_seconds().unwrap() > 0.0);
    }

    #[test]
    fn invalid_ranks_are_rejected() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(2);
        let out = run_ranks(comms, |mut c| {
            let send = c.send(5, &1u64);
            let bcast = c.bcast::<u64>(9, None);
            (send, bcast)
        });
        for (send, bcast) in out {
            assert!(matches!(send, Err(RuntimeError::InvalidRank { rank: 5, .. })));
            assert!(matches!(bcast, Err(RuntimeError::InvalidRank { rank: 9, .. })));
        }
    }

    #[test]
    fn scatterv_arity_is_checked() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(1);
        let out = run_ranks(comms, |mut c| {
            c.scatterv(0, Some(&[1u64, 2, 3]))
        });
        assert!(matches!(
            out.into_iter().next().unwrap(),
            Err(RuntimeError::SizeMismatch {
                expected: 1,
                got: 3,
                ..
            })
        ));
    }

    #[test]
    fn recv_deadline_fails_instead_of_hanging() {
        let comms = RuntimeConfig::thread()
            .with_plan(plan(r#"{"deadline": 0.2}"#))
            .build(2);
        let out = run_ranks(comms, |mut c| {
            if c.rank() == 0 {
                // Never sends: rank 1 must time out, not hang.
                Ok(0u64)
            } else {
                c.recv::<u64>(0)
            }
        });
        assert!(matches!(
            out[1],
            Err(RuntimeError::Timeout { rank: 1, .. })
        ));
    }
}
