//! The [`Communicator`] trait and its threaded/simulated backends.
//!
//! # Architecture
//!
//! Both backends run rank closures on real OS threads over one shared
//! **data plane** (per-rank mailboxes plus a death-aware
//! sense-reversing barrier). The difference is the clock:
//!
//! * the **thread** backend times operations with wall clocks — real
//!   in-process parallelism, the successor of the old
//!   `fupermod_platform::ThreadComm` (since removed);
//! * the **sim** backend additionally drives a Hockney-model
//!   [`SimComm`] (`α + m/β` virtual clocks): every collective is
//!   executed BSP-style (data phase, then a closing barrier) and the
//!   barrier *completer* applies the collective's virtual-time charge
//!   while holding the barrier lock, so for collective-structured
//!   programs the virtual clocks are **deterministic** across runs and
//!   thread schedules.
//!
//! Point-to-point charges in the sim backend are applied by the
//! receiver at delivery; concurrent transfers over disjoint rank pairs
//! commute, so p2p phases that only use disjoint pairs (or that are
//! separated by barriers) stay deterministic too.
//!
//! # Collective algorithms
//!
//! Every collective is carried by a schedule chosen by the
//! [`AlgorithmPolicy`] on [`RuntimeConfig`] (`hub | ring | tree |
//! auto`, see [`crate::collective`]): the star through one rank that
//! the original runtime hard-wired, a pipelined nearest-neighbour
//! ring, or a binomial tree / recursive-doubling butterfly. The data
//! plane executes the schedule's hops against real mailboxes and the
//! sim backend replays the *same* hop plan through
//! [`SimComm::schedule`], so virtual clocks pay the actual per-round
//! cost — the hub's `O(p·m)` serialisation at one rank versus the
//! tree's `O(log p)` rounds. Results are **bitwise identical across
//! schedules** on fault-free plans: `allreduce` always folds raw
//! contributions in pinned ascending rank order, and all other
//! collectives move opaque encoded payloads.
//!
//! Schedules are built over the **agreed membership**: the live-rank
//! list recorded by the completer of the last barrier generation
//! (`PlaneState::agreed_alive`, internal), which is identical on every
//! rank — no extra agreement round is needed because every collective
//! already ends in a barrier. Deaths settled before the agreement are
//! excluded from the schedule on all ranks consistently; deaths that
//! land *mid-operation* degrade individual edges of the fixed
//! structure (`None` slots downstream) instead of re-shaping it
//! divergently. Rootless collectives therefore no longer die with
//! rank 0: the hub schedule routes through the lowest agreed-live
//! rank and the ring/tree schedules have no hub at all (see
//! [`Communicator::allgatherv_available`]).
//!
//! # Faults and deadlines
//!
//! A [`FaultPlan`] injects message delays, counted
//! message drops (with bounded exponential-backoff retry), straggler
//! latency, and rank death. Every blocking operation carries a
//! deadline ([`DEFAULT_DEADLINE_SECS`] unless the plan overrides it);
//! a rank that exceeds it **fail-stops**: it marks itself dead, wakes
//! every waiter, and returns [`RuntimeError::Timeout`] — the rest of
//! the job observes [`RuntimeError::RankDead`] instead of hanging.
//! Collectives skip dead receivers and deliver posthumous messages
//! (a rank that sent before dying still contributes).
//!
//! # Nonblocking requests
//!
//! The [`request`] submodule adds MPI-style nonblocking operations
//! (`isend`/`irecv`/`ibcast`/`iallgatherv` returning scope-tied
//! request objects with `wait`/`wait_all`/`test`) for
//! compute/communication overlap. Requests borrow the communicator
//! shared, so the `&mut self` blocking operations are statically
//! excluded while any request is outstanding; on the sim backend a
//! request charges its hop plan at *completion* against a clock
//! snapshot taken at *post* time, so each step costs
//! `max(compute, communication)` while fault-free runs stay
//! bit-identical to their blocking twins. Contract and examples in
//! `docs/RUNTIME.md` §8.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fupermod_core::trace::{null_sink, TraceEvent, TraceSink};
use fupermod_platform::comm::{LinkModel, SimComm, Topology};

use crate::collective::{self, AlgorithmPolicy, Resolved, Rounds};
use crate::error::RuntimeError;
use crate::fault::FaultPlan;
use crate::wire::Wire;

pub mod request;

/// Default per-operation deadline, seconds, when the fault plan does
/// not override it. Generous enough for real benchmarking workloads,
/// small enough that an accidental deadlock fails the test gate
/// instead of hanging it.
pub const DEFAULT_DEADLINE_SECS: f64 = 30.0;

/// Cap on any single injected wall-clock sleep (delay, backoff or
/// straggler latency), seconds. Virtual-clock charges are not capped.
const MAX_WALL_SLEEP_SECS: f64 = 1.0;

/// Reduction operator for [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum contribution.
    Min,
    /// Maximum contribution.
    Max,
}

impl ReduceOp {
    pub(crate) fn fold(self, acc: f64, x: f64) -> f64 {
        match self {
            ReduceOp::Sum => acc + x,
            ReduceOp::Min => acc.min(x),
            ReduceOp::Max => acc.max(x),
        }
    }
}

/// An MPI-style communicator: rank/size, typed point-to-point
/// messaging, and the collectives the FuPerMod algorithms need.
///
/// The API shape follows `rsmpi`: `bcast`/`scatterv` take the payload
/// on the root only, `gatherv` returns it on the root only. All
/// operations return typed [`RuntimeError`]s — never panic, never
/// hang (a per-operation deadline fail-stops the violator).
pub trait Communicator {
    /// This process's rank, `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Liveness snapshot: `alive()[r]` is `false` once rank `r` died.
    fn alive(&self) -> Vec<bool>;

    /// Sends `value` to rank `dst`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] if either endpoint is dead,
    /// [`RuntimeError::RetriesExhausted`] under an exhausting drop
    /// rule, [`RuntimeError::InvalidRank`] for `dst >= size`.
    fn send<T: Wire>(&mut self, dst: usize, value: &T) -> Result<(), RuntimeError>;

    /// Receives the next message from rank `src` (per-pair FIFO).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] if `src` died with no message
    /// pending, [`RuntimeError::Timeout`] past the deadline,
    /// [`RuntimeError::Decode`] on a type mismatch.
    fn recv<T: Wire>(&mut self, src: usize) -> Result<T, RuntimeError>;

    /// Synchronises all live ranks.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] past the deadline (the caller
    /// fail-stops), [`RuntimeError::RankDead`] if called while dead.
    fn barrier(&mut self) -> Result<(), RuntimeError>;

    /// Broadcasts from `root`: the root passes `Some(value)` and every
    /// live rank (root included) receives it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] if `root` is dead; `App` if the
    /// root passes `None`.
    fn bcast<T: Wire>(&mut self, root: usize, value: Option<&T>) -> Result<T, RuntimeError>;

    /// Scatters one part per rank from `root` (root passes
    /// `Some(parts)` with exactly `size` entries).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::SizeMismatch`] for a wrong arity on the root;
    /// otherwise as [`Communicator::bcast`].
    fn scatterv<T: Wire>(&mut self, root: usize, parts: Option<&[T]>) -> Result<T, RuntimeError>;

    /// Gathers one value per rank onto `root`; returns `Some(values)`
    /// on the root and `None` elsewhere. Strict: a dead contributor
    /// is an error (use [`Communicator::gather_available`] to
    /// degrade gracefully).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::RankDead`] on the root if a contributor died.
    fn gatherv<T: Wire>(&mut self, root: usize, value: &T)
        -> Result<Option<Vec<T>>, RuntimeError>;

    /// Fault-tolerant gather: like [`Communicator::gatherv`] but a
    /// dead contributor yields `None` in its slot instead of an
    /// error — the degradation hook the distributed executor uses.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] / [`RuntimeError::RankDead`] for
    /// failures of the caller itself.
    fn gather_available<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError>;

    /// All ranks contribute one value and receive everyone's, in rank
    /// order. Strict like [`Communicator::gatherv`]: a dead or lost
    /// contribution is an error (use
    /// [`Communicator::allgatherv_available`] to degrade gracefully).
    ///
    /// # Errors
    ///
    /// As [`Communicator::gatherv`]; under the `hub` schedule the
    /// death of the hub (lowest agreed-live rank) is additionally fatal —
    /// the `ring`/`tree` schedules have no such single point of
    /// failure.
    fn allgatherv<T: Wire>(&mut self, value: &T) -> Result<Vec<T>, RuntimeError>;

    /// Fault-tolerant all-gather: like [`Communicator::allgatherv`]
    /// but a dead rank (or a contribution lost to one mid-schedule)
    /// yields `None` in its slot instead of an error — the rootless
    /// counterpart of [`Communicator::gather_available`]. Under the
    /// `ring`/`tree` schedules this is what makes a non-root death
    /// survivable for rootless collectives.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] / [`RuntimeError::RankDead`] for
    /// failures of the caller itself.
    fn allgatherv_available<T: Wire>(
        &mut self,
        value: &T,
    ) -> Result<Vec<Option<T>>, RuntimeError>;

    /// Reduces one `f64` per live rank with `op`; every live rank
    /// receives the result. Dead ranks' contributions are omitted.
    ///
    /// # Errors
    ///
    /// As [`Communicator::allgatherv`].
    fn allreduce(&mut self, value: f64, op: ReduceOp) -> Result<f64, RuntimeError>;
}

/// Which clock a [`ThreadedComm`] runs on.
#[derive(Debug, Clone)]
enum ClockMode {
    /// Wall clocks (real concurrency).
    Wall,
    /// Hockney virtual clocks driven by a [`SimComm`].
    Sim,
}

/// Configuration for building a set of communicator handles.
///
/// ```
/// use fupermod_runtime::{RuntimeConfig, Communicator};
/// let comms = RuntimeConfig::thread().build(2);
/// assert_eq!(comms[1].rank(), 1);
/// ```
pub struct RuntimeConfig {
    plan: FaultPlan,
    sink: Arc<dyn TraceSink>,
    sim: Option<Topology>,
    algorithms: AlgorithmPolicy,
    engine: crate::sim::SimEngine,
}

impl std::fmt::Debug for RuntimeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("plan", &self.plan)
            .field("sim", &self.sim.is_some())
            .field("algorithms", &self.algorithms)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl RuntimeConfig {
    /// The threaded (wall-clock) backend.
    pub fn thread() -> Self {
        Self {
            plan: FaultPlan::none(),
            sink: Arc::new(*null_sink()),
            sim: None,
            algorithms: AlgorithmPolicy::default(),
            engine: crate::sim::SimEngine::Thread,
        }
    }

    /// The simulated backend over a flat topology with `link`.
    pub fn sim(size: usize, link: LinkModel) -> Self {
        Self::sim_topology(Topology::flat(size, link))
    }

    /// The simulated backend over an explicit topology.
    pub fn sim_topology(topo: Topology) -> Self {
        Self {
            plan: FaultPlan::none(),
            sink: Arc::new(*null_sink()),
            sim: Some(topo),
            algorithms: AlgorithmPolicy::default(),
            engine: crate::sim::SimEngine::Thread,
        }
    }

    /// Selects the simulation engine (CLI: `--sim-engine`). The
    /// default [`crate::sim::SimEngine::Thread`] keeps one OS thread
    /// per rank; [`crate::sim::SimEngine::Event`] runs the
    /// discrete-event interpreter (sim backend only — see
    /// [`crate::sim`]).
    #[must_use]
    pub fn with_engine(mut self, engine: crate::sim::SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a fault plan.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Routes `comm`/`fault` trace events to `sink`.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Selects the collective schedules (CLI: `--collectives`).
    /// Defaults to [`AlgorithmPolicy::hub`], the pre-existing
    /// behaviour.
    #[must_use]
    pub fn with_algorithms(mut self, algorithms: AlgorithmPolicy) -> Self {
        self.algorithms = algorithms;
        self
    }

    pub(crate) fn plan_ref(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn sink_ref(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    pub(crate) fn sim_topology_ref(&self) -> Option<&Topology> {
        self.sim.as_ref()
    }

    pub(crate) fn policy_ref(&self) -> AlgorithmPolicy {
        self.algorithms
    }

    /// The configured simulation engine.
    pub fn engine(&self) -> crate::sim::SimEngine {
        self.engine
    }

    /// Builds `size` connected rank handles.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or a sim topology of a different size
    /// was configured.
    pub fn build(self, size: usize) -> Vec<ThreadedComm> {
        self.build_with_handle(size).0
    }

    /// Builds rank handles plus a [`RuntimeHandle`] for inspecting the
    /// shared state (virtual clocks, liveness) after the run.
    ///
    /// # Panics
    ///
    /// As [`RuntimeConfig::build`].
    pub fn build_with_handle(self, size: usize) -> (Vec<ThreadedComm>, RuntimeHandle) {
        assert!(size > 0, "communicator needs at least one rank");
        let sim = self.sim.map(|topo| {
            assert_eq!(topo.size(), size, "sim topology size mismatch");
            Mutex::new(SimComm::with_topology(topo))
        });
        let deadline = self.plan.deadline.unwrap_or(DEFAULT_DEADLINE_SECS);
        let plane = Arc::new(Plane {
            size,
            state: Mutex::new(PlaneState {
                mail: (0..size).map(|_| VecDeque::new()).collect(),
                dead: vec![false; size],
                agreed_alive: vec![true; size],
                arrived: 0,
                generation: 0,
                lamport: vec![0; size],
                pending_charge: None,
                overlap_base: vec![None; size],
                coll_pending: vec![false; size],
                ops: vec![0; size],
                delay_counts: vec![0; self.plan.delays.len()],
                drop_counts: vec![0; self.plan.drops.len()],
                op_deadline: vec![None; size],
            }),
            cv: Condvar::new(),
            mode: if sim.is_some() {
                ClockMode::Sim
            } else {
                ClockMode::Wall
            },
            sim,
            plan: self.plan,
            deadline: Duration::from_secs_f64(deadline),
            deadline_secs: deadline,
            sink: self.sink,
            policy: self.algorithms,
            net: None,
        });
        let comms = (0..size)
            .map(|rank| ThreadedComm {
                rank,
                plane: Arc::clone(&plane),
            })
            .collect();
        (comms, RuntimeHandle { plane })
    }
}

/// Builds the shared plane for one rank of a multi-process TCP run:
/// wall clocks, no sim, the transport half attached. Mail slots exist
/// for every global rank but only `mail[local]` is ever filled — the
/// per-peer reader threads (see [`crate::net`]) deliver into it.
pub(crate) fn build_net_plane(
    size: usize,
    plan: FaultPlan,
    sink: Arc<dyn TraceSink>,
    policy: AlgorithmPolicy,
    net: crate::net::NetPlane,
) -> Arc<Plane> {
    let deadline = plan.deadline.unwrap_or(DEFAULT_DEADLINE_SECS);
    Arc::new(Plane {
        size,
        state: Mutex::new(PlaneState {
            mail: (0..size).map(|_| VecDeque::new()).collect(),
            dead: vec![false; size],
            agreed_alive: vec![true; size],
            arrived: 0,
            generation: 0,
            lamport: vec![0; size],
            pending_charge: None,
            overlap_base: vec![None; size],
            coll_pending: vec![false; size],
            ops: vec![0; size],
            delay_counts: vec![0; plan.delays.len()],
            drop_counts: vec![0; plan.drops.len()],
            op_deadline: vec![None; size],
        }),
        cv: Condvar::new(),
        mode: ClockMode::Wall,
        sim: None,
        plan,
        deadline: Duration::from_secs_f64(deadline),
        deadline_secs: deadline,
        sink,
        policy,
        net: Some(net),
    })
}

/// Builds the local rank's handle onto a net-backed plane.
pub(crate) fn comm_for(plane: Arc<Plane>, rank: usize) -> ThreadedComm {
    ThreadedComm { rank, plane }
}

/// Builds an inspection handle onto a net-backed plane.
pub(crate) fn handle_for(plane: Arc<Plane>) -> RuntimeHandle {
    RuntimeHandle { plane }
}

/// A view onto the shared runtime state that outlives the rank
/// handles — read the virtual clocks and liveness after a run.
#[derive(Clone)]
pub struct RuntimeHandle {
    plane: Arc<Plane>,
}

impl std::fmt::Debug for RuntimeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeHandle")
            .field("size", &self.plane.size)
            .finish_non_exhaustive()
    }
}

impl RuntimeHandle {
    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.plane.size
    }

    /// Liveness snapshot.
    pub fn alive(&self) -> Vec<bool> {
        let st = self.plane.lock();
        st.dead.iter().map(|&d| !d).collect()
    }

    /// Ranks that have died, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        let st = self.plane.lock();
        st.dead
            .iter()
            .enumerate()
            .filter_map(|(r, &d)| d.then_some(r))
            .collect()
    }

    /// Maximum virtual time across ranks (sim backend only).
    pub fn virtual_time(&self) -> Option<f64> {
        self.plane
            .sim
            .as_ref()
            .map(|s| s.lock().expect("sim poisoned").max_time())
    }

    /// Total virtual seconds spent communicating (sim backend only).
    pub fn virtual_comm_seconds(&self) -> Option<f64> {
        self.plane
            .sim
            .as_ref()
            .map(|s| s.lock().expect("sim poisoned").comm_seconds())
    }

    /// Per-rank virtual clocks (sim backend only) — the quantity the
    /// event engine pins bit-identical in its parity tests.
    pub fn virtual_times(&self) -> Option<Vec<f64>> {
        self.plane.sim.as_ref().map(|s| {
            let sim = s.lock().expect("sim poisoned");
            (0..self.plane.size).map(|r| sim.time(r)).collect()
        })
    }
}

pub(crate) struct Envelope {
    pub(crate) src: usize,
    pub(crate) bytes: Vec<u8>,
    /// Injected delivery delay, seconds (0 = none). Wall mode holds
    /// the message until `sent_at + delay`; sim mode delivers
    /// immediately and charges the receiver's virtual clock.
    pub(crate) delay: f64,
    pub(crate) sent_at: Instant,
    /// Sender's Lamport clock at enqueue time (schema v3): the causal
    /// stamp piggybacked on every message, merged into the receiver's
    /// clock at delivery (`c := max(c, stamp + 1)`). Rides the
    /// envelope, not the payload, so every `Wire`-encoded message of
    /// every schedule carries it without touching the codec.
    pub(crate) lamport: u64,
    /// Virtual instant at which this message is ready for delivery,
    /// pre-computed by a nonblocking send ([`ThreadedComm::isend`])
    /// which charged the sender's clock at *post* time. `None` for
    /// blocking sends, whose Hockney p2p cost is charged whole at
    /// delivery ([`SimComm::send`]); `Some` delivers via
    /// [`SimComm::arrive`] without touching the sender's clock again,
    /// keeping the sender's virtual timeline a function of its own
    /// program order regardless of when the receiver drains the
    /// mailbox.
    pub(crate) vready: Option<f64>,
}

/// A virtual-time charge for one collective, deposited by its root
/// (or the lowest agreed-live rank for rootless schedules) and applied
/// atomically by the closing barrier's completer. Since PR 4 a charge
/// *is* the collective's hop schedule — the exact `(src, dst, bytes)`
/// rounds the data plane executed — replayed through
/// [`SimComm::schedule`], so the Hockney clocks pay the real per-hop,
/// per-round cost of the chosen algorithm (a hub star serialises at
/// its root's ports; a ring pipelines; a tree finishes in
/// `O(log p)` rounds).
struct Charge {
    rounds: Vec<Vec<(usize, usize, f64)>>,
}

/// Converts a pure [`collective`] schedule into a deposit-ready
/// charge.
fn charge_of(rounds: &Rounds) -> Charge {
    Charge {
        rounds: rounds
            .iter()
            .map(|r| r.iter().map(|&(s, d, b)| (s, d, b as f64)).collect())
            .collect(),
    }
}

pub(crate) struct PlaneState {
    pub(crate) mail: Vec<VecDeque<Envelope>>,
    pub(crate) dead: Vec<bool>,
    /// The membership recorded by the completer of the last barrier
    /// generation, under the lock — identical for every rank of the
    /// following generation. Collective schedules are built over
    /// exactly this set, so a death that *settled* at a barrier
    /// re-shapes every schedule consistently (no lost ring/tree hops
    /// through the hole), while a death landing mid-operation only
    /// degrades edges of the already-agreed structure (no divergent
    /// snapshots, no stray mailbox traffic).
    pub(crate) agreed_alive: Vec<bool>,
    pub(crate) arrived: usize,
    pub(crate) generation: u64,
    /// Per-rank Lamport clocks (schema v3). Every operation ticks its
    /// rank's clock in `op_begin`, message delivery merges the
    /// sender's piggybacked stamp, and a completing barrier
    /// generation *joins* all live clocks to `max + 1` — so every
    /// participant of one collective records the same stamp, and the
    /// stamps are a schedule-independent function of the program's
    /// communication structure (identical across the thread and sim
    /// backends, which is what makes merged timelines deterministic).
    pub(crate) lamport: Vec<u64>,
    pending_charge: Option<Charge>,
    /// Per-rank virtual clock snapshots taken when a rank *posts* a
    /// nonblocking collective ([`ThreadedComm::ibcast`] /
    /// [`ThreadedComm::iallgatherv`]). The completer of the closing
    /// barrier uses them as the baseline for
    /// [`SimComm::schedule_from`], so the collective's hop plan is
    /// charged from post time and communication that fits under the
    /// compute between post and `wait` is hidden. `None` (the
    /// blocking-path value) means "the schedule started at the
    /// rank's current clock"; when every baseline equals the current
    /// clock bit-for-bit the completer dispatches to the plain
    /// [`SimComm::schedule`], so fault-free runs with no intervening
    /// compute stay bit-identical to the blocking path.
    overlap_base: Vec<Option<f64>>,
    /// Per-rank "a collective request is outstanding" flags. The
    /// barrier generation can only carry one collective per rank at a
    /// time, so posting a second nonblocking collective before
    /// completing the first is a typed error
    /// ([`RuntimeError::RequestBusy`]) instead of a corrupted
    /// rendezvous.
    coll_pending: Vec<bool>,
    ops: Vec<u64>,
    delay_counts: Vec<u64>,
    drop_counts: Vec<u64>,
    /// Per-rank wall-clock deadline of the operation currently in
    /// flight, anchored at `op_begin` (after any straggler charge).
    /// Every blocking wait inside the same operation measures against
    /// this one instant — a collective whose data phase needs several
    /// sequential receives gets *one* deadline for the whole
    /// operation, not one per receive — matching the anchoring `§8`
    /// pins for nonblocking requests and shared verbatim by the
    /// threaded and TCP backends.
    op_deadline: Vec<Option<Instant>>,
}

impl PlaneState {
    pub(crate) fn live_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }
}

pub(crate) struct Plane {
    pub(crate) size: usize,
    pub(crate) state: Mutex<PlaneState>,
    pub(crate) cv: Condvar,
    mode: ClockMode,
    sim: Option<Mutex<SimComm>>,
    pub(crate) plan: FaultPlan,
    pub(crate) deadline: Duration,
    pub(crate) deadline_secs: f64,
    pub(crate) sink: Arc<dyn TraceSink>,
    pub(crate) policy: AlgorithmPolicy,
    /// TCP transport half, present when this plane fronts one rank of
    /// a multi-process run (see [`crate::net`]). `None` keeps the
    /// in-process shared-memory fast path byte-for-byte unchanged.
    pub(crate) net: Option<crate::net::NetPlane>,
}

impl Plane {
    pub(crate) fn lock(&self) -> MutexGuard<'_, PlaneState> {
        self.state.lock().expect("runtime plane poisoned")
    }

    pub(crate) fn fault(&self, rank: usize, kind: &str, peer: i64, attempt: u32, seconds: f64) {
        fupermod_core::telemetry::record_fault(kind);
        self.sink.record(&TraceEvent::Fault {
            rank,
            kind: kind.to_owned(),
            peer,
            attempt,
            seconds,
        });
    }

    /// Completes the current barrier generation: applies the pending
    /// virtual-time charge (while holding the state lock, so charges
    /// form one deterministic sequence) and wakes everyone.
    fn complete_generation(&self, st: &mut PlaneState) {
        st.arrived = 0;
        st.generation = st.generation.wrapping_add(1);
        // Lamport join (schema v3): a completed barrier generation is
        // a causal rendezvous of every live rank, so all live clocks
        // jump to `max + 1` — symmetric in the completer, hence
        // independent of *which* rank happened to arrive last.
        let join = st.lamport.iter().copied().max().unwrap_or(0).wrapping_add(1);
        for (c, &dead) in st.lamport.iter_mut().zip(&st.dead) {
            if !dead {
                *c = join;
            }
        }
        // One write, under the lock, by the single completing rank:
        // the membership agreement every schedule of the next
        // generation is built from.
        for (agreed, &dead) in st.agreed_alive.iter_mut().zip(&st.dead) {
            *agreed = !dead;
        }
        if let Some(charge) = st.pending_charge.take() {
            if let Some(sim) = &self.sim {
                let mut sim = sim.lock().expect("sim poisoned");
                if st.overlap_base.iter().any(Option::is_some) {
                    // At least one rank posted this collective
                    // nonblocking: charge the hop plan from the
                    // post-time baselines, so communication hidden
                    // under compute costs no virtual time. A rank
                    // with no snapshot (blocking participant, or a
                    // post with no intervening compute) starts at its
                    // current clock; when *every* baseline equals the
                    // current clock the plain `schedule` path keeps
                    // the charge bit-identical to the blocking one.
                    let baseline: Vec<f64> = st
                        .overlap_base
                        .iter()
                        .enumerate()
                        .map(|(r, b)| b.unwrap_or_else(|| sim.time(r)))
                        .collect();
                    let unmoved = baseline
                        .iter()
                        .enumerate()
                        .all(|(r, b)| b.to_bits() == sim.time(r).to_bits());
                    if unmoved {
                        sim.schedule(&charge.rounds)
                    } else {
                        sim.schedule_from(&baseline, &charge.rounds)
                    }
                    .expect("schedule hops use valid distinct ranks by construction");
                } else {
                    sim.schedule(&charge.rounds)
                        .expect("schedule hops use valid distinct ranks by construction");
                }
            }
        }
        // The baselines belong to the generation that just closed;
        // never let them leak into the next collective's charge.
        for b in st.overlap_base.iter_mut() {
            *b = None;
        }
        self.cv.notify_all();
    }

    /// Completes the current barrier generation if every live
    /// participant has arrived; returns whether it completed. In
    /// process, any rank may be the completer; over TCP only the hub
    /// (the lowest agreed-live rank — the only rank ARRIVE frames are
    /// addressed to, so the only one whose `arrived` counter grows)
    /// completes, and it announces the completion to every peer with
    /// a RELEASE frame carrying the joined Lamport clock and the new
    /// agreed membership.
    pub(crate) fn maybe_complete(&self, st: &mut PlaneState) -> bool {
        if st.arrived == 0 || st.arrived < st.live_count() {
            return false;
        }
        match &self.net {
            None => self.complete_generation(st),
            Some(net) => self.complete_generation_net(net, st),
        }
        true
    }

    /// Hub-side TCP barrier completion: the network twin of
    /// [`complete_generation`](Self::complete_generation). The joined
    /// clock uses the hub's per-rank Lamport views, which at
    /// completion time hold each live peer's clock as stamped on its
    /// ARRIVE frame — exactly the value the in-process join reads, so
    /// fault-free stamps stay identical across backends.
    fn complete_generation_net(&self, net: &crate::net::NetPlane, st: &mut PlaneState) {
        st.arrived = 0;
        st.generation = st.generation.wrapping_add(1);
        let join = st.lamport.iter().copied().max().unwrap_or(0).wrapping_add(1);
        for (c, &dead) in st.lamport.iter_mut().zip(&st.dead) {
            if !dead {
                *c = join;
            }
        }
        for (agreed, &dead) in st.agreed_alive.iter_mut().zip(&st.dead) {
            *agreed = !dead;
        }
        // No sim over TCP: a deposited charge has nothing to bill.
        st.pending_charge = None;
        for b in st.overlap_base.iter_mut() {
            *b = None;
        }
        net.broadcast_release(st.generation, join, &st.agreed_alive, &st.dead);
        self.cv.notify_all();
    }

    /// Marks `rank` dead (fail-stop), completes a barrier the death
    /// unblocks, and wakes every waiter.
    pub(crate) fn mark_dead(&self, st: &mut PlaneState, rank: usize) {
        if st.dead[rank] {
            return;
        }
        st.dead[rank] = true;
        self.maybe_complete(st);
        self.cv.notify_all();
    }

    /// Charges `seconds` of injected latency to `rank`: virtual time
    /// in sim mode, a (capped) wall sleep in thread mode. Call
    /// without holding the state lock in wall mode.
    fn charge_latency(&self, rank: usize, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        match self.mode {
            ClockMode::Sim => {
                if let Some(sim) = &self.sim {
                    sim.lock().expect("sim poisoned").advance(rank, seconds);
                }
            }
            ClockMode::Wall => {
                std::thread::sleep(Duration::from_secs_f64(
                    seconds.min(MAX_WALL_SLEEP_SECS),
                ));
            }
        }
    }

    fn virtual_time_of(&self, rank: usize) -> f64 {
        self.sim
            .as_ref()
            .map_or(0.0, |s| s.lock().expect("sim poisoned").time(rank))
    }
}

/// A per-rank handle onto the shared threaded/simulated runtime.
///
/// Handles are built by [`RuntimeConfig::build`] and moved onto rank
/// threads (see [`run_ranks`]). All methods are available through the
/// [`Communicator`] trait.
pub struct ThreadedComm {
    rank: usize,
    plane: Arc<Plane>,
}

impl std::fmt::Debug for ThreadedComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedComm")
            .field("rank", &self.rank)
            .field("size", &self.plane.size)
            .finish_non_exhaustive()
    }
}

/// Everything an op needs to finish: start stamps for the trace event.
struct OpStart {
    wall: Instant,
    virt: f64,
    /// Barrier generation current when the op began — the `gen` a
    /// point-to-point event records (collectives record the
    /// generation their closing barrier completed instead).
    gen: u64,
}

impl ThreadedComm {
    /// This rank's current virtual time (sim backend; `None` on the
    /// thread backend).
    pub fn virtual_time(&self) -> Option<f64> {
        self.plane
            .sim
            .as_ref()
            .map(|s| s.lock().expect("sim poisoned").time(self.rank))
    }

    /// Whether `rank` is still alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        let st = self.plane.lock();
        rank < self.plane.size && !st.dead[rank]
    }

    fn check_rank(&self, op: &'static str, rank: usize) -> Result<(), RuntimeError> {
        if rank >= self.plane.size {
            return Err(RuntimeError::InvalidRank {
                op,
                rank,
                size: self.plane.size,
            });
        }
        Ok(())
    }

    /// Common op prologue: self-death check, op counting, scheduled
    /// death, straggler latency. Returns the start stamps.
    fn op_begin(&self, op: &'static str) -> Result<OpStart, RuntimeError> {
        let plane = &self.plane;
        let gen;
        {
            let mut st = plane.lock();
            if st.dead[self.rank] {
                return Err(RuntimeError::RankDead {
                    op,
                    rank: self.rank,
                });
            }
            st.ops[self.rank] += 1;
            // Lamport tick: every operation is an event on its rank's
            // clock (schema v3).
            st.lamport[self.rank] = st.lamport[self.rank].wrapping_add(1);
            gen = st.generation;
            if let Some(after) = plane.plan.death_after(self.rank) {
                if st.ops[self.rank] > after {
                    plane.mark_dead(&mut st, self.rank);
                    drop(st);
                    plane.fault(self.rank, "death", -1, 0, 0.0);
                    return Err(RuntimeError::RankDead {
                        op,
                        rank: self.rank,
                    });
                }
            }
        }
        let straggle = plane.plan.straggler_comm_seconds(self.rank);
        if straggle > 0.0 {
            plane.fault(self.rank, "straggler", -1, 0, straggle);
            plane.charge_latency(self.rank, straggle);
        }
        // Anchor the operation's one wall-clock deadline *after* the
        // straggler charge, so injected latency does not eat into the
        // budget the operation's blocking waits share.
        let wall = Instant::now();
        plane.lock().op_deadline[self.rank] = Some(wall + plane.deadline);
        Ok(OpStart {
            wall,
            virt: plane.virtual_time_of(self.rank),
            gen,
        })
    }

    /// Wall-clock instant at which the operation currently in flight
    /// times out — anchored once per operation in
    /// [`op_begin`](Self::op_begin), so a collective whose data phase
    /// performs several sequential blocking waits spends one shared
    /// budget instead of restarting the clock per wait. This is the
    /// same anchoring `docs/RUNTIME.md` §8 pins for nonblocking
    /// requests, and it is shared verbatim by the threaded and TCP
    /// backends.
    fn op_deadline_at(&self) -> Instant {
        self.plane.lock().op_deadline[self.rank]
            .unwrap_or_else(|| Instant::now() + self.plane.deadline)
    }

    /// Common op epilogue: emits the `comm` trace event with the
    /// schema-v2 addendum `algorithm`/`rounds` fields describing the
    /// schedule that carried the operation and the schema-v3 causal
    /// `lamport`/`gen` stamps; also feeds the per-op latency
    /// histogram ([`fupermod_core::trace::Metrics`]).
    #[allow(clippy::too_many_arguments)] // one flat epilogue beats a one-shot struct
    fn op_end(
        &self,
        op: &'static str,
        peer: i64,
        bytes: u64,
        start: &OpStart,
        algorithm: &str,
        rounds: u64,
        gen: u64,
    ) {
        let seconds = match self.plane.mode {
            ClockMode::Wall => start.wall.elapsed().as_secs_f64(),
            ClockMode::Sim => self.plane.virtual_time_of(self.rank) - start.virt,
        };
        let lamport = self.plane.lock().lamport[self.rank];
        fupermod_core::trace::metrics().record_comm_latency(op, seconds);
        self.plane.sink.record(&TraceEvent::Comm {
            rank: self.rank,
            op: op.to_owned(),
            peer,
            bytes,
            seconds,
            algorithm: algorithm.to_owned(),
            rounds,
            lamport,
            gen,
        });
    }

    /// Fail-stop on a deadline violation. Over TCP the dying rank
    /// additionally announces itself with best-effort BYE frames, so
    /// peers map the fail-stop onto the same death path a graceful
    /// shutdown takes instead of waiting for a socket error.
    fn timeout(&self, op: &'static str, st: &mut PlaneState) -> RuntimeError {
        self.plane.mark_dead(st, self.rank);
        if let Some(net) = &self.plane.net {
            net.send_bye_all();
        }
        self.plane
            .fault(self.rank, "timeout", -1, 0, self.plane.deadline_secs);
        RuntimeError::Timeout {
            op,
            rank: self.rank,
            deadline: self.plane.deadline_secs,
        }
    }

    /// Enqueues `bytes` to `dst`, evaluating drop and delay rules.
    /// Does not charge virtual time (p2p charges happen at delivery;
    /// collective data phases are charged by their closing barrier).
    fn raw_send(&self, op: &'static str, dst: usize, bytes: Vec<u8>) -> Result<(), RuntimeError> {
        self.raw_send_at(op, dst, bytes, None)
    }

    /// [`raw_send`](Self::raw_send) with an optional pre-computed
    /// virtual readiness instant (set by [`isend`](Self::isend), which
    /// charges the sender's clock at post time — see
    /// [`Envelope::vready`]).
    fn raw_send_at(
        &self,
        op: &'static str,
        dst: usize,
        bytes: Vec<u8>,
        vready: Option<f64>,
    ) -> Result<(), RuntimeError> {
        let plane = &self.plane;
        let mut attempt: u32 = 0;
        loop {
            let mut st = plane.lock();
            if st.dead[self.rank] {
                return Err(RuntimeError::RankDead {
                    op,
                    rank: self.rank,
                });
            }
            if st.dead[dst] {
                return Err(RuntimeError::RankDead { op, rank: dst });
            }
            // First matching drop rule governs this attempt.
            let mut dropped: Option<(u32, f64)> = None;
            for (i, rule) in plane.plan.drops.iter().enumerate() {
                if rule.src.is_none_or(|s| s == self.rank) && rule.dst.is_none_or(|d| d == dst) {
                    st.drop_counts[i] += 1;
                    if st.drop_counts[i].is_multiple_of(rule.every) {
                        let backoff =
                            rule.backoff_seconds * f64::from(1u32 << attempt.min(16));
                        dropped = Some((rule.max_retries, backoff));
                    }
                    break;
                }
            }
            if let Some((max_retries, backoff)) = dropped {
                drop(st);
                plane.fault(self.rank, "drop", dst as i64, attempt, 0.0);
                if attempt >= max_retries {
                    return Err(RuntimeError::RetriesExhausted {
                        op,
                        src: self.rank,
                        dst,
                        attempts: attempt + 1,
                    });
                }
                attempt += 1;
                plane.fault(self.rank, "retry", dst as i64, attempt, backoff);
                plane.charge_latency(self.rank, backoff);
                continue;
            }
            // First matching delay rule governs this message.
            let mut delay = 0.0;
            for (i, rule) in plane.plan.delays.iter().enumerate() {
                if rule.src.is_none_or(|s| s == self.rank) && rule.dst.is_none_or(|d| d == dst) {
                    st.delay_counts[i] += 1;
                    if st.delay_counts[i].is_multiple_of(rule.every) {
                        delay = rule.seconds;
                    }
                    break;
                }
            }
            // Causal stamp: the sender's clock at enqueue time,
            // merged by the receiver at delivery.
            let stamp = st.lamport[self.rank];
            // Remote destination: the envelope travels as a DATA
            // frame (stamp and generation in the header) and the
            // peer's reader thread re-materialises it in the
            // destination mailbox. Fault rules were already evaluated
            // above — injection is sender-side over TCP.
            if let Some(net) = &plane.net {
                if dst != self.rank {
                    let gen = st.generation;
                    drop(st);
                    if delay > 0.0 {
                        plane.fault(self.rank, "delay", dst as i64, 0, delay);
                    }
                    return match net.send_data(dst, stamp, gen, delay, &bytes) {
                        Ok(()) => Ok(()),
                        Err(_) => {
                            let mut st = plane.lock();
                            plane.mark_dead(&mut st, dst);
                            drop(st);
                            plane.fault(self.rank, "disconnect", dst as i64, 0, 0.0);
                            Err(RuntimeError::RankDead { op, rank: dst })
                        }
                    };
                }
            }
            st.mail[dst].push_back(Envelope {
                src: self.rank,
                bytes,
                delay,
                sent_at: Instant::now(),
                lamport: stamp,
                vready,
            });
            plane.cv.notify_all();
            drop(st);
            if delay > 0.0 {
                plane.fault(self.rank, "delay", dst as i64, 0, delay);
            }
            return Ok(());
        }
    }

    /// Dequeues the next message from `src` (per-pair FIFO), waiting
    /// up to the deadline. `charge_p2p` applies the Hockney p2p cost
    /// at delivery (public `recv`); collective data phases pass
    /// `false` and are charged by their closing barrier instead.
    fn raw_recv(
        &self,
        op: &'static str,
        src: usize,
        charge_p2p: bool,
    ) -> Result<Vec<u8>, RuntimeError> {
        self.raw_recv_deadline(op, src, charge_p2p, self.op_deadline_at())
    }

    /// [`raw_recv`](Self::raw_recv) against a caller-supplied deadline
    /// (nonblocking requests anchor it at the entry to `wait`).
    fn raw_recv_deadline(
        &self,
        op: &'static str,
        src: usize,
        charge_p2p: bool,
        deadline_at: Instant,
    ) -> Result<Vec<u8>, RuntimeError> {
        let plane = &self.plane;
        loop {
            if let Some(bytes) = self.try_take(op, src, charge_p2p)? {
                return Ok(bytes);
            }
            let mut st = plane.lock();
            // A message may have landed between the attempt and this
            // lock; retry before sleeping so no wakeup is lost.
            let deliverable = st.mail[self.rank].iter().any(|e| {
                e.src == src
                    && (matches!(plane.mode, ClockMode::Sim)
                        || e.delay <= 0.0
                        || e.sent_at.elapsed().as_secs_f64() >= e.delay)
            });
            if st.dead[self.rank] || st.dead[src] || deliverable {
                continue;
            }
            let now = Instant::now();
            if now >= deadline_at {
                return Err(self.timeout(op, &mut st));
            }
            let mut wait = (deadline_at - now).min(Duration::from_millis(50));
            if let Some(ready_in) = self.next_delay_wakeup(&st) {
                wait = wait.min(ready_in);
            }
            let _ = plane
                .cv
                .wait_timeout(st, wait)
                .expect("runtime plane poisoned");
        }
    }

    /// Earliest remaining time until a delay-held message for this
    /// rank becomes deliverable — the extra bound every condvar sleep
    /// takes so a sub-50 ms injected delay wakes its receiver when it
    /// expires instead of on the next 50 ms poll tick. `None` when no
    /// held message is pending (sim mode delivers immediately, so it
    /// never holds any).
    fn next_delay_wakeup(&self, st: &PlaneState) -> Option<Duration> {
        if matches!(self.plane.mode, ClockMode::Sim) {
            return None;
        }
        st.mail[self.rank]
            .iter()
            .filter(|e| e.delay > 0.0)
            .filter_map(|e| {
                let remaining = e.delay - e.sent_at.elapsed().as_secs_f64();
                (remaining > 0.0).then(|| Duration::from_secs_f64(remaining))
            })
            .min()
            // Floor the wake-up so a just-expiring delay cannot turn
            // the wait into a zero-duration busy spin.
            .map(|d| d.max(Duration::from_micros(50)))
    }

    /// One nonblocking delivery attempt for the next message from
    /// `src` (per-pair FIFO): `Ok(Some(bytes))` delivers it (Lamport
    /// merge, virtual-clock charge), `Ok(None)` means nothing is
    /// deliverable *yet* — no message, or a fault-injected delivery
    /// delay still running. Death errors match
    /// [`raw_recv`](Self::raw_recv): a message already enqueued by a
    /// now-dead sender is still delivered (posthumous delivery).
    fn try_take(
        &self,
        op: &'static str,
        src: usize,
        charge_p2p: bool,
    ) -> Result<Option<Vec<u8>>, RuntimeError> {
        let plane = &self.plane;
        let mut st = plane.lock();
        if st.dead[self.rank] {
            return Err(RuntimeError::RankDead {
                op,
                rank: self.rank,
            });
        }
        if let Some(idx) = st.mail[self.rank].iter().position(|e| e.src == src) {
            let ready = match plane.mode {
                ClockMode::Sim => true,
                ClockMode::Wall => {
                    let env = &st.mail[self.rank][idx];
                    env.delay <= 0.0 || env.sent_at.elapsed().as_secs_f64() >= env.delay
                }
            };
            if !ready {
                return Ok(None);
            }
            let env = st.mail[self.rank].remove(idx).expect("index just found");
            // Lamport merge: receipt happens-after the send, so the
            // receiver's clock jumps past the stamp.
            st.lamport[self.rank] = st.lamport[self.rank].max(env.lamport.wrapping_add(1));
            drop(st);
            if let Some(sim) = &plane.sim {
                let mut sim = sim.lock().expect("sim poisoned");
                if charge_p2p {
                    match env.vready {
                        // The sender was charged at post time; only
                        // the receiver's clock moves at delivery.
                        Some(ready_at) => sim.arrive(self.rank, ready_at),
                        None => sim.send(src, self.rank, env.bytes.len() as f64),
                    }
                }
                if env.delay > 0.0 {
                    sim.advance(self.rank, env.delay);
                }
            }
            return Ok(Some(env.bytes));
        }
        if st.dead[src] {
            return Err(RuntimeError::RankDead { op, rank: src });
        }
        Ok(None)
    }

    /// Sense-reversing, death-aware barrier. `default_charge` is
    /// deposited if no collective already deposited one (used by the
    /// public `barrier`). Returns the generation this barrier
    /// *completed* — captured before the increment, so every
    /// participant of the same rendezvous reports the same value
    /// (this is the `gen` stamp collective `comm` events record;
    /// reading `st.generation` after the fact would race with the
    /// next generation).
    fn raw_barrier(
        &self,
        op: &'static str,
        default_charge: Option<Charge>,
    ) -> Result<u64, RuntimeError> {
        let gen = self.raw_barrier_arrive(op, default_charge)?;
        self.raw_barrier_wait(op, gen, self.op_deadline_at())
    }

    /// Arrival half of [`raw_barrier`](Self::raw_barrier): joins the
    /// current generation (completing it if this arrival is the last)
    /// and returns the generation joined *without* waiting — the
    /// split nonblocking collectives use to arrive at their closing
    /// barrier at post time and finish it at `wait`.
    fn raw_barrier_arrive(
        &self,
        op: &'static str,
        default_charge: Option<Charge>,
    ) -> Result<u64, RuntimeError> {
        let plane = &self.plane;
        let mut st = plane.lock();
        if st.dead[self.rank] {
            return Err(RuntimeError::RankDead {
                op,
                rank: self.rank,
            });
        }
        if let Some(charge) = default_charge {
            if st.pending_charge.is_none() {
                st.pending_charge = Some(charge);
            }
        }
        let gen = st.generation;
        if let Some(net) = &plane.net {
            // TCP barrier: arrivals rendezvous at the hub (the lowest
            // agreed-live rank — the same rank the hub collective
            // schedules route through). The hub counts its own
            // arrival locally; everyone else announces theirs with an
            // ARRIVE frame stamped with the current Lamport clock.
            let hub = crate::net::hub_of(&st.agreed_alive);
            if self.rank == hub {
                st.arrived += 1;
                plane.maybe_complete(&mut st);
            } else {
                let stamp = st.lamport[self.rank];
                net.send_arrive(hub, gen, stamp);
            }
        } else {
            st.arrived += 1;
            if st.arrived >= st.live_count() {
                plane.complete_generation(&mut st);
            }
        }
        Ok(gen)
    }

    /// Completion half of [`raw_barrier`](Self::raw_barrier): blocks
    /// until generation `gen` (already joined via
    /// [`raw_barrier_arrive`](Self::raw_barrier_arrive)) completes,
    /// against a caller-supplied deadline.
    fn raw_barrier_wait(
        &self,
        op: &'static str,
        gen: u64,
        deadline_at: Instant,
    ) -> Result<u64, RuntimeError> {
        let plane = &self.plane;
        let mut st = plane.lock();
        loop {
            if st.generation != gen {
                return Ok(gen);
            }
            if plane.maybe_complete(&mut st) {
                return Ok(gen);
            }
            let now = Instant::now();
            if now >= deadline_at {
                st.arrived = st.arrived.saturating_sub(1);
                return Err(self.timeout(op, &mut st));
            }
            let wait = (deadline_at - now).min(Duration::from_millis(50));
            let (guard, _) = plane
                .cv
                .wait_timeout(st, wait)
                .expect("runtime plane poisoned");
            st = guard;
        }
    }

    /// Nonblocking poll of barrier generation `gen`: `true` once it
    /// has completed (completing it here if every live rank has
    /// already arrived).
    fn barrier_done(&self, gen: u64) -> bool {
        let plane = &self.plane;
        let mut st = plane.lock();
        if st.generation != gen {
            return true;
        }
        plane.maybe_complete(&mut st)
    }

    /// Liveness snapshot under the lock.
    fn alive_snapshot(&self) -> Vec<bool> {
        let st = self.plane.lock();
        st.dead.iter().map(|&d| !d).collect()
    }

    fn decode_as<T: Wire>(op: &'static str, bytes: &[u8]) -> Result<T, RuntimeError> {
        T::decode(bytes).map_err(|e| match e {
            RuntimeError::Decode { detail, .. } => RuntimeError::Decode { what: op, detail },
            other => other,
        })
    }

    /// Hub-side gather core shared by `gatherv`, `gather_available`,
    /// `allgatherv` and `allreduce`: returns each live rank's payload
    /// (`None` for dead contributors).
    fn collect_payloads(
        &self,
        op: &'static str,
        own: &[u8],
    ) -> Result<Slots, RuntimeError> {
        let mut slots: Slots = Vec::with_capacity(self.plane.size);
        for src in 0..self.plane.size {
            if src == self.rank {
                slots.push(Some(own.to_vec()));
                continue;
            }
            match self.raw_recv(op, src, false) {
                Ok(bytes) => slots.push(Some(bytes)),
                Err(RuntimeError::RankDead { rank, .. }) if rank == src => slots.push(None),
                Err(other) => return Err(other),
            }
        }
        Ok(slots)
    }

    /// Collective epilogue: every rank that passed `op_begin` arrives
    /// at the closing barrier exactly once — *even when its data
    /// phase failed* — so a mid-collective error on one rank cannot
    /// leave the others' barrier generation short (they would
    /// otherwise stall until the deadline fail-stops someone). A
    /// data-phase error takes precedence over a barrier error.
    /// Returns the value paired with the generation the closing
    /// barrier completed (the collective's `gen` stamp).
    fn close_op<T>(
        &self,
        op: &'static str,
        outcome: Result<T, RuntimeError>,
    ) -> Result<(T, u64), RuntimeError> {
        let fence = self.raw_barrier(op, None);
        match outcome {
            Err(e) => Err(e),
            Ok(v) => fence.map(|gen| (v, gen)),
        }
    }

    /// Deposits a virtual-time charge for the closing barrier's
    /// completer to apply (no-op on the wall-clock backend).
    fn deposit(&self, charge: Charge) {
        if self.plane.sim.is_some() {
            let mut st = self.plane.lock();
            st.pending_charge = Some(charge);
        }
    }

    /// Sends a schedule-internal message, tolerating a dead receiver
    /// (its edge of the schedule simply drops).
    fn send_tolerant(
        &self,
        op: &'static str,
        dst: usize,
        bytes: Vec<u8>,
    ) -> Result<(), RuntimeError> {
        match self.raw_send(op, dst, bytes) {
            Ok(()) => Ok(()),
            Err(RuntimeError::RankDead { rank, .. }) if rank == dst => Ok(()),
            Err(other) => Err(other),
        }
    }

    /// Receives a schedule-internal message, mapping a dead sender to
    /// `None` (the data that edge carried is lost; the schedule
    /// degrades instead of erroring).
    fn recv_tolerant(
        &self,
        op: &'static str,
        src: usize,
    ) -> Result<Option<Vec<u8>>, RuntimeError> {
        match self.raw_recv(op, src, false) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(RuntimeError::RankDead { rank, .. }) if rank == src => Ok(None),
            Err(other) => Err(other),
        }
    }

    /// Folds gathered raw contributions **left-associated, in
    /// ascending rank order, skipping dead (`None`) slots** — the
    /// pinned reduction order every `allreduce` schedule shares, so
    /// hub, ring and tree results stay bitwise identical (float
    /// reduction is not associative).
    fn fold_slots(
        op_tag: &'static str,
        slots: &Slots,
        rop: ReduceOp,
    ) -> Result<f64, RuntimeError> {
        let mut acc: Option<f64> = None;
        for slot in slots.iter().flatten() {
            let x = Self::decode_as::<f64>(op_tag, slot)?;
            acc = Some(match acc {
                None => x,
                Some(a) => rop.fold(a, x),
            });
        }
        acc.ok_or(RuntimeError::NoContributions { op: op_tag })
    }

    /// The rank list every schedule of the current barrier generation
    /// is built over: the membership recorded at the last completed
    /// generation (see [`PlaneState::agreed_alive`]). Ascending, and
    /// identical on every rank of the generation — deaths that land
    /// *after* the agreement degrade edges of this fixed structure
    /// instead of re-shaping it divergently.
    fn agreed_live(&self) -> Vec<usize> {
        let st = self.plane.lock();
        Self::live_list(&st.agreed_alive)
    }

    /// Position of this rank in the agreed live list. A rank that
    /// reaches a collective data phase passed its `op_begin` liveness
    /// check, and fail-stop death is permanent, so it was alive at
    /// every earlier agreement point.
    fn agreed_pos(&self, op: &'static str, live: &[usize]) -> Result<usize, RuntimeError> {
        live.iter()
            .position(|&r| r == self.rank)
            .ok_or(RuntimeError::RankDead {
                op,
                rank: self.rank,
            })
    }

    /// Absolute rank of binomial virtual index `vi` over the agreed
    /// live list with the root at position `vroot`.
    fn pos_to_abs(live: &[usize], vroot: usize, vi: usize) -> usize {
        live[(vi + vroot) % live.len()]
    }

    /// Live ranks of a snapshot, ascending (used to build charges
    /// that skip dead edges).
    fn live_list(alive: &[bool]) -> Vec<usize> {
        alive
            .iter()
            .enumerate()
            .filter_map(|(r, &a)| a.then_some(r))
            .collect()
    }

    /// Tree broadcast data phase: the blob flows root-outward along
    /// the binomial tree, `Option`-framed so an upstream death
    /// propagates as an explicit `None` in one hop per level instead
    /// of cascading deadline fail-stops through the subtree.
    /// Returns `(blob, framed message length)`; `None` means the
    /// value never reached this rank.
    fn bcast_tree_data(
        &self,
        op: &'static str,
        root: usize,
        own: Option<Vec<u8>>,
    ) -> Result<(Option<Vec<u8>>, u64), RuntimeError> {
        let live = self.agreed_live();
        let q = live.len();
        // A root that died before the agreement is consistently
        // unreachable for every remaining rank.
        let Some(vroot) = live.iter().position(|&r| r == root) else {
            return Err(RuntimeError::RankDead { op, rank: root });
        };
        let pos = self.agreed_pos(op, &live)?;
        let vi = (pos + q - vroot) % q;
        let framed: Option<Vec<u8>> = if vi == 0 {
            own
        } else {
            let parent_abs = Self::pos_to_abs(
                &live,
                vroot,
                collective::binomial_parent(vi).expect("vi > 0 has a parent"),
            );
            match self.recv_tolerant(op, parent_abs)? {
                Some(bytes) => Self::decode_as::<Option<Vec<u8>>>(op, &bytes)?,
                None => None,
            }
        };
        let msg = framed.to_bytes();
        for (_, child_vi) in collective::binomial_children(vi, q) {
            let child_abs = Self::pos_to_abs(&live, vroot, child_vi);
            self.send_tolerant(op, child_abs, msg.clone())?;
        }
        if vi == 0 {
            self.deposit(charge_of(&collective::bcast_rounds(
                &live,
                vroot,
                msg.len() as u64,
            )));
        }
        Ok((framed, msg.len() as u64))
    }

    /// Rootless all-gather core: returns the per-rank contribution
    /// slots (absolute-rank-indexed; `None` = dead or lost), under
    /// the resolved schedule. Shared by `allgatherv`,
    /// `allgatherv_available` and the ring/tree `allreduce`.
    fn allgather_slots(
        &self,
        op: &'static str,
        own: Vec<u8>,
        resolved: Resolved,
    ) -> Result<(Slots, u64), RuntimeError> {
        let size = self.plane.size;
        if size == 1 {
            return Ok((vec![Some(own)], 0));
        }
        match resolved {
            Resolved::Hub => self.allgather_hub(op, own),
            Resolved::Ring => self.allgather_ring(op, own),
            Resolved::Tree => self.allgather_butterfly(op, own),
        }
    }

    /// Hub all-gather: star fan-in to the lowest agreed-live rank, then a
    /// star fan-out of the full slot vector. Two rounds, both
    /// serialised at the hub's ports — the `O(p·m)` bottleneck the
    /// ring and tree schedules exist to remove.
    fn allgather_hub(
        &self,
        op: &'static str,
        own: Vec<u8>,
    ) -> Result<(Slots, u64), RuntimeError> {
        let live = self.agreed_live();
        let hub = live[0];
        let mut moved = own.len() as u64;
        if self.rank == hub {
            let slots = self.collect_payloads(op, &own)?;
            let blob = slots.to_bytes();
            for &dst in &live {
                if dst == hub {
                    continue;
                }
                self.send_tolerant(op, dst, blob.clone())?;
                moved += blob.len() as u64;
            }
            let in_lens: Vec<u64> = live
                .iter()
                .map(|&r| slots[r].as_ref().map_or(0, |b| b.len() as u64))
                .collect();
            let out_lens = vec![blob.len() as u64; live.len()];
            let mut rounds = vec![collective::star_gather_round(&live, hub, &in_lens)];
            rounds.push(collective::star_scatter_round(&live, hub, &out_lens));
            self.deposit(charge_of(&rounds));
            Ok((slots, moved))
        } else {
            // Hub death is fatal for the hub schedule — that is the
            // single point of failure `ring`/`tree` remove.
            self.raw_send(op, hub, own)?;
            let blob = self.raw_recv(op, hub, false)?;
            moved += blob.len() as u64;
            let slots: Slots = Self::decode_as(op, &blob)?;
            if slots.len() != self.plane.size {
                return Err(RuntimeError::Decode {
                    what: op,
                    detail: format!(
                        "hub blob has {} slots, communicator size is {}",
                        slots.len(),
                        self.plane.size
                    ),
                });
            }
            Ok((slots, moved))
        }
    }

    /// Ring all-gather: `p - 1` pipelined nearest-neighbour rounds.
    /// Every rank sends and receives the same bytes — no hot rank.
    /// Blocks travel `Option`-framed so a hole in the ring degrades
    /// to `None` slots downstream instead of stalling the pipeline.
    fn allgather_ring(
        &self,
        op: &'static str,
        own: Vec<u8>,
    ) -> Result<(Slots, u64), RuntimeError> {
        let size = self.plane.size;
        let live = self.agreed_live();
        let q = live.len();
        let pos = self.agreed_pos(op, &live)?;
        let mut held: Slots = vec![None; size];
        held[self.rank] = Some(own);
        if q == 1 {
            return Ok((held, 0));
        }
        let next = live[(pos + 1) % q];
        let prev = live[(pos + q - 1) % q];
        let mut moved = 0u64;
        for k in 0..q - 1 {
            let origin_send = live[(pos + q - k) % q];
            let origin_recv = live[(pos + q - 1 - k) % q];
            let msg = held[origin_send].to_bytes();
            moved += msg.len() as u64;
            self.send_tolerant(op, next, msg)?;
            if let Some(bytes) = self.recv_tolerant(op, prev)? {
                moved += bytes.len() as u64;
                held[origin_recv] = Self::decode_as::<Option<Vec<u8>>>(op, &bytes)?;
            }
        }
        if self.rank == live[0] {
            // Charge the framed block sizes (1 tag + 8 length + raw
            // bytes per present block) over the agreed ring.
            let lens: Vec<u64> = live
                .iter()
                .map(|&r| held[r].as_ref().map_or(1, |b| 9 + b.len() as u64))
                .collect();
            self.deposit(charge_of(&collective::ring_rounds(&live, &lens)));
        }
        Ok((held, moved))
    }

    /// Recursive-doubling all-gather: `ceil(log2 p)` pairwise
    /// exchange rounds (plus a fold-in/fold-out round pair when `p`
    /// is not a power of two). Messages are absolute-rank-indexed
    /// slot vectors, so partner death degrades to `None` slots.
    fn allgather_butterfly(
        &self,
        op: &'static str,
        own: Vec<u8>,
    ) -> Result<(Slots, u64), RuntimeError> {
        let size = self.plane.size;
        let live = self.agreed_live();
        let q = live.len();
        let pos = self.agreed_pos(op, &live)?;
        let q2 = collective::prev_pow2(q);
        let mut held: Slots = vec![None; size];
        let own_len = own.len() as u64;
        held[self.rank] = Some(own);
        let mut moved = 0u64;
        if q == 1 {
            return Ok((held, 0));
        }
        if pos >= q2 {
            // Fold into the core, wait for the full result.
            let partner = live[pos - q2];
            let msg = held.to_bytes();
            moved += msg.len() as u64;
            self.send_tolerant(op, partner, msg)?;
            if let Some(bytes) = self.recv_tolerant(op, partner)? {
                moved += bytes.len() as u64;
                let full: Slots = Self::decode_as(op, &bytes)?;
                if full.len() == size {
                    merge_slots(&mut held, full);
                }
            }
            return Ok((held, moved));
        }
        if pos + q2 < q {
            if let Some(bytes) = self.recv_tolerant(op, live[pos + q2])? {
                moved += bytes.len() as u64;
                let folded: Slots = Self::decode_as(op, &bytes)?;
                if folded.len() == size {
                    merge_slots(&mut held, folded);
                }
            }
        }
        let mut mask = 1usize;
        while mask < q2 {
            let partner = live[pos ^ mask];
            let msg = held.to_bytes();
            moved += msg.len() as u64;
            self.send_tolerant(op, partner, msg)?;
            if let Some(bytes) = self.recv_tolerant(op, partner)? {
                moved += bytes.len() as u64;
                let theirs: Slots = Self::decode_as(op, &bytes)?;
                if theirs.len() == size {
                    merge_slots(&mut held, theirs);
                }
            }
            mask <<= 1;
        }
        if pos + q2 < q {
            let msg = held.to_bytes();
            moved += msg.len() as u64;
            self.send_tolerant(op, live[pos + q2], msg)?;
        }
        if self.rank == live[0] {
            let lens: Vec<u64> = live
                .iter()
                .map(|&r| held[r].as_ref().map_or(own_len, |b| b.len() as u64))
                .collect();
            self.deposit(charge_of(&collective::butterfly_rounds(size, &live, &lens)));
        }
        Ok((held, moved))
    }

    /// Round count of a rootless schedule over the agreed live
    /// ranks, for the trace addendum.
    fn rootless_rounds(&self, resolved: Resolved) -> u64 {
        let p = self.agreed_live().len();
        if p <= 1 {
            return 0;
        }
        match resolved {
            Resolved::Hub => 2,
            Resolved::Ring => (p - 1) as u64,
            Resolved::Tree => {
                let q2 = collective::prev_pow2(p);
                u64::from(collective::ceil_log2(q2)) + if p > q2 { 2 } else { 0 }
            }
        }
    }

    /// Round count of a rooted schedule over the agreed live ranks.
    fn rooted_rounds(&self, resolved: Resolved) -> u64 {
        let p = self.agreed_live().len();
        if p <= 1 {
            return 0;
        }
        match resolved {
            Resolved::Hub => 1,
            Resolved::Ring | Resolved::Tree => u64::from(collective::ceil_log2(p)),
        }
    }
}

/// Absolute-rank-indexed collective payload slots: `None` marks a
/// dead rank or a contribution lost to one.
type Slots = Vec<Option<Vec<u8>>>;

/// Fills `None` slots of `into` from `from` (a present slot is never
/// overwritten, so the first copy of a contribution wins — all copies
/// are byte-identical by construction).
fn merge_slots(into: &mut Slots, from: Slots) {
    for (dst, src) in into.iter_mut().zip(from) {
        if dst.is_none() {
            *dst = src;
        }
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.plane.size
    }

    fn alive(&self) -> Vec<bool> {
        self.alive_snapshot()
    }

    fn send<T: Wire>(&mut self, dst: usize, value: &T) -> Result<(), RuntimeError> {
        const OP: &str = "send";
        self.check_rank(OP, dst)?;
        let start = self.op_begin(OP)?;
        let bytes = value.to_bytes();
        let n = bytes.len() as u64;
        self.raw_send(OP, dst, bytes)?;
        self.op_end(OP, dst as i64, n, &start, "direct", 1, start.gen);
        Ok(())
    }

    fn recv<T: Wire>(&mut self, src: usize) -> Result<T, RuntimeError> {
        const OP: &str = "recv";
        self.check_rank(OP, src)?;
        let start = self.op_begin(OP)?;
        let bytes = self.raw_recv(OP, src, true)?;
        let value = Self::decode_as::<T>(OP, &bytes)?;
        self.op_end(
            OP,
            src as i64,
            bytes.len() as u64,
            &start,
            "direct",
            1,
            start.gen,
        );
        Ok(value)
    }

    fn barrier(&mut self) -> Result<(), RuntimeError> {
        const OP: &str = "barrier";
        let start = self.op_begin(OP)?;
        let resolved = self.plane.policy.barrier.resolve_rooted(self.plane.size);
        // The data-plane barrier is the sense-reversing generation
        // itself; the *charge* models the message schedule a real
        // barrier would run (star fan-in/fan-out for the hub,
        // zero-byte binomial fan-in/fan-out for the tree). Every
        // arriving rank offers its charge; the first deposit wins —
        // built over the agreed membership, so it is identical on
        // every rank of the generation.
        let live = self.agreed_live();
        let rounds = match resolved {
            Resolved::Hub => {
                let hub = live[0];
                let zeros = vec![0u64; live.len()];
                vec![
                    collective::star_gather_round(&live, hub, &zeros),
                    collective::star_scatter_round(&live, hub, &zeros),
                ]
            }
            Resolved::Ring | Resolved::Tree => collective::barrier_tree_rounds(&live),
        };
        let n_rounds = rounds.len() as u64;
        let gen = self.raw_barrier(OP, Some(charge_of(&rounds)))?;
        self.op_end(OP, -1, 0, &start, resolved.name(), n_rounds, gen);
        Ok(())
    }

    fn bcast<T: Wire>(&mut self, root: usize, value: Option<&T>) -> Result<T, RuntimeError> {
        const OP: &str = "bcast";
        self.check_rank(OP, root)?;
        let start = self.op_begin(OP)?;
        let resolved = self.plane.policy.bcast.resolve_rooted(self.plane.size);
        let outcome = self.bcast_data(OP, root, value, resolved);
        let ((result, moved), gen) = self.close_op(OP, outcome)?;
        self.op_end(
            OP,
            root as i64,
            moved,
            &start,
            resolved.name(),
            self.rooted_rounds(resolved),
            gen,
        );
        Ok(result)
    }

    fn scatterv<T: Wire>(&mut self, root: usize, parts: Option<&[T]>) -> Result<T, RuntimeError> {
        const OP: &str = "scatterv";
        self.check_rank(OP, root)?;
        let start = self.op_begin(OP)?;
        let resolved = self.plane.policy.scatterv.resolve_rooted(self.plane.size);
        let outcome = self.scatterv_data(OP, root, parts, resolved);
        let ((result, moved), gen) = self.close_op(OP, outcome)?;
        self.op_end(
            OP,
            root as i64,
            moved,
            &start,
            resolved.name(),
            self.rooted_rounds(resolved),
            gen,
        );
        Ok(result)
    }

    fn gatherv<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<T>>, RuntimeError> {
        const OP: &str = "gatherv";
        match self.gather_impl(OP, root, value)? {
            None => Ok(None),
            Some(slots) => {
                let mut out = Vec::with_capacity(slots.len());
                for (rank, slot) in slots.into_iter().enumerate() {
                    match slot {
                        Some(v) => out.push(v),
                        None => return Err(RuntimeError::RankDead { op: OP, rank }),
                    }
                }
                Ok(Some(out))
            }
        }
    }

    fn gather_available<T: Wire>(
        &mut self,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError> {
        self.gather_impl("gatherv", root, value)
    }

    fn allgatherv<T: Wire>(&mut self, value: &T) -> Result<Vec<T>, RuntimeError> {
        const OP: &str = "allgatherv";
        let start = self.op_begin(OP)?;
        let own = value.to_bytes();
        let resolved = self
            .plane
            .policy
            .allgatherv
            .resolve_allgatherv(self.plane.size, own.len() as u64);
        let outcome = self.allgather_slots(OP, own, resolved);
        let ((slots, moved), gen) = self.close_op(OP, outcome)?;
        let mut values = Vec::with_capacity(slots.len());
        for (rank, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(bytes) => values.push(Self::decode_as::<T>(OP, &bytes)?),
                None => return Err(RuntimeError::RankDead { op: OP, rank }),
            }
        }
        self.op_end(
            OP,
            -1,
            moved,
            &start,
            resolved.name(),
            self.rootless_rounds(resolved),
            gen,
        );
        Ok(values)
    }

    fn allgatherv_available<T: Wire>(
        &mut self,
        value: &T,
    ) -> Result<Vec<Option<T>>, RuntimeError> {
        const OP: &str = "allgatherv";
        let start = self.op_begin(OP)?;
        let own = value.to_bytes();
        let resolved = self
            .plane
            .policy
            .allgatherv
            .resolve_allgatherv(self.plane.size, own.len() as u64);
        let outcome = self.allgather_slots(OP, own, resolved);
        let ((slots, moved), gen) = self.close_op(OP, outcome)?;
        let mut values = Vec::with_capacity(slots.len());
        for slot in slots {
            values.push(match slot {
                Some(bytes) => Some(Self::decode_as::<T>(OP, &bytes)?),
                None => None,
            });
        }
        self.op_end(
            OP,
            -1,
            moved,
            &start,
            resolved.name(),
            self.rootless_rounds(resolved),
            gen,
        );
        Ok(values)
    }

    fn allreduce(&mut self, value: f64, op: ReduceOp) -> Result<f64, RuntimeError> {
        const OP: &str = "allreduce";
        let start = self.op_begin(OP)?;
        let own = value.to_bytes();
        let resolved = self.plane.policy.allreduce.resolve_allreduce(self.plane.size);
        // Every schedule gathers the raw contributions and folds them
        // through [`ThreadedComm::fold_slots`] — the pinned
        // rank-ascending order that keeps results bitwise identical
        // across hub, ring and tree (see the module docs of
        // `collective` and `wire`).
        let outcome = match resolved {
            Resolved::Hub => self.allreduce_hub(OP, own, op),
            Resolved::Ring | Resolved::Tree => {
                match self.allgather_slots(OP, own, resolved) {
                    Ok((slots, moved)) => {
                        Self::fold_slots(OP, &slots, op).map(|folded| (folded, moved))
                    }
                    Err(e) => Err(e),
                }
            }
        };
        let ((result, moved), gen) = self.close_op(OP, outcome)?;
        self.op_end(
            OP,
            -1,
            moved,
            &start,
            resolved.name(),
            self.rootless_rounds(resolved),
            gen,
        );
        Ok(result)
    }
}

impl ThreadedComm {
    /// Shared implementation of `gatherv`/`gather_available`:
    /// policy-dispatched data phase returning the raw slot vector on
    /// the root (`None` elsewhere).
    fn gather_impl<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        value: &T,
    ) -> Result<Option<Vec<Option<T>>>, RuntimeError> {
        self.check_rank(op, root)?;
        let start = self.op_begin(op)?;
        let resolved = self.plane.policy.gatherv.resolve_rooted(self.plane.size);
        let own = value.to_bytes();
        let outcome = match resolved {
            Resolved::Hub => self.gather_hub_data(op, root, own),
            Resolved::Ring | Resolved::Tree => self.gather_tree_data(op, root, own),
        };
        let ((slots, moved), gen) = self.close_op(op, outcome)?;
        let result = match slots {
            None => None,
            Some(slots) => {
                let mut values = Vec::with_capacity(slots.len());
                for slot in slots {
                    values.push(match slot {
                        Some(bytes) => Some(Self::decode_as::<T>(op, &bytes)?),
                        None => None,
                    });
                }
                Some(values)
            }
        };
        self.op_end(
            op,
            root as i64,
            moved,
            &start,
            resolved.name(),
            self.rooted_rounds(resolved),
            gen,
        );
        Ok(result)
    }

    /// Hub gather data phase: one star fan-in round to the root.
    fn gather_hub_data(
        &mut self,
        op: &'static str,
        root: usize,
        own: Vec<u8>,
    ) -> Result<(Option<Slots>, u64), RuntimeError> {
        let mut moved = own.len() as u64;
        if self.rank == root {
            let slots = self.collect_payloads(op, &own)?;
            let live = self.agreed_live();
            let lens: Vec<u64> = live
                .iter()
                .map(|&r| slots[r].as_ref().map_or(0, |b| b.len() as u64))
                .collect();
            moved += lens.iter().sum::<u64>();
            let rounds = vec![collective::star_gather_round(&live, root, &lens)];
            self.deposit(charge_of(&rounds));
            Ok((Some(slots), moved))
        } else {
            // Root death is fatal for a gather.
            self.raw_send(op, root, own)?;
            Ok((None, moved))
        }
    }

    /// Tree gather data phase: the reverse binomial tree. Every rank
    /// merges its children's slot bundles (a dead child loses its
    /// whole subtree's contributions — they stay `None`) and forwards
    /// the accumulated bundle to its parent.
    fn gather_tree_data(
        &mut self,
        op: &'static str,
        root: usize,
        own: Vec<u8>,
    ) -> Result<(Option<Slots>, u64), RuntimeError> {
        let size = self.plane.size;
        let live = self.agreed_live();
        let q = live.len();
        let Some(vroot) = live.iter().position(|&r| r == root) else {
            return Err(RuntimeError::RankDead { op, rank: root });
        };
        let pos = self.agreed_pos(op, &live)?;
        let vi = (pos + q - vroot) % q;
        let mut slots: Slots = vec![None; size];
        let mut moved = own.len() as u64;
        slots[self.rank] = Some(own);
        // Children deliver in descending round order (the reverse of
        // the broadcast schedule): the child reached last sends first.
        for &(_, child_vi) in collective::binomial_children(vi, q).iter().rev() {
            let child_abs = Self::pos_to_abs(&live, vroot, child_vi);
            if let Some(bytes) = self.recv_tolerant(op, child_abs)? {
                moved += bytes.len() as u64;
                let bundle: Slots = Self::decode_as(op, &bytes)?;
                if bundle.len() == size {
                    merge_slots(&mut slots, bundle);
                }
            }
        }
        if vi == 0 {
            let lens_by_vi: Vec<u64> = (0..q)
                .map(|v| {
                    slots[Self::pos_to_abs(&live, vroot, v)]
                        .as_ref()
                        .map_or(0, |b| b.len() as u64)
                })
                .collect();
            self.deposit(charge_of(&collective::gatherv_rounds(
                size, &live, vroot, &lens_by_vi,
            )));
            Ok((Some(slots), moved))
        } else {
            let parent_abs = Self::pos_to_abs(
                &live,
                vroot,
                collective::binomial_parent(vi).expect("vi > 0 has a parent"),
            );
            let msg = slots.to_bytes();
            moved += msg.len() as u64;
            // A dead parent orphans this subtree's contributions —
            // the root degrades them to `None` slots.
            self.send_tolerant(op, parent_abs, msg)?;
            Ok((None, moved))
        }
    }

    /// Hub broadcast/scatter and tree broadcast/scatter data phases.
    fn bcast_data<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        value: Option<&T>,
        resolved: Resolved,
    ) -> Result<(T, u64), RuntimeError> {
        match resolved {
            Resolved::Hub => {
                if self.rank == root {
                    let value = value.ok_or_else(|| {
                        RuntimeError::App("bcast: root must supply Some(value)".to_owned())
                    })?;
                    let bytes = value.to_bytes();
                    let live = self.agreed_live();
                    for &dst in &live {
                        if dst == self.rank {
                            continue;
                        }
                        self.send_tolerant(op, dst, bytes.clone())?;
                    }
                    let lens = vec![bytes.len() as u64; live.len()];
                    let rounds = vec![collective::star_scatter_round(&live, root, &lens)];
                    self.deposit(charge_of(&rounds));
                    Ok((Self::decode_as::<T>(op, &bytes)?, bytes.len() as u64))
                } else {
                    let bytes = self.raw_recv(op, root, false)?;
                    Ok((Self::decode_as::<T>(op, &bytes)?, bytes.len() as u64))
                }
            }
            Resolved::Ring | Resolved::Tree => {
                let own = if self.rank == root {
                    Some(
                        value
                            .ok_or_else(|| {
                                RuntimeError::App(
                                    "bcast: root must supply Some(value)".to_owned(),
                                )
                            })?
                            .to_bytes(),
                    )
                } else {
                    None
                };
                let (blob, msg_len) = self.bcast_tree_data(op, root, own)?;
                match blob {
                    Some(bytes) => Ok((Self::decode_as::<T>(op, &bytes)?, msg_len)),
                    // The value never reached this rank: somewhere on
                    // the root-to-here path a rank died. Surfaced as
                    // the broadcast root being unreachable.
                    None => Err(RuntimeError::RankDead { op, rank: root }),
                }
            }
        }
    }

    /// Scatter data phase.
    fn scatterv_data<T: Wire>(
        &mut self,
        op: &'static str,
        root: usize,
        parts: Option<&[T]>,
        resolved: Resolved,
    ) -> Result<(T, u64), RuntimeError> {
        let size = self.plane.size;
        let encoded: Option<Vec<Vec<u8>>> = if self.rank == root {
            let parts = parts.ok_or_else(|| {
                RuntimeError::App("scatterv: root must supply Some(parts)".to_owned())
            })?;
            if parts.len() != size {
                return Err(RuntimeError::SizeMismatch {
                    op,
                    expected: size,
                    got: parts.len(),
                });
            }
            Some(parts.iter().map(Wire::to_bytes).collect())
        } else {
            None
        };
        match resolved {
            Resolved::Hub => {
                if let Some(encoded) = encoded {
                    let live = self.agreed_live();
                    let mut sent = 0u64;
                    for &dst in &live {
                        if dst == self.rank {
                            continue;
                        }
                        sent += encoded[dst].len() as u64;
                        self.send_tolerant(op, dst, encoded[dst].clone())?;
                    }
                    let lens: Vec<u64> =
                        live.iter().map(|&r| encoded[r].len() as u64).collect();
                    let rounds = vec![collective::star_scatter_round(&live, root, &lens)];
                    self.deposit(charge_of(&rounds));
                    Ok((Self::decode_as::<T>(op, &encoded[self.rank])?, sent))
                } else {
                    let bytes = self.raw_recv(op, root, false)?;
                    Ok((Self::decode_as::<T>(op, &bytes)?, bytes.len() as u64))
                }
            }
            Resolved::Ring | Resolved::Tree => {
                let live = self.agreed_live();
                let q = live.len();
                let Some(vroot) = live.iter().position(|&r| r == root) else {
                    return Err(RuntimeError::RankDead { op, rank: root });
                };
                let pos = self.agreed_pos(op, &live)?;
                let vi = (pos + q - vroot) % q;
                let mut moved = 0u64;
                // Obtain this subtree's slot bundle.
                let slots: Slots = if let Some(encoded) = &encoded {
                    let lens_by_vi: Vec<u64> = (0..q)
                        .map(|v| encoded[Self::pos_to_abs(&live, vroot, v)].len() as u64)
                        .collect();
                    self.deposit(charge_of(&collective::scatterv_rounds(
                        size, &live, vroot, &lens_by_vi,
                    )));
                    encoded.iter().map(|b| Some(b.clone())).collect()
                } else {
                    let parent_abs = Self::pos_to_abs(
                        &live,
                        vroot,
                        collective::binomial_parent(vi).expect("vi > 0 has a parent"),
                    );
                    match self.recv_tolerant(op, parent_abs)? {
                        Some(bytes) => {
                            moved += bytes.len() as u64;
                            let bundle: Slots = Self::decode_as(op, &bytes)?;
                            if bundle.len() == size {
                                bundle
                            } else {
                                vec![None; size]
                            }
                        }
                        // Dead parent: this subtree's parts are lost.
                        // Forward the poison bundle so descendants
                        // degrade in one hop instead of timing out.
                        None => vec![None; size],
                    }
                };
                // Forward each child its subtree's sub-bundle.
                for (_, child_vi) in collective::binomial_children(vi, q) {
                    let child_abs = Self::pos_to_abs(&live, vroot, child_vi);
                    let mut bundle: Slots = vec![None; size];
                    for v in collective::binomial_subtree(child_vi, q) {
                        let abs = Self::pos_to_abs(&live, vroot, v);
                        bundle[abs] = slots[abs].clone();
                    }
                    let msg = bundle.to_bytes();
                    moved += msg.len() as u64;
                    self.send_tolerant(op, child_abs, msg)?;
                }
                match &slots[self.rank] {
                    Some(bytes) => Ok((Self::decode_as::<T>(op, bytes)?, moved)),
                    None => Err(RuntimeError::RankDead { op, rank: root }),
                }
            }
        }
    }

    /// Hub allreduce data phase: star fan-in of raw contributions to
    /// the lowest agreed-live rank, central fold (pinned rank-ascending
    /// order), star fan-out of the folded result.
    fn allreduce_hub(
        &mut self,
        op: &'static str,
        own: Vec<u8>,
        rop: ReduceOp,
    ) -> Result<(f64, u64), RuntimeError> {
        let live = self.agreed_live();
        let hub = live[0];
        if self.rank == hub {
            let slots = self.collect_payloads(op, &own)?;
            let folded = Self::fold_slots(op, &slots, rop)?;
            let bytes = folded.to_bytes();
            for &dst in &live {
                if dst == hub {
                    continue;
                }
                self.send_tolerant(op, dst, bytes.clone())?;
            }
            let lens = vec![8u64; live.len()];
            let mut rounds = vec![collective::star_gather_round(&live, hub, &lens)];
            rounds.push(collective::star_scatter_round(&live, hub, &lens));
            self.deposit(charge_of(&rounds));
            Ok((folded, 8 * live.len() as u64))
        } else {
            self.raw_send(op, hub, own)?;
            let bytes = self.raw_recv(op, hub, false)?;
            Ok((Self::decode_as::<f64>(op, &bytes)?, 16))
        }
    }
}

/// Runs one closure per rank on scoped threads and returns their
/// results in rank order. The closure receives the rank's
/// communicator handle by value.
///
/// # Panics
///
/// Propagates a panicking rank closure.
pub fn run_ranks<R, F>(comms: Vec<ThreadedComm>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadedComm) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(json: &str) -> FaultPlan {
        FaultPlan::from_json(json).unwrap()
    }

    fn fast_plan() -> FaultPlan {
        plan(r#"{"deadline": 5.0}"#)
    }

    #[test]
    fn send_recv_round_trip() {
        let comms = RuntimeConfig::thread()
            .with_plan(fast_plan())
            .build(2);
        let out = run_ranks(comms, |mut c| -> Result<Option<Vec<f64>>, RuntimeError> {
            if c.rank() == 0 {
                c.send(1, &vec![1.0f64, 2.0, 3.0])?;
                Ok(None)
            } else {
                Ok(Some(c.recv::<Vec<f64>>(0)?))
            }
        });
        assert_eq!(out[1].as_ref().unwrap().as_ref().unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(2);
        let out = run_ranks(comms, |mut c| -> Result<Vec<u64>, RuntimeError> {
            if c.rank() == 0 {
                for i in 0..10u64 {
                    c.send(1, &i)?;
                }
                Ok(vec![])
            } else {
                (0..10).map(|_| c.recv::<u64>(0)).collect()
            }
        });
        assert_eq!(out[1].as_ref().unwrap(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn collectives_on_thread_backend() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(4);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            let r = c.rank();
            // bcast from a non-zero root.
            let v = c.bcast(2, (r == 2).then_some(&42u64))?;
            assert_eq!(v, 42);
            // scatterv: rank r receives r * 10.
            let parts: Option<Vec<u64>> = (r == 1).then(|| (0..4).map(|i| i * 10).collect());
            let mine = c.scatterv(1, parts.as_deref())?;
            assert_eq!(mine, r as u64 * 10);
            // gatherv back onto 3.
            let gathered = c.gatherv(3, &mine)?;
            if r == 3 {
                assert_eq!(gathered.unwrap(), vec![0, 10, 20, 30]);
            } else {
                assert!(gathered.is_none());
            }
            // allgatherv.
            let all = c.allgatherv(&(r as u64))?;
            assert_eq!(all, vec![0, 1, 2, 3]);
            // allreduce.
            assert_eq!(c.allreduce(r as f64, ReduceOp::Sum)?, 6.0);
            assert_eq!(c.allreduce(r as f64, ReduceOp::Max)?, 3.0);
            assert_eq!(c.allreduce(r as f64, ReduceOp::Min)?, 0.0);
            c.barrier()?;
            Ok(())
        });
        for r in out {
            r.unwrap();
        }
    }

    #[test]
    fn sim_backend_charges_virtual_time_deterministically() {
        let run = || {
            let (comms, handle) = RuntimeConfig::sim(4, LinkModel::ethernet())
                .with_plan(fast_plan())
                .build_with_handle(4);
            let out = run_ranks(comms, |mut c| -> Result<f64, RuntimeError> {
                let r = c.rank();
                let _ = c.bcast(0, (r == 0).then_some(&vec![0.0f64; 128]))?;
                let all = c.allgatherv(&vec![r as f64; 64])?;
                assert_eq!(all.len(), 4, "one contribution per rank");
                assert!(all.iter().all(|v| v.len() == 64));
                let parts: Option<Vec<Vec<f64>>> =
                    (r == 0).then(|| (0..4).map(|i| vec![0.0; 32 * (i + 1)]).collect());
                let mine = c.scatterv(0, parts.as_deref())?;
                assert_eq!(mine.len(), 32 * (r + 1));
                c.barrier()?;
                c.allreduce(1.0, ReduceOp::Sum)
            });
            for r in out {
                assert_eq!(r.unwrap(), 4.0);
            }
            handle.virtual_time().unwrap()
        };
        let t1 = run();
        let t2 = run();
        assert!(t1 > 0.0, "virtual time must advance: {t1}");
        assert_eq!(t1.to_bits(), t2.to_bits(), "sim clocks must be deterministic");
    }

    #[test]
    fn p2p_sim_charge_at_delivery() {
        let (comms, handle) = RuntimeConfig::sim(2, LinkModel::ethernet())
            .with_plan(fast_plan())
            .build_with_handle(2);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                c.send(1, &vec![1.0f64; 1000])?;
            } else {
                let v: Vec<f64> = c.recv(0)?;
                assert_eq!(v.len(), 1000);
                assert!(c.virtual_time().unwrap() > 0.0);
            }
            Ok(())
        });
        for r in out {
            r.unwrap();
        }
        assert!(handle.virtual_time().unwrap() > 0.0);
        assert!(handle.virtual_comm_seconds().unwrap() > 0.0);
    }

    #[test]
    fn invalid_ranks_are_rejected() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(2);
        let out = run_ranks(comms, |mut c| {
            let send = c.send(5, &1u64);
            let bcast = c.bcast::<u64>(9, None);
            (send, bcast)
        });
        for (send, bcast) in out {
            assert!(matches!(send, Err(RuntimeError::InvalidRank { rank: 5, .. })));
            assert!(matches!(bcast, Err(RuntimeError::InvalidRank { rank: 9, .. })));
        }
    }

    #[test]
    fn scatterv_arity_is_checked() {
        let comms = RuntimeConfig::thread().with_plan(fast_plan()).build(1);
        let out = run_ranks(comms, |mut c| {
            c.scatterv(0, Some(&[1u64, 2, 3]))
        });
        assert!(matches!(
            out.into_iter().next().unwrap(),
            Err(RuntimeError::SizeMismatch {
                expected: 1,
                got: 3,
                ..
            })
        ));
    }

    #[test]
    fn recv_deadline_fails_instead_of_hanging() {
        let comms = RuntimeConfig::thread()
            .with_plan(plan(r#"{"deadline": 0.2}"#))
            .build(2);
        let out = run_ranks(comms, |mut c| {
            if c.rank() == 0 {
                // Never sends: rank 1 must time out, not hang.
                Ok(0u64)
            } else {
                c.recv::<u64>(0)
            }
        });
        assert!(matches!(
            out[1],
            Err(RuntimeError::Timeout { rank: 1, .. })
        ));
    }
}
