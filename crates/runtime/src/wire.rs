//! Typed message payloads: a tiny fixed-width little-endian codec.
//!
//! The runtime moves raw `Vec<u8>` envelopes; [`Wire`] is the typed
//! boundary on top, mirroring how `rsmpi` maps Rust types onto MPI
//! datatypes. Encodings are self-delimiting (vectors carry a `u64`
//! length prefix) and deterministic, so the same value always
//! produces the same bytes — a property the byte-accounted trace
//! events and the simulated backend's virtual-clock charges rely on.

use crate::error::RuntimeError;
use fupermod_core::Point;

/// Upper bound on the byte length of any single decodable payload.
///
/// [`Wire::decode`] rejects larger buffers before touching them, and
/// the vector decoder bounds both its element count and its
/// pre-allocation by the same cap, so a hostile or corrupted frame
/// can neither over-allocate nor spin: the work done by a failed
/// decode is proportional to the bytes actually received, never to a
/// length a sender merely *claimed*. The network transport enforces
/// the same cap on incoming frames before allocating
/// (`net::MAX_FRAME_LEN`).
pub const MAX_WIRE_LEN: usize = 64 << 20;

/// A value that can cross the runtime as a message payload.
pub trait Wire: Sized {
    /// A lower bound, in bytes, on the encoding of any value of this
    /// type. Used by the vector decoder to reject hostile length
    /// prefixes (`claimed elements × MIN_ENCODED_LEN` can never
    /// exceed the bytes that follow) *before* allocating. Zero is
    /// legal (`()` encodes to nothing) — such elements fall back to
    /// the [`MAX_WIRE_LEN`] count cap instead.
    const MIN_ENCODED_LEN: usize;

    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] on truncated or malformed
    /// input.
    fn decode_from(bytes: &[u8]) -> Result<(Self, usize), RuntimeError>;

    /// Encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must consume the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] on truncated, malformed or
    /// trailing input, and on buffers longer than [`MAX_WIRE_LEN`].
    fn decode(bytes: &[u8]) -> Result<Self, RuntimeError> {
        if bytes.len() > MAX_WIRE_LEN {
            return Err(RuntimeError::Decode {
                what: "payload",
                detail: format!(
                    "{} bytes exceeds the {MAX_WIRE_LEN}-byte payload cap",
                    bytes.len()
                ),
            });
        }
        let (value, used) = Self::decode_from(bytes)?;
        if used != bytes.len() {
            return Err(RuntimeError::Decode {
                what: "payload",
                detail: format!("{} trailing bytes", bytes.len() - used),
            });
        }
        Ok(value)
    }
}

fn take<const N: usize>(bytes: &[u8], what: &'static str) -> Result<[u8; N], RuntimeError> {
    bytes
        .get(..N)
        .and_then(|s| s.try_into().ok())
        .ok_or(RuntimeError::Decode {
            what,
            detail: "truncated".to_owned(),
        })
}

macro_rules! impl_wire_scalar {
    ($ty:ty, $what:literal) => {
        impl Wire for $ty {
            const MIN_ENCODED_LEN: usize = std::mem::size_of::<$ty>();
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_from(bytes: &[u8]) -> Result<(Self, usize), RuntimeError> {
                const N: usize = std::mem::size_of::<$ty>();
                let raw = take::<N>(bytes, $what)?;
                Ok((<$ty>::from_le_bytes(raw), N))
            }
        }
    };
}

impl_wire_scalar!(u8, "u8");
impl_wire_scalar!(u32, "u32");
impl_wire_scalar!(u64, "u64");
impl_wire_scalar!(f64, "f64");

impl Wire for bool {
    const MIN_ENCODED_LEN: usize = 1;
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode_from(bytes: &[u8]) -> Result<(Self, usize), RuntimeError> {
        let (raw, used) = u8::decode_from(bytes)?;
        match raw {
            0 => Ok((false, used)),
            1 => Ok((true, used)),
            other => Err(RuntimeError::Decode {
                what: "bool",
                detail: format!("invalid byte {other}"),
            }),
        }
    }
}

impl Wire for () {
    const MIN_ENCODED_LEN: usize = 0;
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode_from(_bytes: &[u8]) -> Result<(Self, usize), RuntimeError> {
        Ok(((), 0))
    }
}

impl<T: Wire> Wire for Vec<T> {
    // The u64 element-count prefix.
    const MIN_ENCODED_LEN: usize = 8;

    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode_from(bytes: &[u8]) -> Result<(Self, usize), RuntimeError> {
        let (len, mut used) = u64::decode_from(bytes)?;
        let len = usize::try_from(len).map_err(|_| RuntimeError::Decode {
            what: "vec length",
            detail: "length exceeds usize".to_owned(),
        })?;
        // Guard against hostile prefixes before allocating: `len`
        // elements need at least `len × MIN_ENCODED_LEN` bytes after
        // the prefix. Zero-width elements (`()` and compositions of
        // it) cannot be bounded by the remaining bytes, so their
        // count falls back to the global payload cap — keeping the
        // decode loop finite either way.
        let remaining = bytes.len() - used;
        let hostile = match T::MIN_ENCODED_LEN {
            0 => len > MAX_WIRE_LEN,
            min => len > remaining / min,
        };
        if hostile {
            return Err(RuntimeError::Decode {
                what: "vec length",
                detail: format!("{len} elements in a {}-byte payload", bytes.len()),
            });
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            let (item, n) = T::decode_from(&bytes[used..])?;
            used += n;
            items.push(item);
        }
        Ok((items, used))
    }
}

/// `Option<T>` encodes as a one-byte presence tag (`0` = `None`,
/// `1` = `Some`) followed by the payload when present.
///
/// The availability-tolerant collectives (`gather_available`,
/// `allgatherv_available`) move per-rank slots of exactly this shape:
/// `None` marks a dead or lost contribution. Keeping the encoding on
/// the [`Wire`] trait means those slot vectors stay deterministic
/// bytes, which the simulated backend's virtual-clock charges and the
/// **pinned reduction order** depend on: every `allreduce` schedule
/// (hub, ring, tree) gathers raw contributions into rank-indexed
/// slots and folds them *locally, left-associated, in ascending rank
/// order, skipping `None` slots* — so the float result is bitwise
/// identical across algorithms (see `comm.rs` for the fold itself).
impl<T: Wire> Wire for Option<T> {
    // The one-byte presence tag.
    const MIN_ENCODED_LEN: usize = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode_from(bytes: &[u8]) -> Result<(Self, usize), RuntimeError> {
        let (tag, used) = u8::decode_from(bytes)?;
        match tag {
            0 => Ok((None, used)),
            1 => {
                let (v, n) = T::decode_from(&bytes[used..])?;
                Ok((Some(v), used + n))
            }
            other => Err(RuntimeError::Decode {
                what: "option tag",
                detail: format!("invalid byte {other}"),
            }),
        }
    }
}

impl Wire for Point {
    // d: u64 + t: f64 + reps: u32 + ci: f64.
    const MIN_ENCODED_LEN: usize = 28;

    fn encode(&self, out: &mut Vec<u8>) {
        self.d.encode(out);
        self.t.encode(out);
        self.reps.encode(out);
        self.ci.encode(out);
    }
    fn decode_from(bytes: &[u8]) -> Result<(Self, usize), RuntimeError> {
        let (d, a) = u64::decode_from(bytes)?;
        let (t, b) = f64::decode_from(&bytes[a..])?;
        let (reps, c) = u32::decode_from(&bytes[a + b..])?;
        let (ci, e) = f64::decode_from(&bytes[a + b + c..])?;
        Ok((Point { d, t, reps, ci }, a + b + c + e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::decode(&bytes).unwrap(), value);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(-1.5f64);
        round_trip(f64::INFINITY);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn vectors_round_trip() {
        round_trip(Vec::<u64>::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(vec![0.5f64, -0.25]);
        round_trip(vec![vec![1u32, 2], vec![], vec![3]]);
    }

    #[test]
    fn points_round_trip_bit_exact() {
        let p = Point {
            d: 1234,
            t: 0.1 + 0.2, // not exactly 0.3: must survive bit-exactly
            reps: 7,
            ci: 1e-9,
        };
        let bytes = p.to_bytes();
        let back = Point::decode(&bytes).unwrap();
        assert_eq!(back.t.to_bits(), p.t.to_bits());
        assert_eq!(back, p);
        round_trip(vec![p, Point::single(0, 0.0)]);
    }

    #[test]
    fn truncated_and_trailing_input_is_rejected() {
        assert!(u64::decode(&[1, 2, 3]).is_err());
        assert!(f64::decode(&[0u8; 9]).is_err());
        assert!(bool::decode(&[2]).is_err());
        let bytes = [9u64.to_le_bytes().to_vec(), vec![0u8; 4]].concat();
        assert!(Vec::<u64>::decode(&bytes).is_err(), "hostile length prefix");
    }

    /// A hostile element count must be rejected *before* any
    /// allocation: `len × MIN_ENCODED_LEN` can never exceed the bytes
    /// that actually follow the prefix, so claiming `u64::MAX`
    /// elements of any type fails in O(1) without reserving memory.
    #[test]
    fn hostile_length_prefixes_never_allocate() {
        let huge = u64::MAX.to_le_bytes().to_vec();
        assert!(Vec::<u64>::decode(&huge).is_err());
        assert!(Vec::<u8>::decode(&huge).is_err());
        assert!(Vec::<Vec<u64>>::decode(&huge).is_err());
        assert!(Vec::<Option<u8>>::decode(&huge).is_err());
        assert!(Vec::<Point>::decode(&huge).is_err());
        // Zero-width elements bypass the per-byte bound; the count cap
        // still keeps the decode loop finite.
        assert!(Vec::<()>::decode(&huge).is_err());
        assert!(Vec::<Vec<()>>::decode(&huge).is_err());
        // One-byte elements: claiming one more element than the
        // payload holds is the tightest rejected prefix.
        let bytes = [5u64.to_le_bytes().to_vec(), vec![1u8; 4]].concat();
        assert!(Vec::<u8>::decode(&bytes).is_err());
        let ok = [4u64.to_le_bytes().to_vec(), vec![1u8; 4]].concat();
        assert_eq!(Vec::<u8>::decode(&ok).unwrap(), vec![1u8; 4]);
        // A legal count of zero-width elements still round-trips.
        round_trip(vec![(), (), ()]);
    }

    #[test]
    fn oversized_payloads_are_rejected_by_the_cap() {
        let oversized = vec![0u8; MAX_WIRE_LEN + 1];
        match Vec::<u8>::decode(&oversized) {
            Err(RuntimeError::Decode { what, .. }) => assert_eq!(what, "payload"),
            other => panic!("expected Decode error, got {other:?}"),
        }
        // At the cap itself the decode is still legal.
        let mut at_cap = ((MAX_WIRE_LEN - 8) as u64).to_le_bytes().to_vec();
        at_cap.resize(MAX_WIRE_LEN, 7);
        assert_eq!(Vec::<u8>::decode(&at_cap).unwrap().len(), MAX_WIRE_LEN - 8);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = vec![Point::single(5, 0.25), Point::single(7, 1.0 / 3.0)];
        assert_eq!(v.to_bytes(), v.to_bytes());
    }

    /// Asserts the fuzz property for one payload type: decoding
    /// arbitrary bytes either fails with a typed error or produces a
    /// value whose canonical re-encoding is exactly the input.
    fn decode_is_total_and_canonical<T: Wire>(bytes: &[u8]) {
        if let Ok(value) = T::decode(bytes) {
            assert_eq!(value.to_bytes(), bytes, "non-canonical decode");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(512))]

        /// Fuzz-style decoder property: feeding *arbitrary* bytes to
        /// every payload type in use must either fail with a typed
        /// [`RuntimeError::Decode`] or round-trip canonically — never
        /// panic, hang or over-allocate. (Errors surface as
        /// `Result`s, so "no panic" is checked simply by running to
        /// completion.)
        #[test]
        fn decode_survives_arbitrary_bytes(
            bytes in proptest::collection::vec(0u8..=255u8, 0usize..64)
        ) {
            decode_is_total_and_canonical::<u8>(&bytes);
            decode_is_total_and_canonical::<u32>(&bytes);
            decode_is_total_and_canonical::<u64>(&bytes);
            decode_is_total_and_canonical::<f64>(&bytes);
            decode_is_total_and_canonical::<bool>(&bytes);
            decode_is_total_and_canonical::<Point>(&bytes);
            decode_is_total_and_canonical::<Vec<u8>>(&bytes);
            decode_is_total_and_canonical::<Vec<u64>>(&bytes);
            decode_is_total_and_canonical::<Vec<Vec<u32>>>(&bytes);
            decode_is_total_and_canonical::<Vec<Point>>(&bytes);
            decode_is_total_and_canonical::<Option<Vec<u64>>>(&bytes);
            decode_is_total_and_canonical::<Vec<Option<Vec<u8>>>>(&bytes);
        }
    }

    #[test]
    fn options_round_trip_and_reject_bad_tags() {
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
        round_trip(Some(vec![1.5f64, -0.5]));
        round_trip(vec![Some(1u32), None, Some(3)]);
        // None is exactly one byte; Some adds the payload after the tag.
        assert_eq!(Option::<u64>::None.to_bytes(), vec![0]);
        assert_eq!(Some(7u8).to_bytes(), vec![1, 7]);
        assert!(Option::<u8>::decode(&[2, 0]).is_err(), "invalid tag");
        assert!(Option::<u64>::decode(&[1]).is_err(), "truncated payload");
    }
}
