//! Typed runtime errors: every way a message-passing operation can
//! fail surfaces here instead of hanging or panicking.

use std::error::Error;
use std::fmt;

use fupermod_platform::PlatformError;

/// Error type of the `fupermod-runtime` message-passing layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A collective received a per-rank vector whose length does not
    /// match the communicator size.
    SizeMismatch {
        /// Operation tag (`scatterv`, `gatherv`, ...).
        op: &'static str,
        /// Expected length (the communicator size).
        expected: usize,
        /// Observed length.
        got: usize,
    },
    /// The operation involves a rank that has died (fail-stop).
    RankDead {
        /// Operation tag.
        op: &'static str,
        /// The dead rank.
        rank: usize,
    },
    /// The per-operation deadline elapsed before the operation could
    /// complete. The violating rank is marked dead (fail-stop) so the
    /// rest of the job observes [`RuntimeError::RankDead`] instead of
    /// hanging.
    Timeout {
        /// Operation tag.
        op: &'static str,
        /// The rank whose deadline elapsed.
        rank: usize,
        /// The configured deadline, seconds.
        deadline: f64,
    },
    /// A message was dropped by fault injection and every bounded
    /// retry (with exponential backoff) was dropped too.
    RetriesExhausted {
        /// Operation tag.
        op: &'static str,
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Attempts made (initial send plus retries).
        attempts: u32,
    },
    /// A received payload could not be decoded as the requested type.
    Decode {
        /// What was being decoded (type or operation tag).
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An operation named a rank outside the communicator.
    InvalidRank {
        /// Operation tag.
        op: &'static str,
        /// The out-of-range rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// A reduction finished with no contributions to fold — every
    /// slot of the gathered contribution vector was `None`. With the
    /// calling rank alive this indicates a logic error (the caller
    /// always contributes its own value), so it is surfaced as a
    /// typed error rather than a panic.
    NoContributions {
        /// Operation tag (`allreduce`, ...).
        op: &'static str,
    },
    /// A nonblocking collective was posted while another collective
    /// request from the same rank was still outstanding. The closing
    /// barrier generation can carry one collective per rank at a
    /// time; complete (`wait`/`test`-to-ready/drop) the first request
    /// before posting the next.
    RequestBusy {
        /// Operation tag (`ibcast`, `iallgatherv`).
        op: &'static str,
        /// The posting rank.
        rank: usize,
    },
    /// The TCP transport failed outside any single peer's death:
    /// rendezvous/handshake errors, a listener that cannot bind, a
    /// corrupt frame (bad magic, version, length or checksum), or a
    /// bootstrap that timed out. Per-peer socket failures during
    /// normal operation map onto [`RuntimeError::RankDead`] via the
    /// agreed-membership death path instead.
    Net(String),
    /// A fault plan could not be parsed or validated.
    InvalidPlan(String),
    /// The platform substrate rejected an operation.
    Platform(PlatformError),
    /// An application closure running on a rank failed.
    App(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::SizeMismatch { op, expected, got } => {
                write!(f, "{op}: per-rank vector has {got} entries, communicator size is {expected}")
            }
            RuntimeError::RankDead { op, rank } => {
                write!(f, "{op}: rank {rank} is dead")
            }
            RuntimeError::Timeout { op, rank, deadline } => {
                write!(f, "{op}: rank {rank} exceeded the {deadline} s deadline")
            }
            RuntimeError::RetriesExhausted { op, src, dst, attempts } => {
                write!(f, "{op}: {src} -> {dst} dropped on all {attempts} attempts")
            }
            RuntimeError::Decode { what, detail } => {
                write!(f, "decode {what}: {detail}")
            }
            RuntimeError::InvalidRank { op, rank, size } => {
                write!(f, "{op}: rank {rank} outside communicator of size {size}")
            }
            RuntimeError::NoContributions { op } => {
                write!(f, "{op}: reduction over zero contributions")
            }
            RuntimeError::RequestBusy { op, rank } => {
                write!(
                    f,
                    "{op}: rank {rank} already has an outstanding collective request"
                )
            }
            RuntimeError::Net(msg) => write!(f, "tcp transport: {msg}"),
            RuntimeError::InvalidPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            RuntimeError::Platform(e) => write!(f, "platform error: {e}"),
            RuntimeError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for RuntimeError {
    fn from(e: PlatformError) -> Self {
        RuntimeError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::Timeout {
            op: "recv",
            rank: 3,
            deadline: 2.5,
        };
        let text = e.to_string();
        assert!(text.contains("recv") && text.contains('3') && text.contains("2.5"));
        assert!(RuntimeError::from(PlatformError::Disconnected { op: "send", rank: 1 })
            .to_string()
            .contains("platform"));
    }
}
