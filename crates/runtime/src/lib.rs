//! `fupermod-runtime`: a rank-based message-passing runtime for the
//! FuPerMod reproduction.
//!
//! The paper's tools (`fupermod_dynamic`, the builders, the data
//! partitioning API) assume an MPI job: `p` ranks, collectives, and a
//! root that owns the models. This crate supplies that substrate
//! without an MPI installation, in the spirit of `rsmpi`'s typed
//! bindings:
//!
//! * [`Communicator`] — rank/size, typed point-to-point
//!   ([`Wire`]-encoded payloads), `barrier`, and the collectives the
//!   paper's loop needs (`bcast`, `scatterv`, `gatherv`,
//!   `allgatherv`, `allreduce`), each carried by a configurable
//!   schedule ([`AlgorithmPolicy`]: `hub | ring | tree | auto`) —
//!   binomial trees for rooted operations, a pipelined ring and a
//!   recursive-doubling butterfly for rootless ones, all bitwise
//!   identical to the compatibility hub on fault-free plans (see
//!   [`collective`]).
//! * Three backends behind one API:
//!   * a **threaded** backend ([`RuntimeConfig::thread`]) — every
//!     rank is an OS thread in this process, wall-clock timing
//!     (generalises the old `fupermod_platform::ThreadComm`, since
//!     removed);
//!   * a **simulated** backend ([`RuntimeConfig::sim`]) — the same
//!     threads, but every operation charges the Hockney virtual
//!     clocks of the existing `fupermod_platform::SimComm`,
//!     deterministically;
//!   * a **TCP** backend ([`connect`] / [`TcpConfig`]) — one rank
//!     per OS process, peers linked by length-prefixed checksummed
//!     frames over sockets, so the same programs run across real
//!     processes and hosts (see `docs/RUNTIME.md` §10).
//! * A **fault layer** ([`FaultPlan`]): message delays, drops with
//!   bounded retry and exponential backoff, stragglers, and fail-stop
//!   rank death, all surfacing as typed [`RuntimeError`]s and
//!   schema-v2 `comm`/`fault` trace events instead of hangs.
//! * A **distributed executor**
//!   ([`run_to_balance_distributed`]) that re-implements the serial
//!   `DynamicContext::run_to_balance` as N communicating rank
//!   closures — bit-identical on a fault-free plan, gracefully
//!   degrading (dead ranks rebalanced away) under an adversarial one.
//!
//! See `docs/RUNTIME.md` for a guided tour and the fault-plan JSON
//! schema.

#![warn(missing_docs)]

pub mod collective;
pub mod comm;
pub mod error;
pub mod executor;
pub mod fault;
pub mod net;
pub mod sim;
pub mod wire;

pub use collective::{Algorithm, AlgorithmPolicy};
pub use comm::request::{
    wait_all, AllgathervRequest, BcastRequest, Progress, RecvRequest, Request, SendRequest,
};
pub use comm::{
    run_ranks, Communicator, ReduceOp, RuntimeConfig, RuntimeHandle, ThreadedComm,
    DEFAULT_DEADLINE_SECS,
};
pub use error::RuntimeError;
pub use executor::{
    run_balance_rank, run_to_balance_distributed, run_to_balance_distributed_with,
    BalanceOutcome, OverlapMode,
};
pub use fault::{DeathRule, DelayRule, DropRule, FaultPlan, StragglerRule};
pub use net::{connect, connect_with_listener, TcpComm, TcpConfig};
pub use sim::{EventSim, SimEngine};
pub use wire::Wire;
