//! Topology-aware collective schedules: algorithm selection and the
//! pure round/hop plans the backends execute and charge.
//!
//! The original runtime routed every collective through a rank-0
//! **hub**: `p - 1` serialised receives followed by `p - 1`
//! serialised sends — an `O(p·m)` bottleneck at one rank and a single
//! point of failure for rootless operations, exactly the root-process
//! weakness of the paper's MPI tools. This module supplies the
//! alternatives:
//!
//! * **binomial tree** for the rooted operations (`bcast`,
//!   `scatterv`, `gatherv`, `barrier`): `ceil(log2 p)` rounds, no
//!   rank touches more than `log2 p` messages;
//! * **ring** for `allgatherv`/`allreduce`: `p - 1` fully pipelined
//!   rounds over nearest neighbours — every rank moves the same
//!   bytes, there is no hot rank;
//! * **recursive doubling** (a butterfly, selected as `tree` for the
//!   rootless operations): `log2 p` pairwise-exchange rounds with a
//!   pre/post round folding in the non-power-of-two remainder.
//!
//! Everything here is **pure**: schedules are plans —
//! `Vec<round>` where each round is a list of `(src, dst, bytes)`
//! hops between *absolute* ranks. The communicator executes the plan
//! against real mailboxes and deposits the same plan as a
//! virtual-time charge on the simulated backend
//! (`fupermod_platform::comm::SimComm::schedule`), so the Hockney
//! clocks advance per hop and per round — not per idealised
//! "collective transaction". Hops within one round must be
//! data-independent; dependent transfers go in later rounds.
//!
//! # Reduction order
//!
//! Every `allreduce` schedule — hub, ring and butterfly alike —
//! gathers the raw per-rank contributions and folds them **locally,
//! left-associated, in ascending rank order, skipping dead ranks**.
//! Floating-point reduction is not associative, so pinning the order
//! is what keeps the three algorithms bitwise identical (see
//! `Communicator::allreduce`).

/// Requested collective algorithm (per operation, see
/// [`AlgorithmPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Route through the lowest live rank: serialised star schedule.
    /// The compatibility default — bitwise identical results to the
    /// pre-existing behaviour.
    Hub,
    /// Pipelined nearest-neighbour ring (rootless operations;
    /// rooted operations fall back to [`Algorithm::Tree`], which
    /// a ring cannot improve on for single-root traffic).
    Ring,
    /// Binomial tree (rooted) / recursive doubling (rootless).
    Tree,
    /// Pick per operation from the communicator size and message
    /// size (see [`Algorithm::resolve_allgatherv`] for the
    /// crossover).
    Auto,
}

impl Algorithm {
    /// Parses a CLI spelling (`hub`, `ring`, `tree`, `auto`).
    pub fn parse(s: &str) -> Option<Algorithm> {
        match s {
            "hub" => Some(Algorithm::Hub),
            "ring" => Some(Algorithm::Ring),
            "tree" => Some(Algorithm::Tree),
            "auto" => Some(Algorithm::Auto),
            _ => None,
        }
    }

    /// Resolves the schedule for a rooted operation over `q` live
    /// ranks. `ring` falls back to the tree (a ring adds latency but
    /// no bandwidth for single-root traffic); `auto` keeps the hub
    /// only for `q <= 2`, where the star *is* the optimal schedule.
    pub fn resolve_rooted(self, q: usize) -> Resolved {
        match self {
            Algorithm::Hub => Resolved::Hub,
            Algorithm::Ring | Algorithm::Tree => Resolved::Tree,
            Algorithm::Auto => {
                if q <= AUTO_HUB_MAX_RANKS {
                    Resolved::Hub
                } else {
                    Resolved::Tree
                }
            }
        }
    }

    /// Resolves the schedule for `allgatherv` over `q` live ranks
    /// with a `bytes`-sized per-rank contribution.
    ///
    /// `auto` uses the classic latency/bandwidth crossover: recursive
    /// doubling (`tree`) needs only `log2 q` rounds and wins clearly
    /// while contributions are small; past
    /// [`AUTO_RING_CROSSOVER_BYTES`] both schedules are
    /// bandwidth-bound (measured within ~7% at 64 KiB, see
    /// `docs/RUNTIME.md` §6) and `auto` prefers the ring for its
    /// perfectly uniform per-rank load and nearest-neighbour-only
    /// traffic — the classic MPI large-message choice, and the one
    /// that avoids the butterfly's long-distance partners on
    /// switch-contended or hierarchical fabrics that the Hockney
    /// port model does not capture.
    ///
    /// **`auto` requires size-uniform contributions**: the decision
    /// is taken independently on every rank from its own payload, so
    /// ranks contributing different encoded lengths could resolve
    /// different schedules and time out. Every fixed-width [`crate::Wire`]
    /// payload (scalars, `Point`) is safe; for variable-length
    /// vectors pick an explicit algorithm.
    pub fn resolve_allgatherv(self, q: usize, bytes: u64) -> Resolved {
        match self {
            Algorithm::Hub => Resolved::Hub,
            Algorithm::Ring => Resolved::Ring,
            Algorithm::Tree => Resolved::Tree,
            Algorithm::Auto => {
                if q <= AUTO_HUB_MAX_RANKS {
                    Resolved::Hub
                } else if bytes <= AUTO_RING_CROSSOVER_BYTES {
                    Resolved::Tree
                } else {
                    Resolved::Ring
                }
            }
        }
    }

    /// Resolves the schedule for `allreduce` over `q` live ranks.
    /// Contributions are single `f64`s (8 bytes), firmly in the
    /// latency-bound regime, so `auto` always prefers recursive
    /// doubling beyond the 2-rank hub.
    pub fn resolve_allreduce(self, q: usize) -> Resolved {
        match self {
            Algorithm::Hub => Resolved::Hub,
            Algorithm::Ring => Resolved::Ring,
            Algorithm::Tree => Resolved::Tree,
            Algorithm::Auto => {
                if q <= AUTO_HUB_MAX_RANKS {
                    Resolved::Hub
                } else {
                    Resolved::Tree
                }
            }
        }
    }
}

/// `auto` keeps the hub up to this many live ranks: a star over one
/// or two ranks is already the optimal schedule.
pub const AUTO_HUB_MAX_RANKS: usize = 2;

/// `auto` crossover for `allgatherv`: per-rank contributions at or
/// under this many encoded bytes use recursive doubling, larger ones
/// the ring. At 1 KiB the Hockney ethernet model (`α = 50 µs`,
/// `β = 125 MB/s`) puts both schedules in the bandwidth-bound regime
/// — see `docs/RUNTIME.md` §6 for the measured table and the
/// rationale for preferring the ring there.
pub const AUTO_RING_CROSSOVER_BYTES: u64 = 1024;

/// The concrete schedule an [`Algorithm`] resolved to for one
/// operation (reported in the `algorithm` field of schema-v2 `comm`
/// trace events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// Star through the lowest live rank (or the operation root).
    Hub,
    /// Pipelined nearest-neighbour ring.
    Ring,
    /// Binomial tree / recursive-doubling butterfly.
    Tree,
}

impl Resolved {
    /// Stable lowercase tag for trace events.
    pub fn name(self) -> &'static str {
        match self {
            Resolved::Hub => "hub",
            Resolved::Ring => "ring",
            Resolved::Tree => "tree",
        }
    }
}

/// Per-operation algorithm selection, configured via
/// `RuntimeConfig::with_algorithms` (CLI: `--collectives`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgorithmPolicy {
    /// Schedule for `barrier`.
    pub barrier: Algorithm,
    /// Schedule for `bcast`.
    pub bcast: Algorithm,
    /// Schedule for `scatterv`.
    pub scatterv: Algorithm,
    /// Schedule for `gatherv` / `gather_available`.
    pub gatherv: Algorithm,
    /// Schedule for `allgatherv` / `allgatherv_available`.
    pub allgatherv: Algorithm,
    /// Schedule for `allreduce`.
    pub allreduce: Algorithm,
}

impl AlgorithmPolicy {
    /// Every operation on the given algorithm.
    pub fn uniform(algorithm: Algorithm) -> Self {
        Self {
            barrier: algorithm,
            bcast: algorithm,
            scatterv: algorithm,
            gatherv: algorithm,
            allgatherv: algorithm,
            allreduce: algorithm,
        }
    }

    /// The compatibility default: everything hub-routed.
    pub fn hub() -> Self {
        Self::uniform(Algorithm::Hub)
    }

    /// Ring rootless collectives, tree rooted ones.
    pub fn ring() -> Self {
        Self::uniform(Algorithm::Ring)
    }

    /// Binomial tree / recursive doubling everywhere.
    pub fn tree() -> Self {
        Self::uniform(Algorithm::Tree)
    }

    /// Per-operation `(p, message size)` selection.
    pub fn auto() -> Self {
        Self::uniform(Algorithm::Auto)
    }

    /// Parses a CLI spelling (`hub | ring | tree | auto`).
    pub fn parse(s: &str) -> Option<Self> {
        Algorithm::parse(s).map(Self::uniform)
    }
}

impl Default for AlgorithmPolicy {
    fn default() -> Self {
        Self::hub()
    }
}

/// One planned transfer: `(src, dst, bytes)` between absolute ranks.
pub type Hop = (usize, usize, u64);

/// A schedule: rounds of data-independent hops, executed (and
/// virtually charged) in order.
pub type Rounds = Vec<Vec<Hop>>;

/// `ceil(log2 q)` — the binomial round count (`0` for `q <= 1`).
pub fn ceil_log2(q: usize) -> u32 {
    if q <= 1 {
        0
    } else {
        usize::BITS - (q - 1).leading_zeros()
    }
}

fn floor_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    usize::BITS - 1 - x.leading_zeros()
}

/// Largest power of two `<= q` (`q >= 1`).
pub fn prev_pow2(q: usize) -> usize {
    debug_assert!(q >= 1);
    1 << floor_log2(q)
}

/// Binomial-tree parent of virtual index `vi` (`None` for the root,
/// `vi == 0`): clear the top set bit.
pub fn binomial_parent(vi: usize) -> Option<usize> {
    (vi > 0).then(|| vi - (1 << floor_log2(vi)))
}

/// Binomial-tree children of virtual index `vi` in a `q`-rank tree,
/// as `(round, child_vi)` pairs in ascending round order. The tree is
/// the doubling schedule: in round `j` every already-reached index
/// `vi < 2^j` sends to `vi + 2^j`; index `vi > 0` is reached in round
/// `floor(log2 vi)` and sends in every later round.
pub fn binomial_children(vi: usize, q: usize) -> Vec<(u32, usize)> {
    let first = if vi == 0 { 0 } else { floor_log2(vi) + 1 };
    (first..ceil_log2(q))
        .map(|j| (j, vi + (1usize << j)))
        .filter(|&(_, c)| c < q)
        .collect()
}

/// Virtual indices of the subtree rooted at `vi` (inclusive),
/// ascending.
pub fn binomial_subtree(vi: usize, q: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack = vec![vi];
    while let Some(v) = stack.pop() {
        out.push(v);
        for (_, c) in binomial_children(v, q) {
            stack.push(c);
        }
    }
    out.sort_unstable();
    out
}

/// Absolute rank of virtual index `vi` when the root sits at position
/// `vroot` of the compacted live list.
fn abs_rank(live: &[usize], vroot: usize, vi: usize) -> usize {
    live[(vi + vroot) % live.len()]
}

/// Encoded length of a `Vec<Option<Vec<u8>>>` slot vector over a
/// `size`-rank communicator where the `Some` slots hold `some_lens`
/// bytes each: 8-byte length prefix, one tag byte per slot, and an
/// 8-byte length prefix plus payload per `Some`.
pub fn encoded_slots_len(size: usize, some_lens: &[u64]) -> u64 {
    8 + size as u64 + some_lens.iter().map(|n| 8 + n).sum::<u64>()
}

/// Binomial broadcast schedule: `blob` bytes flow root-outward,
/// `ceil(log2 q)` rounds.
pub fn bcast_rounds(live: &[usize], vroot: usize, blob: u64) -> Rounds {
    let q = live.len();
    let mut rounds: Rounds = vec![Vec::new(); ceil_log2(q) as usize];
    for vi in 0..q {
        for (j, c) in binomial_children(vi, q) {
            rounds[j as usize].push((
                abs_rank(live, vroot, vi),
                abs_rank(live, vroot, c),
                blob,
            ));
        }
    }
    rounds
}

/// Binomial scatter schedule: the hop to each child carries the slot
/// bundle of its whole subtree. `lens_by_vi[vi]` is the encoded
/// payload length of the rank at virtual index `vi`; `size` is the
/// full communicator size (bundles are absolute-rank-indexed slot
/// vectors).
pub fn scatterv_rounds(size: usize, live: &[usize], vroot: usize, lens_by_vi: &[u64]) -> Rounds {
    let q = live.len();
    debug_assert_eq!(lens_by_vi.len(), q);
    let mut rounds: Rounds = vec![Vec::new(); ceil_log2(q) as usize];
    for vi in 0..q {
        for (j, c) in binomial_children(vi, q) {
            let bundle: Vec<u64> = binomial_subtree(c, q)
                .into_iter()
                .map(|v| lens_by_vi[v])
                .collect();
            rounds[j as usize].push((
                abs_rank(live, vroot, vi),
                abs_rank(live, vroot, c),
                encoded_slots_len(size, &bundle),
            ));
        }
    }
    rounds
}

/// Binomial gather schedule: the reverse of [`scatterv_rounds`] —
/// leaves send first, every index forwards its accumulated subtree
/// bundle to its parent in round `ceil(log2 q) - 1 - join_round`.
pub fn gatherv_rounds(size: usize, live: &[usize], vroot: usize, lens_by_vi: &[u64]) -> Rounds {
    let q = live.len();
    debug_assert_eq!(lens_by_vi.len(), q);
    let total = ceil_log2(q);
    let mut rounds: Rounds = vec![Vec::new(); total as usize];
    for vi in 1..q {
        let join = floor_log2(vi);
        let bundle: Vec<u64> = binomial_subtree(vi, q)
            .into_iter()
            .map(|v| lens_by_vi[v])
            .collect();
        rounds[(total - 1 - join) as usize].push((
            abs_rank(live, vroot, vi),
            abs_rank(live, vroot, parent_abs_vi(vi)),
            encoded_slots_len(size, &bundle),
        ));
    }
    for round in &mut rounds {
        round.sort_unstable();
    }
    rounds
}

fn parent_abs_vi(vi: usize) -> usize {
    binomial_parent(vi).expect("vi > 0 has a parent")
}

/// Star fan-in round: every live rank except `root_abs` sends its
/// payload (`lens_by_pos`, indexed like `live`) straight to the root.
/// One round whose hops serialise at the root's receive port — the
/// hub bottleneck, now charged for what it is.
pub fn star_gather_round(live: &[usize], root_abs: usize, lens_by_pos: &[u64]) -> Vec<Hop> {
    debug_assert_eq!(lens_by_pos.len(), live.len());
    live.iter()
        .zip(lens_by_pos)
        .filter(|&(&r, _)| r != root_abs)
        .map(|(&r, &n)| (r, root_abs, n))
        .collect()
}

/// Star fan-out round: the root sends `lens_by_pos[i]` bytes to live
/// rank `live[i]`; serialises at the root's send port.
pub fn star_scatter_round(live: &[usize], root_abs: usize, lens_by_pos: &[u64]) -> Vec<Hop> {
    debug_assert_eq!(lens_by_pos.len(), live.len());
    live.iter()
        .zip(lens_by_pos)
        .filter(|&(&r, _)| r != root_abs)
        .map(|(&r, &n)| (root_abs, r, n))
        .collect()
}

/// Ring all-gather schedule: `q - 1` rounds; in round `k`, position
/// `i` forwards the block that originated at position
/// `(i - k) mod q` to position `(i + 1) mod q`. Blocks travel as raw
/// contribution bytes (`lens_by_pos[origin]` on the wire).
pub fn ring_rounds(live: &[usize], lens_by_pos: &[u64]) -> Rounds {
    let q = live.len();
    debug_assert_eq!(lens_by_pos.len(), q);
    if q <= 1 {
        return Vec::new();
    }
    (0..q - 1)
        .map(|k| {
            (0..q)
                .map(|i| {
                    let origin = (i + q - k) % q;
                    (live[i], live[(i + 1) % q], lens_by_pos[origin])
                })
                .collect()
        })
        .collect()
}

/// Recursive-doubling (butterfly) all-gather schedule over `q` live
/// ranks: positions `>= q2` (the largest power of two `<= q`) fold
/// into their partner in a pre-round, the `q2` core positions run
/// `log2 q2` pairwise-exchange rounds with doubling slot vectors, and
/// a post-round returns the full result to the folded positions.
/// Messages are absolute-rank-indexed slot vectors
/// ([`encoded_slots_len`]).
pub fn butterfly_rounds(size: usize, live: &[usize], lens_by_pos: &[u64]) -> Rounds {
    let q = live.len();
    debug_assert_eq!(lens_by_pos.len(), q);
    if q <= 1 {
        return Vec::new();
    }
    let q2 = prev_pow2(q);
    let mut rounds: Rounds = Vec::new();
    // Held contribution positions per core rank.
    let mut held: Vec<Vec<usize>> = (0..q2)
        .map(|pos| {
            let mut h = vec![pos];
            if pos + q2 < q {
                h.push(pos + q2);
            }
            h
        })
        .collect();
    if q > q2 {
        rounds.push(
            (q2..q)
                .map(|e| {
                    (
                        live[e],
                        live[e - q2],
                        encoded_slots_len(size, &[lens_by_pos[e]]),
                    )
                })
                .collect(),
        );
    }
    let mut mask = 1usize;
    while mask < q2 {
        let round: Vec<Hop> = (0..q2)
            .map(|pos| {
                let lens: Vec<u64> = held[pos].iter().map(|&p| lens_by_pos[p]).collect();
                (
                    live[pos],
                    live[pos ^ mask],
                    encoded_slots_len(size, &lens),
                )
            })
            .collect();
        rounds.push(round);
        let prev = held.clone();
        for (pos, h) in held.iter_mut().enumerate() {
            h.extend_from_slice(&prev[pos ^ mask]);
            h.sort_unstable();
            h.dedup();
        }
        mask <<= 1;
    }
    if q > q2 {
        let full: Vec<u64> = lens_by_pos.to_vec();
        rounds.push(
            (q2..q)
                .map(|e| (live[e - q2], live[e], encoded_slots_len(size, &full)))
                .collect(),
        );
    }
    rounds
}

/// [`butterfly_rounds`] for the uniform-contribution case, in
/// `O(q log q)` instead of the slow builder's `O(q²)` held-set
/// bookkeeping — the event engine's fast path for large `p`.
///
/// Produces a hop-for-hop identical schedule to
/// `butterfly_rounds(size, live, &vec![len; live.len()])`: when every
/// contribution weighs `len` bytes, the slot set a core position holds
/// before the round with exchange mask `m` is exactly its aligned
/// window of `m` core positions plus the extras attached below
/// `q - q2`, so the encoded message length follows from the held
/// *count* alone and the per-position slot vectors never need to be
/// materialised.
pub fn butterfly_rounds_uniform(size: usize, live: &[usize], len: u64) -> Rounds {
    let q = live.len();
    if q <= 1 {
        return Vec::new();
    }
    let q2 = prev_pow2(q);
    // Core positions `< extras` have the extra `pos + q2` folded in.
    let extras = q - q2;
    let mut rounds: Rounds = Vec::new();
    if q > q2 {
        rounds.push(
            (q2..q)
                .map(|e| (live[e], live[e - q2], encoded_slots_len(size, &[len])))
                .collect(),
        );
    }
    let mut mask = 1usize;
    while mask < q2 {
        let round: Vec<Hop> = (0..q2)
            .map(|pos| {
                let base = pos & !(mask - 1);
                // Extras attached inside the window [base, base+mask).
                let attached = (base + mask).min(extras).saturating_sub(base);
                let held = (mask + attached) as u64;
                (
                    live[pos],
                    live[pos ^ mask],
                    8 + size as u64 + held * (8 + len),
                )
            })
            .collect();
        rounds.push(round);
        mask <<= 1;
    }
    if q > q2 {
        let full = 8 + size as u64 + q as u64 * (8 + len);
        rounds.push((q2..q).map(|e| (live[e - q2], live[e], full)).collect());
    }
    rounds
}

/// Tree barrier schedule: a zero-byte binomial fan-in to the lowest
/// live rank followed by a zero-byte binomial fan-out —
/// `2 ceil(log2 q)` latency-only rounds.
pub fn barrier_tree_rounds(live: &[usize]) -> Rounds {
    let q = live.len();
    let total = ceil_log2(q);
    let mut rounds: Rounds = vec![Vec::new(); 2 * total as usize];
    for vi in 1..q {
        let join = floor_log2(vi);
        rounds[(total - 1 - join) as usize].push((
            abs_rank(live, 0, vi),
            abs_rank(live, 0, parent_abs_vi(vi)),
            0,
        ));
    }
    for vi in 0..q {
        for (j, c) in binomial_children(vi, q) {
            rounds[(total + j) as usize].push((
                abs_rank(live, 0, vi),
                abs_rank(live, 0, c),
                0,
            ));
        }
    }
    for round in &mut rounds {
        round.sort_unstable();
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(q: usize) -> Vec<usize> {
        (0..q).collect()
    }

    #[test]
    fn binomial_shape_is_a_tree() {
        for q in 1..=17 {
            // Every non-root has exactly one parent; the children
            // relation inverts the parent relation.
            for vi in 1..q {
                let p = binomial_parent(vi).unwrap();
                assert!(p < vi);
                assert!(
                    binomial_children(p, q).iter().any(|&(_, c)| c == vi),
                    "q={q} vi={vi} parent={p}"
                );
            }
            // Subtree of the root covers every index exactly once.
            assert_eq!(binomial_subtree(0, q), (0..q).collect::<Vec<_>>());
            // Subtrees of siblings partition the parent's subtree.
            for vi in 0..q {
                let mut members: Vec<usize> = vec![vi];
                for (_, c) in binomial_children(vi, q) {
                    members.extend(binomial_subtree(c, q));
                }
                members.sort_unstable();
                let mut expect = binomial_subtree(vi, q);
                expect.sort_unstable();
                assert_eq!(members, expect);
            }
        }
    }

    #[test]
    fn butterfly_rounds_uniform_matches_slow_builder() {
        // Exact Vec equality: the fast builder must be hop-for-hop
        // identical so virtual-time charges stay bit-identical when
        // the event engine swaps it in.
        for q in 1..=33 {
            let l = live(q);
            for len in [0u64, 1, 17] {
                let lens = vec![len; q];
                assert_eq!(
                    butterfly_rounds_uniform(q + 3, &l, len),
                    butterfly_rounds(q + 3, &l, &lens),
                    "q={q} len={len}"
                );
            }
        }
        for q in [100usize, 101, 600, 601, 1000] {
            let l = live(q);
            let lens = vec![24u64; q];
            assert_eq!(
                butterfly_rounds_uniform(q, &l, 24),
                butterfly_rounds(q, &l, &lens),
                "q={q}"
            );
        }
    }

    #[test]
    fn bcast_rounds_reach_every_rank_once() {
        for q in 1..=16 {
            for vroot in 0..q {
                let rounds = bcast_rounds(&live(q), vroot, 10);
                assert_eq!(rounds.len(), ceil_log2(q) as usize);
                let mut reached = vec![false; q];
                reached[vroot] = true;
                for round in &rounds {
                    let start = reached.clone();
                    for &(src, dst, b) in round {
                        assert!(start[src], "sender must already hold the data");
                        assert!(!reached[dst], "rank reached twice");
                        reached[dst] = true;
                        assert_eq!(b, 10);
                    }
                }
                assert!(reached.iter().all(|&r| r), "q={q} vroot={vroot}");
            }
        }
    }

    #[test]
    fn ring_rounds_deliver_every_block_everywhere() {
        for q in 2..=9 {
            let lens: Vec<u64> = (0..q as u64).map(|i| 100 + i).collect();
            let rounds = ring_rounds(&live(q), &lens);
            assert_eq!(rounds.len(), q - 1);
            // Track which origins every position holds.
            let mut holds: Vec<Vec<bool>> = (0..q)
                .map(|i| (0..q).map(|o| o == i).collect())
                .collect();
            for (k, round) in rounds.iter().enumerate() {
                assert_eq!(round.len(), q, "one hop per position per round");
                let snapshot = holds.clone();
                for &(src, dst, b) in round {
                    let origin = (src + q - k) % q;
                    assert!(snapshot[src][origin], "forwarding an unheld block");
                    assert_eq!(b, lens[origin]);
                    holds[dst][origin] = true;
                }
            }
            assert!(holds.iter().all(|h| h.iter().all(|&x| x)));
        }
    }

    #[test]
    fn butterfly_rounds_deliver_every_block_everywhere() {
        for q in 2..=11 {
            let lens = vec![8u64; q];
            let rounds = butterfly_rounds(q, &live(q), &lens);
            let q2 = prev_pow2(q);
            let extra = usize::from(q != q2);
            assert_eq!(rounds.len(), ceil_log2(q2) as usize + 2 * extra);
            let mut holds: Vec<Vec<bool>> = (0..q)
                .map(|i| (0..q).map(|o| o == i).collect())
                .collect();
            for round in &rounds {
                let snapshot = holds.clone();
                for &(src, dst, _) in round {
                    for o in 0..q {
                        if snapshot[src][o] {
                            holds[dst][o] = true;
                        }
                    }
                }
            }
            assert!(
                holds.iter().all(|h| h.iter().all(|&x| x)),
                "q={q}: butterfly must be a complete exchange"
            );
        }
    }

    #[test]
    fn schedules_honour_dead_and_rotated_ranks() {
        // Live ranks {1, 3, 4, 6} of an 8-rank communicator, root 4.
        let live = vec![1usize, 3, 4, 6];
        let vroot = 2; // live[2] == 4
        let rounds = bcast_rounds(&live, vroot, 5);
        let mut touched: Vec<usize> = rounds
            .iter()
            .flatten()
            .flat_map(|&(s, d, _)| [s, d])
            .collect();
        touched.sort_unstable();
        touched.dedup();
        assert_eq!(touched, live, "only live ranks appear in the schedule");
        // The root is the only rank that never receives.
        let receivers: Vec<usize> = rounds.iter().flatten().map(|&(_, d, _)| d).collect();
        assert!(!receivers.contains(&4));
        assert_eq!(receivers.len(), live.len() - 1);
    }

    #[test]
    fn gather_is_the_reverse_of_scatter() {
        let q = 6;
        let lens = vec![3u64; q];
        let s = scatterv_rounds(q, &live(q), 0, &lens);
        let g = gatherv_rounds(q, &live(q), 0, &lens);
        assert_eq!(s.len(), g.len());
        let mut s_hops: Vec<(usize, usize, u64)> = s.into_iter().flatten().collect();
        let g_hops: Vec<(usize, usize, u64)> = g.into_iter().flatten().collect();
        // Same edges, opposite direction, same bundle sizes.
        s_hops.sort_unstable();
        let mut g_rev: Vec<(usize, usize, u64)> =
            g_hops.into_iter().map(|(a, b, n)| (b, a, n)).collect();
        g_rev.sort_unstable();
        assert_eq!(s_hops, g_rev);
    }

    #[test]
    fn star_rounds_cover_every_non_root() {
        let live = vec![0usize, 2, 5];
        let lens = vec![7u64, 8, 9];
        let g = star_gather_round(&live, 2, &lens);
        assert_eq!(g, vec![(0, 2, 7), (5, 2, 9)]);
        let s = star_scatter_round(&live, 2, &lens);
        assert_eq!(s, vec![(2, 0, 7), (2, 5, 9)]);
    }

    #[test]
    fn barrier_tree_rounds_are_latency_only() {
        let rounds = barrier_tree_rounds(&live(5));
        assert_eq!(rounds.len(), 2 * ceil_log2(5) as usize);
        assert!(rounds.iter().flatten().all(|&(_, _, b)| b == 0));
    }

    #[test]
    fn auto_resolution_crossovers() {
        assert_eq!(Algorithm::Auto.resolve_rooted(2), Resolved::Hub);
        assert_eq!(Algorithm::Auto.resolve_rooted(3), Resolved::Tree);
        assert_eq!(Algorithm::Auto.resolve_allreduce(64), Resolved::Tree);
        assert_eq!(
            Algorithm::Auto.resolve_allgatherv(64, 64),
            Resolved::Tree
        );
        assert_eq!(
            Algorithm::Auto.resolve_allgatherv(64, AUTO_RING_CROSSOVER_BYTES + 1),
            Resolved::Ring
        );
        // Explicit choices are honoured; rooted ring degrades to tree.
        assert_eq!(Algorithm::Ring.resolve_rooted(64), Resolved::Tree);
        assert_eq!(Algorithm::Ring.resolve_allgatherv(2, 1 << 20), Resolved::Ring);
        assert_eq!(Algorithm::parse("auto"), Some(Algorithm::Auto));
        assert_eq!(Algorithm::parse("star"), None);
    }

    #[test]
    fn encoded_slots_len_matches_manual_encoding() {
        // 4-rank communicator, two Some slots of 3 and 0 bytes:
        // 8 (vec len) + 4 (tags) + (8+3) + (8+0).
        assert_eq!(encoded_slots_len(4, &[3, 0]), 8 + 4 + 11 + 8);
    }
}
